//! The daemon: accept loop, per-connection framing, the bounded
//! evaluation queue, and the micro-batching eval workers.
//!
//! ## Threading model
//!
//! * One **acceptor** (the thread calling [`Server::run`]).
//! * One detached **connection thread** per client, reading frames and
//!   answering cheap requests (`status`, `predict_latency`) inline.
//! * `eval_workers` **worker threads** draining the bounded queue.
//!   [`hsconas_par::BoundedQueue::pop_batch`] merges adjacent *compatible*
//!   jobs (same device, same target, both `score`) into one micro-batch,
//!   which a single [`MemoObjective`]-over-[`ParallelObjective`] stack
//!   evaluates — deduplicated against the cross-request
//!   [`SharedEvalCache`](hsconas_evo::SharedEvalCache) and fanned out over
//!   the `hsconas_par` pool.
//! * An optional **watcher** thread polling predictor snapshots for hot
//!   reload.
//!
//! Responses are written by whichever thread produced them, serialized by
//! a per-connection write mutex, so draining needs no writer threads: when
//! the workers have joined, every accepted job's response bytes are out.
//!
//! ## Backpressure
//!
//! Admission uses [`BoundedQueue::try_push`]: a full queue answers
//! `429 overloaded` immediately instead of blocking the connection thread,
//! so a flooding client learns to back off while `status` stays
//! responsive. Queued jobs are never silently dropped — shutdown closes
//! the queue, the workers drain what was admitted, and only then does
//! [`Server::run`] return.
//!
//! ## Determinism
//!
//! `search` answers are a pure function of `(device, target_ms, seed,
//! budget, predictor generation)`: the EA runs on a `StdRng` seeded from
//! the request, candidate generation is serial, batch evaluation merges in
//! input order, and memo hits return exactly the bytes recomputation
//! would. Concurrent identical requests therefore receive byte-identical
//! response lines.

use crate::json::Json;
use crate::metrics::ServeMetrics;
use crate::proto::{
    read_frame, Command, Frame, Request, Response, CODE_INTERNAL, CODE_OK, CODE_SHUTTING_DOWN,
    CODE_UNKNOWN_DEVICE, MAX_FRAME_BYTES,
};
use crate::state::{DeviceState, EvalContext, ServeError, ServeOptions, WarmState, BETA};
use crate::table::BenchTable;
use hsconas_evo::{
    tradeoff_score, EvolutionSearch, MemoObjective, Objective, ParallelObjective, ParetoObjective,
    ParetoSearch,
};
use hsconas_par::{BoundedQueue, PushError};
use hsconas_space::Arch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// One admitted unit of evaluation work.
struct EvalJob {
    id: String,
    kind: JobKind,
    device: Arc<DeviceState>,
    target_ms: f64,
    conn: Arc<ConnWriter>,
    received: Instant,
}

enum JobKind {
    Score {
        arch: Arch,
    },
    Search {
        seed: u64,
    },
    /// Multi-device co-exploration. `devices` is the canonical (sorted,
    /// deduped) fleet; the job's `device` field holds the first of them.
    Pareto {
        devices: Vec<Arc<DeviceState>>,
        seed: u64,
    },
}

impl EvalJob {
    fn cmd(&self) -> &'static str {
        match self.kind {
            JobKind::Score { .. } => "score",
            JobKind::Search { .. } => "search",
            JobKind::Pareto { .. } => "pareto",
        }
    }
}

/// The write half of one client connection. Response lines go through the
/// mutex so inline answers and worker answers never interleave bytes.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one response line. Errors are swallowed: the client hanging
    /// up early must not take a worker down with it.
    fn send(&self, response: &Response) {
        let mut line = response.encode();
        line.push('\n');
        let mut guard = lock(&self.stream);
        let _ = guard.write_all(line.as_bytes());
        let _ = guard.flush();
    }
}

struct Shared {
    state: WarmState,
    metrics: ServeMetrics,
    queue: BoundedQueue<EvalJob>,
    draining: AtomicBool,
    addr: SocketAddr,
    batch_max: usize,
    pool_threads: usize,
    slow_eval_ms: u64,
    /// Precomputed `.hsbt` bench table, when `--bench-table` was given and
    /// the file validated at bind time.
    table: Option<BenchTable>,
}

impl Shared {
    /// Flips into drain mode and pokes the acceptor awake with a throwaway
    /// connection (std's blocking `accept` has nothing like a deadline).
    fn begin_shutdown(&self) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A bound-and-warmed daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, warms the preload devices, and returns the
    /// server without accepting anything yet.
    ///
    /// # Errors
    ///
    /// I/O errors from binding; [`io::ErrorKind::InvalidInput`] wrapping a
    /// [`ServeError`] when a preload device is unknown or fails to warm.
    pub fn bind(options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind((options.host.as_str(), options.port))?;
        let addr = listener.local_addr()?;
        let queue = BoundedQueue::new(options.queue_capacity);
        let batch_max = options.batch_max.max(1);
        let pool_threads = options.pool_threads;
        let slow_eval_ms = options.slow_eval_ms;
        let preload = options.preload.clone();
        // A bench table that fails to validate is a startup error, never a
        // silent fall-through: a corrupt or foreign table must not be
        // mistaken for "no coverage".
        let table = match &options.bench_table {
            None => None,
            Some(path) => Some(
                BenchTable::load(path)
                    .map_err(|detail| io::Error::new(io::ErrorKind::InvalidInput, detail))?,
            ),
        };
        let state = WarmState::new(options);
        for name in &preload {
            state
                .device(name)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        }
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                state,
                metrics: ServeMetrics::new(),
                queue,
                draining: AtomicBool::new(false),
                addr,
                batch_max,
                pool_threads,
                slow_eval_ms,
                table,
            }),
        })
    }

    /// The bound address (port is concrete even when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a `shutdown` request arrives, then drains: the queue
    /// is closed, the eval workers finish every admitted job and join, and
    /// only then does this return. Every accepted job has had its response
    /// bytes written by that point.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop I/O errors only; per-connection errors are
    /// contained in their threads.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        let options = shared.state.options().clone();

        let mut workers = Vec::new();
        for i in 0..options.eval_workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-eval-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let watcher = if options.lut_watch_ms > 0 {
            let shared = Arc::clone(&shared);
            let interval = Duration::from_millis(options.lut_watch_ms);
            Some(
                thread::Builder::new()
                    .name("serve-lut-watch".into())
                    .spawn(move || {
                        while !shared.draining.load(Ordering::Acquire) {
                            thread::sleep(interval);
                            shared.state.poll_reload();
                        }
                    })?,
            )
        } else {
            None
        };

        for stream in self.listener.incoming() {
            if shared.draining.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    shared.queue.close();
                    return Err(e);
                }
            };
            // One-line frames; without TCP_NODELAY the Nagle/delayed-ACK
            // interaction costs ~40 ms per request on loopback.
            let _ = stream.set_nodelay(true);
            shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&shared);
            // Detached: a connection blocked in read must not block drain.
            let _ = thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || handle_connection(&shared, stream));
        }

        shared.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(watcher) = watcher {
            let _ = watcher.join();
        }
        // Workers are quiet now — flush whatever the periodic ticks
        // haven't, so a restart (or a sibling shard) starts warm.
        shared.state.spill_all();
        Ok(())
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnWriter {
        stream: Mutex::new(write_half),
    });
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Err(_) | Ok(Frame::Eof) => break,
            Ok(Frame::Oversized) => {
                let response = Response::fail(
                    "",
                    crate::proto::CODE_FRAME_TOO_LARGE,
                    format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                );
                shared.metrics.record_rejected(response.code);
                conn.send(&response);
            }
            Ok(Frame::Line(line)) => {
                if line.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                match Request::decode(&line) {
                    Err(e) => {
                        let response = Response::fail(e.id.unwrap_or_default(), e.code, e.detail);
                        shared.metrics.record_rejected(response.code);
                        conn.send(&response);
                    }
                    Ok(request) => dispatch(shared, &conn, request),
                }
            }
        }
    }
}

fn dispatch(shared: &Arc<Shared>, conn: &Arc<ConnWriter>, request: Request) {
    let received = Instant::now();
    let _span = hsconas_telemetry::span!("serve.request", cmd = request.command.name());
    match request.command {
        Command::Status => {
            let result = build_status(shared);
            shared.metrics.record_served("status", ms_since(received));
            conn.send(&Response::ok(request.id, result));
        }
        Command::Shutdown => {
            shared.metrics.record_served("shutdown", ms_since(received));
            conn.send(&Response::ok(
                request.id,
                Json::obj(vec![("draining", Json::Bool(true))]),
            ));
            shared.begin_shutdown();
        }
        Command::PredictLatency { device, arch } => {
            let response = predict_inline(shared, &request.id, &device, &arch, received);
            if response.is_ok() {
                shared
                    .metrics
                    .record_served("predict_latency", ms_since(received));
            } else {
                shared.metrics.record_rejected(response.code);
            }
            conn.send(&response);
        }
        Command::Score {
            device,
            target_ms,
            arch,
        } => {
            // Bench-table fast path: a covered arch answers O(1) inline,
            // bit-identically to the queued live evaluation. Skipped while
            // draining so the 503 semantics match the live path.
            if !shared.draining.load(Ordering::Acquire) {
                if let Some(response) =
                    score_from_table(shared, &request.id, &device, target_ms, &arch)
                {
                    shared.metrics.record_served("score", ms_since(received));
                    conn.send(&response);
                    return;
                }
            }
            admit(
                shared,
                conn,
                request.id,
                &device,
                target_ms,
                received,
                |dev| dev.decode_arch(&arch).map(|arch| JobKind::Score { arch }),
            );
        }
        Command::Search {
            device,
            target_ms,
            seed,
        } => {
            admit(
                shared,
                conn,
                request.id,
                &device,
                target_ms,
                received,
                |_| Ok(JobKind::Search { seed }),
            );
        }
        Command::Pareto {
            devices,
            target_ms,
            seed,
        } => {
            admit_pareto(
                shared, conn, request.id, &devices, target_ms, seed, received,
            );
        }
        Command::Infer {
            arch,
            input_seed,
            batch,
        } => {
            let response = infer_inline(shared, &request.id, &arch, input_seed, batch);
            if response.is_ok() {
                shared.metrics.record_served("infer", ms_since(received));
            } else {
                shared.metrics.record_rejected(response.code);
            }
            conn.send(&response);
        }
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn predict_inline(
    shared: &Arc<Shared>,
    id: &str,
    device: &str,
    arch: &[usize],
    _received: Instant,
) -> Response {
    let device = match shared.state.device(device) {
        Ok(device) => device,
        Err(e) => return serve_error_response(id, &e),
    };
    let arch = match device.decode_arch(arch) {
        Ok(arch) => arch,
        Err(detail) => return Response::fail(id, crate::proto::CODE_BAD_REQUEST, detail),
    };
    if let Some((idx, entry)) = table_lookup(shared, &device, &arch) {
        let table = shared.table.as_ref().expect("hit implies a loaded table");
        return Response::ok(
            id,
            Json::obj(vec![
                ("device", Json::Str(device.name.clone())),
                ("latency_ms", Json::Num(entry.latencies_ms[idx])),
                ("bias_us", Json::Num(table.devices[idx].bias_us)),
            ]),
        );
    }
    match device.predict_ms(&arch) {
        Ok((latency_ms, bias_us)) => Response::ok(
            id,
            Json::obj(vec![
                ("device", Json::Str(device.name.clone())),
                ("latency_ms", Json::Num(latency_ms)),
                ("bias_us", Json::Num(bias_us)),
            ]),
        ),
        Err(detail) => Response::fail(id, CODE_INTERNAL, detail),
    }
}

/// Answers `infer` inline: compile (or fetch) the genome's optimized
/// graph artifact, run it on a seeded synthetic batch, return the logits.
/// Inline because a tiny-skeleton compile is milliseconds and the cache
/// absorbs the repeated-genome path entirely.
fn infer_inline(
    shared: &Arc<Shared>,
    id: &str,
    arch: &[usize],
    input_seed: u64,
    batch: usize,
) -> Response {
    let (artifact, cached) = match shared.state.compiled_graph(arch) {
        Ok(pair) => pair,
        Err(detail) => return Response::fail(id, crate::proto::CODE_BAD_REQUEST, detail),
    };
    if cached {
        shared
            .metrics
            .infer_cache_hits
            .fetch_add(1, Ordering::Relaxed);
    }
    let g = &artifact.graph;
    let mut rng = hsconas_tensor::rng::SmallRng::new(input_seed);
    let input =
        hsconas_tensor::Tensor::randn([batch, g.input_c, g.input_h, g.input_w], 1.0, &mut rng);
    let logits = match hsconas_graph::execute(g, &input) {
        Ok(logits) => logits,
        Err(e) => return Response::fail(id, CODE_INTERNAL, e.to_string()),
    };
    let s = logits.shape();
    let mut classes = Vec::with_capacity(s.n);
    let mut rows = Vec::with_capacity(s.n);
    for n in 0..s.n {
        let row: Vec<f32> = (0..s.c).map(|c| logits.at(n, c, 0, 0)).collect();
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        classes.push(Json::Num(argmax as f64));
        rows.push(Json::Arr(
            row.into_iter().map(|v| Json::Num(f64::from(v))).collect(),
        ));
    }
    Response::ok(
        id,
        Json::obj(vec![
            ("cached", Json::Bool(cached)),
            ("nodes", Json::Num(g.nodes.len() as f64)),
            ("weight_floats", Json::Num(g.const_elements() as f64)),
            ("classes", Json::Arr(classes)),
            ("logits", Json::Arr(rows)),
        ]),
    )
}

/// One validated bench-table row for `(device, arch)`: the device has a
/// column and the table's generation stamp matches the live predictor, so
/// the stored floats are exactly what live evaluation would compute. A
/// stale stamp or uncovered arch is a counted miss (silent fall-through);
/// with no table loaded nothing is counted.
fn table_lookup<'a>(
    shared: &'a Shared,
    device: &DeviceState,
    arch: &Arch,
) -> Option<(usize, &'a crate::table::TableEntry)> {
    let table = shared.table.as_ref()?;
    let hit = table.device_index(&device.name).and_then(|idx| {
        if table.devices[idx].lut_generation != device.lut_generation() {
            return None;
        }
        let fingerprint = crate::router::arch_route_key(&arch.encode());
        table.get(fingerprint).map(|entry| (idx, entry))
    });
    let counter = if hit.is_some() {
        &shared.metrics.table_hits
    } else {
        &shared.metrics.table_misses
    };
    counter.fetch_add(1, Ordering::Relaxed);
    hit
}

/// The table fast path for `score`: `Some(200)` only on a genuine hit;
/// any resolution failure returns `None` so the live path produces the
/// identical 4xx it would have produced anyway.
fn score_from_table(
    shared: &Arc<Shared>,
    id: &str,
    device: &str,
    target_ms: f64,
    arch: &[usize],
) -> Option<Response> {
    shared.table.as_ref()?;
    let device = shared.state.device(device).ok()?;
    let arch = device.decode_arch(arch).ok()?;
    let (idx, entry) = table_lookup(shared, &device, &arch)?;
    let latency_ms = entry.latencies_ms[idx];
    Some(Response::ok(
        id,
        Json::obj(vec![
            ("device", Json::Str(device.name.clone())),
            ("target_ms", Json::Num(target_ms)),
            (
                "score",
                Json::Num(tradeoff_score(entry.accuracy, latency_ms, target_ms, BETA)),
            ),
            ("accuracy", Json::Num(entry.accuracy)),
            ("latency_ms", Json::Num(latency_ms)),
        ]),
    ))
}

fn serve_error_response(id: &str, error: &ServeError) -> Response {
    let code = match error {
        ServeError::UnknownDevice(_) => CODE_UNKNOWN_DEVICE,
        ServeError::Internal(_) => CODE_INTERNAL,
    };
    Response::fail(id, code, error.to_string())
}

/// Admission control for queued work: resolve the device, build the job,
/// try to enqueue, answer 429/503 immediately when that fails.
fn admit(
    shared: &Arc<Shared>,
    conn: &Arc<ConnWriter>,
    id: String,
    device: &str,
    target_ms: f64,
    received: Instant,
    build: impl FnOnce(&Arc<DeviceState>) -> Result<JobKind, String>,
) {
    if shared.draining.load(Ordering::Acquire) {
        let response = Response::fail(id, CODE_SHUTTING_DOWN, "server is draining");
        shared.metrics.record_rejected(response.code);
        conn.send(&response);
        return;
    }
    let device = match shared.state.device(device) {
        Ok(device) => device,
        Err(e) => {
            let response = serve_error_response(&id, &e);
            shared.metrics.record_rejected(response.code);
            conn.send(&response);
            return;
        }
    };
    let kind = match build(&device) {
        Ok(kind) => kind,
        Err(detail) => {
            let response = Response::fail(id, crate::proto::CODE_BAD_REQUEST, detail);
            shared.metrics.record_rejected(response.code);
            conn.send(&response);
            return;
        }
    };
    let job = EvalJob {
        id,
        kind,
        device,
        target_ms,
        conn: Arc::clone(conn),
        received,
    };
    enqueue(shared, job);
}

/// Pushes one built job, answering 429/503 immediately when that fails.
fn enqueue(shared: &Arc<Shared>, job: EvalJob) {
    match shared.queue.try_push(job) {
        Ok(depth) => shared.metrics.record_queue_depth(depth),
        Err(PushError::Full(job)) => {
            let response = Response::fail(
                job.id,
                crate::proto::CODE_OVERLOADED,
                format!(
                    "overloaded: evaluation queue full (capacity {})",
                    shared.queue.capacity()
                ),
            );
            shared.metrics.record_rejected(response.code);
            job.conn.send(&response);
        }
        Err(PushError::Closed(job)) => {
            let response = Response::fail(job.id, CODE_SHUTTING_DOWN, "server is draining");
            shared.metrics.record_rejected(response.code);
            job.conn.send(&response);
        }
    }
}

/// Admission for `pareto`: resolve every named device (one unknown name
/// fails the whole request with the same 404 a single-device command
/// gets), canonicalize the set — sort by canonical name, dedup — and
/// enqueue one search job. The canonical ordering is what makes the
/// frontier bytes invariant under device-list permutations and alias
/// spellings.
fn admit_pareto(
    shared: &Arc<Shared>,
    conn: &Arc<ConnWriter>,
    id: String,
    devices: &[String],
    target_ms: f64,
    seed: u64,
    received: Instant,
) {
    if shared.draining.load(Ordering::Acquire) {
        let response = Response::fail(id, CODE_SHUTTING_DOWN, "server is draining");
        shared.metrics.record_rejected(response.code);
        conn.send(&response);
        return;
    }
    let mut resolved: Vec<Arc<DeviceState>> = Vec::with_capacity(devices.len());
    for name in devices {
        match shared.state.device(name) {
            Ok(device) => resolved.push(device),
            Err(e) => {
                let response = serve_error_response(&id, &e);
                shared.metrics.record_rejected(response.code);
                conn.send(&response);
                return;
            }
        }
    }
    resolved.sort_by(|a, b| a.name.cmp(&b.name));
    resolved.dedup_by(|a, b| a.name == b.name);
    let device = Arc::clone(&resolved[0]);
    enqueue(
        shared,
        EvalJob {
            id,
            kind: JobKind::Pareto {
                devices: resolved,
                seed,
            },
            device,
            target_ms,
            conn: Arc::clone(conn),
            received,
        },
    );
}

/// Two jobs may share a micro-batch iff they score against the same device
/// and target (so one objective stack answers both). Searches never batch:
/// each owns its RNG stream.
fn compatible(a: &EvalJob, b: &EvalJob) -> bool {
    matches!(a.kind, JobKind::Score { .. })
        && matches!(b.kind, JobKind::Score { .. })
        && Arc::ptr_eq(&a.device, &b.device)
        && a.target_ms.to_bits() == b.target_ms.to_bits()
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(batch) = shared.queue.pop_batch(shared.batch_max, compatible) {
        shared.metrics.record_queue_depth(shared.queue.len());
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .batched_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        if shared.slow_eval_ms > 0 {
            thread::sleep(Duration::from_millis(shared.slow_eval_ms));
        }
        execute_batch(shared, batch);
    }
}

fn execute_batch(shared: &Arc<Shared>, batch: Vec<EvalJob>) {
    let Some(first) = batch.first() else {
        return;
    };
    let device = Arc::clone(&first.device);
    let ctx = device.eval_context(first.target_ms);
    match &first.kind {
        JobKind::Score { .. } => execute_scores(shared, &device, &ctx, batch),
        JobKind::Search { .. } => {
            // pop_batch never merges searches, so this batch has one job.
            for job in batch {
                execute_search(shared, &device, &ctx, job);
            }
        }
        JobKind::Pareto { .. } => {
            // Like searches, pareto jobs never merge.
            for job in batch {
                execute_pareto(shared, job);
            }
        }
    }
    // Responses are already on the wire; persisting freshly memoized
    // evaluations is off the request path (a no-op without --state-dir).
    device.spill_tick();
}

fn execute_scores(
    shared: &Arc<Shared>,
    device: &Arc<DeviceState>,
    ctx: &EvalContext,
    batch: Vec<EvalJob>,
) {
    let archs: Vec<Arch> = batch
        .iter()
        .map(|job| match &job.kind {
            JobKind::Score { arch } => arch.clone(),
            _ => unreachable!("compatible() only batches scores"),
        })
        .collect();
    let mut objective = MemoObjective::with_shared_cache(
        ParallelObjective::new(device.evaluator(ctx), shared.pool_threads),
        ctx.cache.clone(),
    );
    match objective.evaluate_batch(&archs) {
        Ok(evaluations) => {
            for (job, evaluation) in batch.into_iter().zip(evaluations) {
                let result = Json::obj(vec![
                    ("device", Json::Str(device.name.clone())),
                    ("target_ms", Json::Num(ctx.target_ms)),
                    ("score", Json::Num(evaluation.score)),
                    ("accuracy", Json::Num(evaluation.accuracy)),
                    ("latency_ms", Json::Num(evaluation.latency_ms)),
                ]);
                respond_evaluated(shared, &job, Response::ok(job.id.clone(), result));
            }
        }
        Err(e) => {
            let detail = e.to_string();
            for job in batch {
                respond_evaluated(
                    shared,
                    &job,
                    Response::fail(job.id.clone(), CODE_INTERNAL, detail.clone()),
                );
            }
        }
    }
}

fn execute_search(
    shared: &Arc<Shared>,
    device: &Arc<DeviceState>,
    ctx: &EvalContext,
    job: EvalJob,
) {
    let JobKind::Search { seed } = job.kind else {
        unreachable!("execute_search only receives search jobs");
    };
    let config = shared.state.options().budget.evolution_config();
    let mut objective = MemoObjective::with_shared_cache(
        ParallelObjective::new(device.evaluator(ctx), shared.pool_threads),
        ctx.cache.clone(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut search = EvolutionSearch::new(device.space.clone(), config);
    match search.run(&mut objective, &mut rng) {
        Ok(outcome) => {
            // Deliberately no cache-hit counters here: the response must be
            // a pure function of (device, target, seed, budget, predictor
            // generation), and hit rates depend on what OTHER requests
            // already evaluated. Cache observability lives in `status`.
            let result = Json::obj(vec![
                ("device", Json::Str(device.name.clone())),
                ("target_ms", Json::Num(ctx.target_ms)),
                ("seed", Json::Num(seed as f64)),
                (
                    "arch",
                    Json::Arr(
                        outcome
                            .best_arch
                            .encode()
                            .into_iter()
                            .map(|g| Json::Num(g as f64))
                            .collect(),
                    ),
                ),
                ("arch_str", Json::Str(outcome.best_arch.to_string())),
                ("score", Json::Num(outcome.best_evaluation.score)),
                ("accuracy", Json::Num(outcome.best_evaluation.accuracy)),
                ("latency_ms", Json::Num(outcome.best_evaluation.latency_ms)),
                (
                    "generations",
                    Json::Num(outcome.history.len().saturating_sub(1) as f64),
                ),
            ]);
            respond_evaluated(shared, &job, Response::ok(job.id.clone(), result));
        }
        Err(e) => {
            respond_evaluated(
                shared,
                &job,
                Response::fail(job.id.clone(), CODE_INTERNAL, e.to_string()),
            );
        }
    }
}

/// Most frontier points serialized into one `pareto` response line —
/// keeps it comfortably inside [`MAX_FRAME_BYTES`] for 20-layer genomes
/// over [`crate::proto::MAX_PARETO_DEVICES`] devices. The full frontier
/// size is always reported, and truncation (deterministic: the points are
/// encoding-sorted) is flagged.
const MAX_PARETO_POINTS: usize = 64;

fn execute_pareto(shared: &Arc<Shared>, job: EvalJob) {
    let JobKind::Pareto { devices, seed } = &job.kind else {
        unreachable!("execute_pareto only receives pareto jobs");
    };
    let seed = *seed;
    let config = shared.state.options().budget.evolution_config();
    let mut per_device: Vec<(String, Box<dyn Objective>)> = Vec::with_capacity(devices.len());
    for device in devices {
        let ctx = device.eval_context(job.target_ms);
        per_device.push((
            device.name.clone(),
            Box::new(MemoObjective::with_shared_cache(
                ParallelObjective::new(device.evaluator(&ctx), shared.pool_threads),
                ctx.cache.clone(),
            )),
        ));
    }
    let outcome = ParetoObjective::new(per_device).and_then(|mut objective| {
        let search = ParetoSearch::new(job.device.space.clone(), config);
        let mut rng = StdRng::seed_from_u64(seed);
        search.run(&mut objective, &mut rng)
    });
    match outcome {
        Ok(frontier) => {
            let total = frontier.points.len();
            let points: Vec<Json> = frontier
                .points
                .iter()
                .take(MAX_PARETO_POINTS)
                .map(|p| {
                    Json::obj(vec![
                        (
                            "arch",
                            Json::Arr(
                                p.arch
                                    .encode()
                                    .into_iter()
                                    .map(|g| Json::Num(g as f64))
                                    .collect(),
                            ),
                        ),
                        ("accuracy", Json::Num(p.eval.accuracy)),
                        (
                            "latencies_ms",
                            Json::Arr(p.eval.latencies_ms.iter().map(|&l| Json::Num(l)).collect()),
                        ),
                    ])
                })
                .collect();
            let result = Json::obj(vec![
                (
                    "devices",
                    Json::Arr(
                        frontier
                            .devices
                            .iter()
                            .map(|d| Json::Str(d.clone()))
                            .collect(),
                    ),
                ),
                ("target_ms", Json::Num(job.target_ms)),
                ("seed", Json::Num(seed as f64)),
                ("generations", Json::Num(frontier.generations as f64)),
                ("evaluated", Json::Num(frontier.evaluated as f64)),
                ("frontier_size", Json::Num(total as f64)),
                ("truncated", Json::Bool(total > MAX_PARETO_POINTS)),
                ("frontier", Json::Arr(points)),
            ]);
            respond_evaluated(shared, &job, Response::ok(job.id.clone(), result));
        }
        Err(e) => {
            respond_evaluated(
                shared,
                &job,
                Response::fail(job.id.clone(), CODE_INTERNAL, e.to_string()),
            );
        }
    }
}

fn respond_evaluated(shared: &Arc<Shared>, job: &EvalJob, response: Response) {
    if response.code == CODE_OK {
        shared
            .metrics
            .record_served(job.cmd(), ms_since(job.received));
    } else {
        shared.metrics.record_rejected(response.code);
    }
    job.conn.send(&response);
}

fn build_status(shared: &Arc<Shared>) -> Json {
    let m = &shared.metrics;
    let load = |c: &std::sync::atomic::AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
    let latency = |cmd: &str| {
        let (count, p50, p99, max) = m.latency_stats(cmd);
        Json::obj(vec![
            ("count", Json::Num(count as f64)),
            ("p50_ms", Json::Num(p50)),
            ("p99_ms", Json::Num(p99)),
            ("max_ms", Json::Num(max)),
        ])
    };
    let devices: Vec<(String, Json)> = shared
        .state
        .loaded()
        .into_iter()
        .map(|device| {
            let (lut_entries, bias_us) = device.predictor_stats();
            let detail = Json::obj(vec![
                ("lut_entries", Json::Num(lut_entries as f64)),
                ("bias_us", Json::Num(bias_us)),
                ("predictor_version", Json::Num(device.version() as f64)),
                (
                    // Content hash of the live predictor, identical across
                    // every shard serving the same snapshot. Hex string:
                    // Json numbers are f64 and would round 64-bit stamps.
                    "lut_generation",
                    Json::Str(format!("{:016x}", device.lut_generation())),
                ),
                (
                    "cached_evaluations",
                    Json::Num(device.cached_evaluations() as f64),
                ),
                ("reloads_ok", load(&device.reloads_ok)),
                ("reloads_rejected", load(&device.reloads_rejected)),
                (
                    "spill",
                    Json::obj(vec![
                        ("loaded", load(&device.spill_loaded)),
                        ("written", load(&device.spill_written)),
                    ]),
                ),
            ]);
            (device.name.clone(), detail)
        })
        .collect();
    Json::obj(vec![
        ("uptime_ms", Json::Num(m.uptime_ms() as f64)),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::Acquire)),
        ),
        (
            "budget",
            Json::Str(shared.state.options().budget.name().into()),
        ),
        (
            "queue",
            Json::obj(vec![
                ("depth", Json::Num(shared.queue.len() as f64)),
                ("capacity", Json::Num(shared.queue.capacity() as f64)),
                ("peak", load(&m.queue_peak)),
            ]),
        ),
        ("connections", load(&m.connections)),
        (
            "served",
            Json::obj(vec![
                ("status", load(&m.served_status)),
                ("predict_latency", load(&m.served_predict)),
                ("score", load(&m.served_score)),
                ("search", load(&m.served_search)),
                ("pareto", load(&m.served_pareto)),
                ("shutdown", load(&m.served_shutdown)),
                ("infer", load(&m.served_infer)),
            ]),
        ),
        (
            "rejected",
            Json::obj(vec![
                ("overloaded", load(&m.rejected_overloaded)),
                ("malformed", load(&m.rejected_malformed)),
                ("oversized", load(&m.rejected_oversized)),
                ("unknown_device", load(&m.rejected_unknown_device)),
                ("shutting_down", load(&m.rejected_shutting_down)),
                ("internal", load(&m.internal_errors)),
            ]),
        ),
        (
            "batching",
            Json::obj(vec![
                ("batches", load(&m.batches)),
                ("batched_jobs", load(&m.batched_jobs)),
            ]),
        ),
        (
            "latency_ms",
            Json::obj(vec![
                ("predict_latency", latency("predict_latency")),
                ("score", latency("score")),
                ("search", latency("search")),
                ("pareto", latency("pareto")),
                ("infer", latency("infer")),
            ]),
        ),
        (
            // The precomputed `.hsbt` fast path for predict_latency/score.
            "bench_table",
            match &shared.table {
                None => Json::obj(vec![("loaded", Json::Bool(false))]),
                Some(table) => Json::obj(vec![
                    ("loaded", Json::Bool(true)),
                    ("entries", Json::Num(table.len() as f64)),
                    (
                        "devices",
                        Json::Arr(
                            table
                                .devices
                                .iter()
                                .map(|d| Json::Str(d.name.clone()))
                                .collect(),
                        ),
                    ),
                    ("hits", load(&m.table_hits)),
                    ("misses", load(&m.table_misses)),
                ]),
            },
        ),
        (
            // Compiled-artifact cache backing the `infer` command.
            "graphs",
            Json::obj(vec![
                ("cached", Json::Num(shared.state.graphs_cached() as f64)),
                ("cache_hits", load(&m.infer_cache_hits)),
            ]),
        ),
        ("devices", Json::Obj(devices)),
        (
            // Which GEMM kernel the tensor layer selected on this host
            // (HSCONAS_KERNEL override included), how many dispatches each
            // variant has taken since startup, how the band-parallel
            // driver split them, and the packed-weight cache counters.
            "kernel",
            {
                let counts = hsconas_tensor::kernels::dispatch_counts();
                let bands = hsconas_tensor::kernels::parallel_counts();
                let pack = hsconas_tensor::kernels::cache::stats();
                Json::obj(vec![
                    (
                        "variant",
                        Json::Str(hsconas_tensor::kernels::selected_variant().name().into()),
                    ),
                    (
                        "dispatch",
                        Json::obj(vec![
                            ("direct", Json::Num(counts.direct as f64)),
                            ("scalar", Json::Num(counts.scalar as f64)),
                            ("avx2", Json::Num(counts.avx2 as f64)),
                        ]),
                    ),
                    (
                        "bands",
                        Json::obj(vec![
                            ("serial", Json::Num(bands.serial as f64)),
                            ("parallel", Json::Num(bands.parallel as f64)),
                        ]),
                    ),
                    (
                        "pack_cache",
                        Json::obj(vec![
                            ("hits", Json::Num(pack.hits as f64)),
                            ("misses", Json::Num(pack.misses as f64)),
                            ("evictions", Json::Num(pack.evictions as f64)),
                            ("invalidations", Json::Num(pack.invalidations as f64)),
                            ("entries", Json::Num(pack.entries as f64)),
                            ("bytes", Json::Num(pack.bytes as f64)),
                            ("hit_rate", Json::Num(pack.hit_rate())),
                        ]),
                    ),
                ])
            },
        ),
    ])
}
