//! Worker-fleet process management: spawn N `hsconas serve` children on
//! ephemeral ports and collect their addresses for the router's ring.
//!
//! The spawn contract is the `hsconas-serve listening on ADDR` stdout
//! line every daemon prints after binding (the same line the smoke
//! scripts and the black-box harness parse). Each child gets `--port 0`
//! plus the caller's pass-through worker flags, so workers inherit the
//! budget/queue/state-dir configuration of the fleet as a whole.
//!
//! Shard identity is *positional*: child `i` becomes ring shard `i`, and
//! the ring hashes shard indices, so respawning the fleet with the same
//! worker count reproduces the same key→shard map even though every
//! ephemeral port changed.

use std::io::{self, BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// The stdout prefix every daemon prints once it is accepting
/// connections. Must match the `hsconas serve` CLI exactly — the smoke
/// scripts and the black-box harness parse the same line.
pub const LISTEN_PREFIX: &str = "hsconas-serve listening on ";

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Executable to spawn (the CLI passes its own `current_exe`).
    pub program: PathBuf,
    /// Number of workers.
    pub workers: usize,
    /// Extra arguments appended to every worker's
    /// `serve --port 0` command line (budget, queue, state-dir, ...).
    pub worker_args: Vec<String>,
    /// How long to wait for each worker's listen line before declaring
    /// the spawn failed.
    pub startup_timeout_ms: u64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            program: PathBuf::new(),
            workers: 2,
            worker_args: Vec::new(),
            startup_timeout_ms: 30_000,
        }
    }
}

/// A spawned worker fleet. Dropping the fleet kills any still-running
/// children — orderly exits go through [`Fleet::wait_exit`] after the
/// router has drained them.
#[derive(Debug)]
pub struct Fleet {
    children: Vec<Child>,
    addrs: Vec<String>,
}

impl Fleet {
    /// Spawns `options.workers` children and waits for each to report
    /// its listen address.
    ///
    /// # Errors
    ///
    /// Spawn failures, a worker exiting before its listen line, or the
    /// startup timeout elapsing. Already-spawned children are killed
    /// before the error returns — a failed spawn leaks nothing.
    pub fn spawn(options: &FleetOptions) -> io::Result<Fleet> {
        if options.workers == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "fleet needs at least one worker",
            ));
        }
        let mut fleet = Fleet {
            children: Vec::with_capacity(options.workers),
            addrs: Vec::with_capacity(options.workers),
        };
        for i in 0..options.workers {
            let spawned = spawn_worker(options, i);
            match spawned {
                Ok((child, addr)) => {
                    fleet.children.push(child);
                    fleet.addrs.push(addr);
                }
                Err(e) => {
                    // `fleet` drops here, killing the workers already up.
                    return Err(io::Error::new(
                        e.kind(),
                        format!("worker {i} failed to start: {e}"),
                    ));
                }
            }
        }
        Ok(fleet)
    }

    /// Worker addresses in shard order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Worker process ids in shard order (for pid-scoped leak checks).
    pub fn pids(&self) -> Vec<u32> {
        self.children.iter().map(Child::id).collect()
    }

    /// Waits up to `timeout` for every child to exit on its own (the
    /// router's drain sends each a `shutdown`), then kills and reaps any
    /// straggler. Returns the number of workers that had to be killed.
    pub fn wait_exit(&mut self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        loop {
            let all_done = self
                .children
                .iter_mut()
                .all(|c| matches!(c.try_wait(), Ok(Some(_))));
            if all_done {
                return 0;
            }
            if Instant::now() >= deadline {
                break;
            }
            thread::sleep(Duration::from_millis(25));
        }
        let mut killed = 0;
        for child in &mut self.children {
            if !matches!(child.try_wait(), Ok(Some(_))) {
                let _ = child.kill();
                let _ = child.wait();
                killed += 1;
            }
        }
        killed
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.children {
            if !matches!(child.try_wait(), Ok(Some(_))) {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Spawns one worker and blocks until its listen line arrives.
fn spawn_worker(options: &FleetOptions, index: usize) -> io::Result<(Child, String)> {
    let mut cmd = Command::new(&options.program);
    cmd.arg("serve")
        .arg("--port")
        .arg("0")
        .args(&options.worker_args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::other("worker stdout not captured"))?;

    // The listen line is read on a thread so the spawn can time out even
    // if the child hangs before binding. After the line, the thread keeps
    // draining stdout so the child never blocks on a full pipe.
    let (tx, rx) = mpsc::channel::<io::Result<String>>();
    let drain = thread::Builder::new()
        .name(format!("fleet-stdout-{index}"))
        .spawn(move || {
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            let result = match reader.read_line(&mut line) {
                Ok(0) => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "worker exited before printing its listen line",
                )),
                Ok(_) => {
                    let trimmed = line.trim_end();
                    trimmed.strip_prefix(LISTEN_PREFIX).map_or_else(
                        || {
                            Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("unexpected worker greeting: {trimmed:?}"),
                            ))
                        },
                        |addr| Ok(addr.to_string()),
                    )
                }
                Err(e) => Err(e),
            };
            let _ = tx.send(result);
            // Keep the pipe drained for the worker's lifetime.
            let mut sink = [0u8; 4096];
            while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
        });
    if let Err(e) = drain {
        let _ = child.kill();
        let _ = child.wait();
        return Err(e);
    }

    match rx.recv_timeout(Duration::from_millis(options.startup_timeout_ms.max(1))) {
        Ok(Ok(addr)) => Ok((child, addr)),
        Ok(Err(e)) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(e)
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "worker did not report a listen address within {} ms",
                    options.startup_timeout_ms
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_rejects_zero_workers() {
        let e = Fleet::spawn(&FleetOptions {
            workers: 0,
            ..FleetOptions::default()
        })
        .unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn spawn_fails_cleanly_for_missing_program() {
        let e = Fleet::spawn(&FleetOptions {
            program: PathBuf::from("/nonexistent/hsconas-fleet-test"),
            workers: 1,
            ..FleetOptions::default()
        })
        .unwrap_err();
        assert!(e.to_string().contains("worker 0"), "{e}");
    }

    #[test]
    fn spawn_rejects_wrong_greeting() {
        // `echo` exists everywhere the test suite runs and prints a line
        // that is not the listen greeting.
        let e = Fleet::spawn(&FleetOptions {
            program: PathBuf::from("/bin/echo"),
            workers: 1,
            startup_timeout_ms: 10_000,
            ..FleetOptions::default()
        })
        .unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("unexpected worker greeting") || msg.contains("listen line"),
            "{msg}"
        );
    }
}
