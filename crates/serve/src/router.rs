//! The fleet router: a protocol-transparent front-end that consistent-
//! hashes requests across N `hsconas serve` worker shards.
//!
//! ## Why a router
//!
//! One daemon is one process, one eval queue, one memo cache. The co-design
//! workload shards naturally on `{device, target}`: every expensive input
//! to a request (calibrated predictor, memo cache, EA work) is keyed by
//! that pair, so pinning each pair to one shard keeps the warm state
//! exactly as effective as in the single-daemon case — and keeps the
//! bit-identity contract *fleet-wide*, because a given `{device, target,
//! seed}` search always executes on the same shard.
//!
//! ## Routing
//!
//! * `search` / `score` route on the consistent hash of
//!   `(canonical device, target_ms bits)` — aliases like `edge` and
//!   `edge-xavier` canonicalize first, so they share a shard.
//! * `predict_latency` routes on `(canonical device, 0)` — no target in
//!   the request, and predictions only need the device's warm predictor.
//! * `pareto` routes on the hash of the canonical (sorted, deduped)
//!   device set plus the target bits — any permutation or alias spelling
//!   of the same fleet lands on the same shard, which is what makes the
//!   frontier bytes permutation-invariant through the router.
//! * `infer` routes on the genome, so each shard's compiled-graph cache
//!   accumulates a disjoint slice of the genome space.
//! * `status` is answered by the router itself as a fleet aggregate;
//!   `shutdown` triggers the fleet drain.
//!
//! The ring ([`HashRing`]) places [`VNODES_PER_SHARD`] virtual nodes per
//! shard by hashing `shard:{i}:vnode:{v}` labels — a pure function of the
//! shard *index*, so the key→shard map is identical across router restarts
//! with the same worker list, and growing the fleet from N to N+1 shards
//! remaps only the keys that land on the new shard's vnodes (≈ 1/(N+1)).
//!
//! ## Forwarding, failover, drain
//!
//! Request lines are forwarded to the owning shard *verbatim* and the
//! shard's response line is relayed back byte-for-byte — the router never
//! re-encodes, so fleet responses are bit-identical to single-daemon
//! responses by construction. Each client connection thread keeps one
//! pooled connection per shard; on a transport error the router reconnects
//! and resends once (safe: every routed command is a pure read or a
//! deterministic recomputation), and a second failure answers `503` for
//! that request while a background health prober marks the shard down.
//! Requests for healthy shards are completely unaffected — no crosstalk.
//!
//! Drain ordering on `shutdown`: stop admitting (new routed requests get
//! `503`), wait for in-flight forwards to complete, send `shutdown` to
//! every shard (each drains its own queue before exiting), then return so
//! the CLI can join fleet-spawned worker processes.

use crate::json::Json;
use crate::metrics::ServeMetrics;
use crate::proto::{
    read_frame, Command, Frame, Request, Response, CODE_BAD_REQUEST, CODE_OK, CODE_SHUTTING_DOWN,
    MAX_FRAME_BYTES,
};
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Virtual nodes per shard on the hash ring. More vnodes smooth the key
/// distribution; 64 keeps the max/min shard load ratio under ~1.3 for the
/// fleet sizes this serves (2–16) while the ring stays a few KiB.
pub const VNODES_PER_SHARD: usize = 64;

/// FNV-1a 64-bit — the workspace's standard content hash (checkpoint
/// checksums, genome fingerprints). Stable across platforms and builds,
/// which is what makes ring placement restart-stable.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Murmur3's 64-bit finalizer. FNV-1a alone diffuses tail-byte changes
/// poorly into the high bits, which is exactly what ring *ordering* keys
/// on — without this, the vnodes of one shard cluster and shard load
/// skews past 10×. Pure arithmetic, so just as restart-stable as FNV.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// The consistent-hash ring: a sorted list of `(position, shard)` points.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring for `shards` workers with `vnodes` virtual nodes
    /// each. Placement depends only on shard indices, never addresses, so
    /// the same worker-list *order* reproduces the same ring.
    #[must_use]
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                points.push((
                    mix64(fnv1a_64(format!("shard:{s}:vnode:{v}").as_bytes())),
                    s,
                ));
            }
        }
        points.sort_unstable();
        // A position collision (astronomically unlikely) would make shard
        // choice order-dependent; keep the lower shard index, always.
        points.dedup_by_key(|p| p.0);
        HashRing { points, shards }
    }

    /// Number of shards the ring was built for.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first vnode clockwise from the key's
    /// (finalized) position, wrapping at the top of the u64 circle.
    #[must_use]
    pub fn shard_for(&self, key: u64) -> usize {
        let pos_key = mix64(key);
        let idx = self.points.partition_point(|&(pos, _)| pos < pos_key);
        self.points[if idx == self.points.len() { 0 } else { idx }].1
    }
}

/// The routing key for one command, or `None` for commands the router
/// answers itself (`status`, `shutdown`).
#[must_use]
pub fn route_key(command: &Command) -> Option<u64> {
    match command {
        Command::Status | Command::Shutdown => None,
        Command::PredictLatency { device, .. } => Some(device_target_key(device, 0.0)),
        Command::Score {
            device, target_ms, ..
        }
        | Command::Search {
            device, target_ms, ..
        } => Some(device_target_key(device, *target_ms)),
        Command::Pareto {
            devices, target_ms, ..
        } => Some(device_set_key(devices, *target_ms)),
        Command::Infer { arch, .. } => Some(arch_route_key(arch)),
    }
}

/// Hash of `(canonical sorted deduped device set, target_ms bits)` for
/// `pareto` routing. Aliases canonicalize and the set is sorted and
/// deduped first, so `["gpu","edge"]`, `["edge","gpu-gv100"]`, and
/// `["edge","edge","gpu"]` all produce the same key.
#[must_use]
pub fn device_set_key(devices: &[String], target_ms: f64) -> u64 {
    let mut names: Vec<String> = devices
        .iter()
        .map(|d| {
            crate::state::device_by_name(d)
                .map(|spec| spec.name)
                .unwrap_or_else(|| d.clone())
        })
        .collect();
    names.sort();
    names.dedup();
    let mut keyed = Vec::new();
    for name in &names {
        keyed.extend_from_slice(name.as_bytes());
        keyed.push(0xff); // separator: device names never contain 0xff
    }
    keyed.extend_from_slice(&target_ms.to_bits().to_le_bytes());
    fnv1a_64(&keyed)
}

/// Hash of `(canonical device, target_ms bits)`. Unknown device names hash
/// as spelled — they still route deterministically, and the owning shard
/// answers the 404 (so error bytes match the single-daemon ones too).
#[must_use]
pub fn device_target_key(device: &str, target_ms: f64) -> u64 {
    let canonical = crate::state::device_by_name(device).map(|spec| spec.name);
    let name = canonical.as_deref().unwrap_or(device);
    let mut keyed = Vec::with_capacity(name.len() + 9);
    keyed.extend_from_slice(name.as_bytes());
    keyed.push(0xff); // separator: device names never contain 0xff
    keyed.extend_from_slice(&target_ms.to_bits().to_le_bytes());
    fnv1a_64(&keyed)
}

/// Hash of a wire-encoded genome, for `infer` routing.
#[must_use]
pub fn arch_route_key(arch: &[usize]) -> u64 {
    let mut bytes = Vec::with_capacity(arch.len() * 8);
    for &gene in arch {
        bytes.extend_from_slice(&(gene as u64).to_le_bytes());
    }
    fnv1a_64(&bytes)
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Bind host.
    pub host: String,
    /// Bind port; 0 picks an ephemeral port.
    pub port: u16,
    /// Worker addresses, in ring order. Order is part of the contract:
    /// the same list order reproduces the same key→shard map.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Health-probe interval; 0 disables the prober (requests still fail
    /// over per-call).
    pub health_ms: u64,
    /// Read timeout for one forwarded request (searches can take a while
    /// under the full budget).
    pub shard_timeout_ms: u64,
    /// Whether drain forwards `shutdown` to every shard (true for a fleet
    /// the router owns; false to leave externally managed workers up).
    pub drain_shards: bool,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            host: "127.0.0.1".into(),
            port: 0,
            shards: Vec::new(),
            vnodes: VNODES_PER_SHARD,
            health_ms: 500,
            shard_timeout_ms: 300_000,
            drain_shards: true,
        }
    }
}

/// Per-shard routing state and counters.
pub struct ShardState {
    /// Worker address (`host:port`).
    pub addr: String,
    /// Last health-probe / forward outcome.
    healthy: AtomicBool,
    /// Requests routed to this shard (attempts, including retries' firsts).
    pub routed: AtomicU64,
    /// Forward attempts that failed once and were resent on a fresh
    /// connection.
    pub retried: AtomicU64,
    /// Requests answered `503` because the resend failed too.
    pub failed: AtomicU64,
}

impl ShardState {
    fn new(addr: String) -> ShardState {
        ShardState {
            addr,
            healthy: AtomicBool::new(true),
            routed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Whether the last contact with this shard succeeded.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }
}

struct RouterShared {
    addr: SocketAddr,
    options: RouterOptions,
    ring: HashRing,
    shards: Vec<ShardState>,
    draining: AtomicBool,
    in_flight: AtomicU64,
    started: Instant,
    connections: AtomicU64,
    malformed: AtomicU64,
    rejected_draining: AtomicU64,
    health_probes: AtomicU64,
    health_failures: AtomicU64,
    /// Router-side per-command latency histograms (measured around the
    /// full forward hop, so these are the client-visible SLO numbers).
    metrics: ServeMetrics,
}

impl RouterShared {
    fn begin_shutdown(&self) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A bound router, ready to [`run`](Router::run).
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Binds the router listener. Does not contact the shards yet — the
    /// first request (or health probe) does.
    ///
    /// # Errors
    ///
    /// Bind errors; [`io::ErrorKind::InvalidInput`] when no shards are
    /// configured.
    pub fn bind(options: RouterOptions) -> io::Result<Router> {
        if options.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard address",
            ));
        }
        let listener = TcpListener::bind((options.host.as_str(), options.port))?;
        let addr = listener.local_addr()?;
        let ring = HashRing::new(options.shards.len(), options.vnodes);
        let shards = options
            .shards
            .iter()
            .cloned()
            .map(ShardState::new)
            .collect();
        Ok(Router {
            listener,
            shared: Arc::new(RouterShared {
                addr,
                options,
                ring,
                shards,
                draining: AtomicBool::new(false),
                in_flight: AtomicU64::new(0),
                started: Instant::now(),
                connections: AtomicU64::new(0),
                malformed: AtomicU64::new(0),
                rejected_draining: AtomicU64::new(0),
                health_probes: AtomicU64::new(0),
                health_failures: AtomicU64::new(0),
                metrics: ServeMetrics::new(),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a `shutdown` request arrives, then drains: stop
    /// admitting, wait for in-flight forwards, tell every shard to drain
    /// (when [`RouterOptions::drain_shards`]), and return.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop I/O errors only.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;

        let prober = if shared.options.health_ms > 0 {
            let shared = Arc::clone(&shared);
            let interval = Duration::from_millis(shared.options.health_ms);
            Some(
                thread::Builder::new()
                    .name("route-health".into())
                    .spawn(move || {
                        while !shared.draining.load(Ordering::Acquire) {
                            thread::sleep(interval);
                            probe_all(&shared);
                        }
                    })?,
            )
        } else {
            None
        };

        for stream in self.listener.incoming() {
            if shared.draining.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            // One-line frames; see the matching note in `server.rs` — the
            // router pays the Nagle stall twice (client hop + shard hop).
            let _ = stream.set_nodelay(true);
            shared.connections.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&shared);
            let _ = thread::Builder::new()
                .name("route-conn".into())
                .spawn(move || handle_connection(&shared, stream));
        }

        // Drain: let in-flight forwards finish writing their responses
        // before the shards are told to exit underneath them.
        let deadline = Instant::now() + Duration::from_millis(shared.options.shard_timeout_ms);
        while shared.in_flight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        if shared.options.drain_shards {
            for shard in &shared.shards {
                drain_shard(&shared, shard);
            }
        }
        if let Some(prober) = prober {
            let _ = prober.join();
        }
        Ok(())
    }
}

/// One pooled connection to a shard.
struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn shard_connect(addr: &str, timeout: Duration) -> io::Result<ShardConn> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable shard addr"))?;
    let stream = TcpStream::connect_timeout(&sock_addr, Duration::from_millis(1_000))?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    let writer = stream.try_clone()?;
    Ok(ShardConn {
        reader: BufReader::new(stream),
        writer,
    })
}

/// Writes one raw request line and reads one raw response line.
fn exchange(conn: &mut ShardConn, line: &[u8]) -> io::Result<Vec<u8>> {
    conn.writer.write_all(line)?;
    conn.writer.write_all(b"\n")?;
    conn.writer.flush()?;
    match read_frame(&mut conn.reader, MAX_FRAME_BYTES)? {
        Frame::Line(bytes) => Ok(bytes),
        Frame::Oversized => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized shard reply",
        )),
        Frame::Eof => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "shard closed the connection",
        )),
    }
}

fn handle_connection(shared: &Arc<RouterShared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Mutex::new(write_half);
    let send_line = |bytes: &[u8]| {
        let mut guard = lock(&writer);
        let _ = guard.write_all(bytes);
        let _ = guard.write_all(b"\n");
        let _ = guard.flush();
    };
    let send_response = |response: &Response| send_line(response.encode().as_bytes());

    // One pooled connection per shard, owned by this client connection, so
    // request/response ordering per shard link is trivially FIFO.
    let mut pool: HashMap<usize, ShardConn> = HashMap::new();
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Err(_) | Ok(Frame::Eof) => break,
            Ok(Frame::Oversized) => {
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                send_response(&Response::fail(
                    "",
                    crate::proto::CODE_FRAME_TOO_LARGE,
                    format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                ));
            }
            Ok(Frame::Line(line)) => {
                if line.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                let request = match Request::decode(&line) {
                    Err(e) => {
                        shared.malformed.fetch_add(1, Ordering::Relaxed);
                        send_response(&Response::fail(e.id.unwrap_or_default(), e.code, e.detail));
                        continue;
                    }
                    Ok(request) => request,
                };
                let _span = hsconas_telemetry::span!("route.request", cmd = request.command.name());
                match route_key(&request.command) {
                    None => match request.command {
                        Command::Status => {
                            let started = Instant::now();
                            let status = build_fleet_status(shared);
                            shared
                                .metrics
                                .record_served("status", started.elapsed().as_secs_f64() * 1e3);
                            send_response(&Response::ok(request.id, status));
                        }
                        Command::Shutdown => {
                            shared.metrics.record_served("shutdown", 0.0);
                            send_response(&Response::ok(
                                request.id,
                                Json::obj(vec![
                                    ("draining", Json::Bool(true)),
                                    ("workers", Json::Num(shared.shards.len() as f64)),
                                ]),
                            ));
                            shared.begin_shutdown();
                        }
                        _ => unreachable!("route_key is None only for status/shutdown"),
                    },
                    Some(key) => {
                        if shared.draining.load(Ordering::Acquire) {
                            shared.rejected_draining.fetch_add(1, Ordering::Relaxed);
                            send_response(&Response::fail(
                                request.id,
                                CODE_SHUTTING_DOWN,
                                "router is draining",
                            ));
                            continue;
                        }
                        let shard_idx = shared.ring.shard_for(key);
                        shared.in_flight.fetch_add(1, Ordering::AcqRel);
                        let reply = forward(shared, &mut pool, shard_idx, &line, &request);
                        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                        match reply {
                            Ok(bytes) => send_line(&bytes),
                            Err(response) => send_response(&response),
                        }
                    }
                }
            }
        }
    }
}

/// Forwards one raw request line to `shard_idx`, relaying the raw reply.
/// On a transport error the pooled connection is dropped and the request
/// resent once on a fresh one; a second failure yields the `503` this
/// returns as `Err`. Resending is safe because every routed command is a
/// pure read or a deterministic recomputation — a duplicated execution
/// produces the same bytes.
fn forward(
    shared: &Arc<RouterShared>,
    pool: &mut HashMap<usize, ShardConn>,
    shard_idx: usize,
    line: &[u8],
    request: &Request,
) -> Result<Vec<u8>, Response> {
    let shard = &shared.shards[shard_idx];
    let timeout = Duration::from_millis(shared.options.shard_timeout_ms.max(1));
    shard.routed.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();

    fn attempt(
        pool: &mut HashMap<usize, ShardConn>,
        shard_idx: usize,
        addr: &str,
        timeout: Duration,
        line: &[u8],
    ) -> io::Result<Vec<u8>> {
        if let std::collections::hash_map::Entry::Vacant(slot) = pool.entry(shard_idx) {
            slot.insert(shard_connect(addr, timeout)?);
        }
        let conn = pool.get_mut(&shard_idx).expect("pooled conn");
        exchange(conn, line)
    }

    let bytes = match attempt(pool, shard_idx, &shard.addr, timeout, line) {
        Ok(bytes) => bytes,
        Err(_) => {
            // First failure: the pooled connection may simply be stale
            // (shard restarted since). Reconnect and resend once.
            pool.remove(&shard_idx);
            shard.retried.fetch_add(1, Ordering::Relaxed);
            match attempt(pool, shard_idx, &shard.addr, timeout, line) {
                Ok(bytes) => bytes,
                Err(e) => {
                    pool.remove(&shard_idx);
                    shard.failed.fetch_add(1, Ordering::Relaxed);
                    shard.healthy.store(false, Ordering::Release);
                    shared.metrics.record_rejected(CODE_SHUTTING_DOWN);
                    return Err(Response::fail(
                        request.id.clone(),
                        CODE_SHUTTING_DOWN,
                        format!("shard {shard_idx} ({}) unavailable: {e}", shard.addr),
                    ));
                }
            }
        }
    };
    shard.healthy.store(true, Ordering::Release);
    // Record the router-side latency under the request's own command name
    // so fleet SLOs are measured where the client sees them.
    match Response::decode(&bytes) {
        Ok(response) if response.code == CODE_OK => shared.metrics.record_served(
            request.command.name(),
            started.elapsed().as_secs_f64() * 1e3,
        ),
        Ok(response) => shared.metrics.record_rejected(response.code),
        Err(_) => shared.metrics.record_rejected(CODE_BAD_REQUEST),
    }
    Ok(bytes)
}

/// One health sweep: a `status` round-trip per shard with a short timeout.
fn probe_all(shared: &Arc<RouterShared>) {
    for shard in &shared.shards {
        shared.health_probes.fetch_add(1, Ordering::Relaxed);
        let healthy = probe_status(&shard.addr, Duration::from_millis(2_000)).is_ok();
        if !healthy {
            shared.health_failures.fetch_add(1, Ordering::Relaxed);
        }
        shard.healthy.store(healthy, Ordering::Release);
    }
}

/// A `status` request on a fresh connection, returning the result object.
fn probe_status(addr: &str, timeout: Duration) -> io::Result<Json> {
    let mut conn = shard_connect(addr, timeout)?;
    let bytes = exchange(&mut conn, br#"{"id":"router-probe","cmd":"status"}"#)?;
    let response = Response::decode(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    response
        .result
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "status carried no result"))
}

/// Best-effort `shutdown` to one shard during drain.
fn drain_shard(shared: &Arc<RouterShared>, shard: &ShardState) {
    let attempt = || -> io::Result<()> {
        let mut conn = shard_connect(&shard.addr, Duration::from_millis(10_000))?;
        exchange(&mut conn, br#"{"id":"router-drain","cmd":"shutdown"}"#)?;
        Ok(())
    };
    if let Err(e) = attempt() {
        // A shard that is already gone does not block fleet drain; the
        // process layer (fleet join) handles stragglers.
        eprintln!("hsconas-route: drain of shard {} skipped: {e}", shard.addr);
        let _ = shared; // counters already tell the story
    }
}

/// Sums an integer field at `path` across shard status objects.
fn sum_field(statuses: &[Option<Json>], path: [&str; 2]) -> u64 {
    statuses
        .iter()
        .flatten()
        .filter_map(|s| {
            s.get(path[0])
                .and_then(|o| o.get(path[1]))
                .and_then(Json::as_u64)
        })
        .sum()
}

/// The fleet `status` aggregate: router counters and latency histograms,
/// per-shard health + routing counters + the shard's own full status, and
/// fleet-wide served/rejected sums (the soak test's accounting source —
/// `served + overloaded == sent` is checked against these).
fn build_fleet_status(shared: &Arc<RouterShared>) -> Json {
    let m = &shared.metrics;
    let load = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
    let statuses: Vec<Option<Json>> = shared
        .shards
        .iter()
        .map(|shard| {
            let status = probe_status(&shard.addr, Duration::from_millis(5_000)).ok();
            shard.healthy.store(status.is_some(), Ordering::Release);
            status
        })
        .collect();
    let healthy = statuses.iter().filter(|s| s.is_some()).count();

    let served_cmds = [
        "status",
        "predict_latency",
        "score",
        "search",
        "pareto",
        "shutdown",
        "infer",
    ];
    let rejected_kinds = [
        "overloaded",
        "malformed",
        "oversized",
        "unknown_device",
        "shutting_down",
        "internal",
    ];
    let fleet_served: Vec<(String, Json)> = served_cmds
        .iter()
        .map(|cmd| {
            (
                (*cmd).to_string(),
                Json::Num(sum_field(&statuses, ["served", cmd]) as f64),
            )
        })
        .collect();
    let fleet_rejected: Vec<(String, Json)> = rejected_kinds
        .iter()
        .map(|kind| {
            (
                (*kind).to_string(),
                Json::Num(sum_field(&statuses, ["rejected", kind]) as f64),
            )
        })
        .collect();

    let shard_objs: Vec<Json> = shared
        .shards
        .iter()
        .zip(&statuses)
        .map(|(shard, status)| {
            let mut fields = vec![
                ("addr", Json::Str(shard.addr.clone())),
                ("healthy", Json::Bool(status.is_some())),
                ("routed", load(&shard.routed)),
                ("retried", load(&shard.retried)),
                ("failed", load(&shard.failed)),
            ];
            if let Some(status) = status {
                fields.push(("status", status.clone()));
            }
            Json::obj(fields)
        })
        .collect();

    let latency = |cmd: &str| {
        let (count, p50, p99, max) = m.latency_stats(cmd);
        Json::obj(vec![
            ("count", Json::Num(count as f64)),
            ("p50_ms", Json::Num(p50)),
            ("p99_ms", Json::Num(p99)),
            ("max_ms", Json::Num(max)),
        ])
    };
    let routed_total: u64 = shared
        .shards
        .iter()
        .map(|s| s.routed.load(Ordering::Relaxed))
        .sum();
    let retried_total: u64 = shared
        .shards
        .iter()
        .map(|s| s.retried.load(Ordering::Relaxed))
        .sum();
    let failed_total: u64 = shared
        .shards
        .iter()
        .map(|s| s.failed.load(Ordering::Relaxed))
        .sum();

    Json::obj(vec![
        (
            "fleet",
            Json::obj(vec![
                ("workers", Json::Num(shared.shards.len() as f64)),
                ("healthy", Json::Num(healthy as f64)),
                ("served", Json::Obj(fleet_served)),
                ("rejected", Json::Obj(fleet_rejected)),
            ]),
        ),
        (
            "router",
            Json::obj(vec![
                (
                    "uptime_ms",
                    Json::Num(shared.started.elapsed().as_millis() as f64),
                ),
                (
                    "draining",
                    Json::Bool(shared.draining.load(Ordering::Acquire)),
                ),
                ("connections", load(&shared.connections)),
                ("routed", Json::Num(routed_total as f64)),
                ("retried", Json::Num(retried_total as f64)),
                ("failed", Json::Num(failed_total as f64)),
                ("malformed", load(&shared.malformed)),
                ("rejected_draining", load(&shared.rejected_draining)),
                (
                    "health",
                    Json::obj(vec![
                        ("probes", load(&shared.health_probes)),
                        ("failures", load(&shared.health_failures)),
                    ]),
                ),
                (
                    "latency_ms",
                    Json::obj(vec![
                        ("predict_latency", latency("predict_latency")),
                        ("score", latency("score")),
                        ("search", latency("search")),
                        ("pareto", latency("pareto")),
                        ("infer", latency("infer")),
                    ]),
                ),
            ]),
        ),
        ("shards", Json::Arr(shard_objs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_across_rebuilds() {
        let a = HashRing::new(4, VNODES_PER_SHARD);
        let b = HashRing::new(4, VNODES_PER_SHARD);
        for i in 0..10_000u64 {
            let key = fnv1a_64(&i.to_le_bytes());
            assert_eq!(a.shard_for(key), b.shard_for(key));
        }
    }

    #[test]
    fn growing_the_fleet_moves_about_one_over_n_keys() {
        let n = 4;
        let before = HashRing::new(n, VNODES_PER_SHARD);
        let after = HashRing::new(n + 1, VNODES_PER_SHARD);
        let keys = 20_000u64;
        let mut moved = 0usize;
        for i in 0..keys {
            let key = fnv1a_64(&i.to_le_bytes());
            let (was, now) = (before.shard_for(key), after.shard_for(key));
            if was != now {
                // Consistency: a moved key may only move TO the new shard.
                assert_eq!(now, n, "key moved between old shards: {was} -> {now}");
                moved += 1;
            }
        }
        let expected = keys as f64 / (n + 1) as f64;
        let ratio = moved as f64 / expected;
        assert!(
            (0.5..2.0).contains(&ratio),
            "moved {moved} keys; expected about {expected}"
        );
    }

    #[test]
    fn ring_distributes_keys_reasonably_evenly() {
        let n = 3;
        let ring = HashRing::new(n, VNODES_PER_SHARD);
        let mut counts = vec![0usize; n];
        let keys = 30_000u64;
        for i in 0..keys {
            counts[ring.shard_for(fnv1a_64(&i.to_le_bytes()))] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(
            max / min < 2.0,
            "shard load skew too high: {counts:?} (max/min {:.2})",
            max / min
        );
    }

    #[test]
    fn device_aliases_share_a_routing_key() {
        assert_eq!(
            device_target_key("edge", 34.0),
            device_target_key("edge-xavier", 34.0)
        );
        assert_eq!(
            device_target_key("gpu", 9.0),
            device_target_key("gpu-gv100", 9.0)
        );
        assert_ne!(
            device_target_key("edge", 34.0),
            device_target_key("edge", 35.0),
            "targets must shard independently"
        );
        assert_ne!(
            device_target_key("edge", 34.0),
            device_target_key("cpu", 34.0),
            "devices must shard independently"
        );
    }

    #[test]
    fn pareto_routing_is_permutation_and_alias_invariant() {
        let key = |devices: &[&str], target: f64| {
            route_key(&Command::Pareto {
                devices: devices.iter().map(|d| (*d).to_string()).collect(),
                target_ms: target,
                seed: 0,
            })
        };
        let canonical = key(&["cpu-xeon-6136", "edge-xavier", "gpu-gv100"], 24.0);
        assert_eq!(key(&["gpu", "edge", "cpu"], 24.0), canonical);
        assert_eq!(key(&["edge", "cpu", "gpu", "gpu", "edge"], 24.0), canonical);
        assert_ne!(key(&["gpu", "edge"], 24.0), canonical);
        assert_ne!(
            key(&["gpu", "edge", "cpu"], 25.0),
            canonical,
            "targets must shard independently"
        );
        // Seed is deliberately NOT part of the key: same device set, same
        // shard, so differently seeded frontiers share the memo cache.
        assert_eq!(
            route_key(&Command::Pareto {
                devices: vec!["edge".into()],
                target_ms: 24.0,
                seed: 1,
            }),
            route_key(&Command::Pareto {
                devices: vec!["edge".into()],
                target_ms: 24.0,
                seed: 2,
            })
        );
    }

    #[test]
    fn route_keys_cover_every_command() {
        assert!(route_key(&Command::Status).is_none());
        assert!(route_key(&Command::Shutdown).is_none());
        let score = Command::Score {
            device: "edge".into(),
            target_ms: 34.0,
            arch: vec![0, 9],
        };
        let search = Command::Search {
            device: "edge-xavier".into(),
            target_ms: 34.0,
            seed: 7,
        };
        // Score and search for the same {device, target} share a shard, so
        // searches reuse the memo entries scores populated.
        assert_eq!(route_key(&score), route_key(&search));
        let predict = Command::PredictLatency {
            device: "edge".into(),
            arch: vec![0, 9],
        };
        assert!(route_key(&predict).is_some());
        let infer = Command::Infer {
            arch: vec![0, 9, 1, 3],
            input_seed: 0,
            batch: 1,
        };
        let infer2 = Command::Infer {
            arch: vec![0, 9, 1, 4],
            input_seed: 5,
            batch: 2,
        };
        assert!(route_key(&infer).is_some());
        // Same genome, different seed/batch: same shard (cache locality).
        let infer_same_arch = Command::Infer {
            arch: vec![0, 9, 1, 3],
            input_seed: 99,
            batch: 4,
        };
        assert_eq!(route_key(&infer), route_key(&infer_same_arch));
        assert_ne!(route_key(&infer), route_key(&infer2));
    }
}
