//! Warm per-device serving state.
//!
//! The expensive part of answering a request is everything that does *not*
//! depend on the request: the search space, the surrogate accuracy oracle,
//! and above all the calibrated latency predictor (Eq. 2 LUT + Eq. 3
//! bias). [`WarmState`] builds that once per device on first touch and
//! keeps it hot:
//!
//! * **Snapshot persistence** — with a `--state-dir`, a freshly calibrated
//!   predictor is exported to `<dir>/<device>.predictor.json` via the
//!   crash-safe [`hsconas_ckpt::write_atomic_bytes`], and later server
//!   starts load it back instead of recalibrating.
//! * **Hot reload** — [`WarmState::poll_reload`] watches each snapshot
//!   file's mtime; a changed file is re-read and validated through
//!   [`LatencyPredictor::from_snapshot`], which refuses any LUT whose key
//!   set is foreign to the search space. A rejected snapshot is loud (one
//!   stderr line + a counter) and the previous predictor stays in service.
//! * **Cross-request dedup** — evaluation memo caches
//!   ([`SharedEvalCache`]) are keyed by `(predictor version, target_ms
//!   bits)`: an `Evaluation` embeds the Eq. 1 score, which depends on both
//!   the LUT contents and the target, so sharing across either boundary
//!   would serve wrong bytes. A successful reload bumps the version and
//!   drops the old caches; in-flight work keeps its `Arc` to the old
//!   predictor and stays internally consistent.
//! * **Generation stamps** — the per-process `version` counter cannot
//!   name a predictor across processes (two shards loading the same
//!   snapshot would both say 0). [`DeviceState::lut_generation`] is the
//!   FNV-1a hash of the serialized predictor export: a pure function of
//!   the LUT contents, so every shard of a fleet reports the same stamp
//!   for the same snapshot and a `--lut-watch-ms` rollout can be observed
//!   converging shard by shard without mixing generations.
//! * **Persistent spill tier** — with a `--state-dir`, memo caches spill
//!   to `<dir>/spill/<device>.t<target>.g<generation>.evals` through the
//!   same crash-safe atomic writer, and a fresh cache for that exact
//!   `(device, target, generation)` preloads the file. Values are pure
//!   functions of the fingerprint given the generation and target, so a
//!   preloaded hit returns exactly what recomputation would — restarts
//!   (and sibling shards sharing the dir) skip the work without risking
//!   the determinism contract.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_evo::{tradeoff_score, Evaluation, EvoError, SharedEvalCache};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::{LatencyPredictor, PredictorSnapshot};
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Eq. 1 trade-off coefficient used by the serving layer; matches
/// `TradeoffObjective::DEFAULT_BETA` so served scores equal pipeline scores.
pub const BETA: f64 = -20.0;

/// How much work a request is allowed to cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Small calibration (20 archs x 2 repeats) and a short EA
    /// (8 generations, population 20). Answers in milliseconds; the
    /// default, and what the protocol tests run.
    Fast,
    /// Paper-scale EA (20 generations, population 50) and a denser
    /// calibration (100 archs x 5 repeats).
    Full,
}

impl Budget {
    /// Parses the CLI/wire spelling.
    pub fn parse(s: &str) -> Option<Budget> {
        match s {
            "fast" => Some(Budget::Fast),
            "full" => Some(Budget::Full),
            _ => None,
        }
    }

    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Budget::Fast => "fast",
            Budget::Full => "full",
        }
    }

    /// `(calibration archs, repeats per arch)` for Eq. 3.
    pub fn calibration(self) -> (usize, usize) {
        match self {
            Budget::Fast => (20, 2),
            Budget::Full => (100, 5),
        }
    }

    /// EA hyper-parameters for `search` requests.
    pub fn evolution_config(self) -> hsconas_evo::EvolutionConfig {
        match self {
            Budget::Fast => hsconas_evo::EvolutionConfig {
                generations: 8,
                population: 20,
                parents: 8,
                ..Default::default()
            },
            Budget::Full => hsconas_evo::EvolutionConfig::default(),
        }
    }
}

/// Server configuration, filled by the `hsconas serve` CLI.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind host.
    pub host: String,
    /// Bind port; 0 picks an ephemeral port (printed on startup).
    pub port: u16,
    /// Directory for predictor snapshots; `None` disables persistence and
    /// hot reload.
    pub state_dir: Option<PathBuf>,
    /// Per-request work budget.
    pub budget: Budget,
    /// Evaluation queue bound; pushes beyond it get `429 overloaded`.
    pub queue_capacity: usize,
    /// Threads draining the evaluation queue.
    pub eval_workers: usize,
    /// `hsconas_par` pool width used inside one batch evaluation
    /// (0 = process default).
    pub pool_threads: usize,
    /// Most queued jobs merged into one micro-batch.
    pub batch_max: usize,
    /// Snapshot-file poll interval for hot reload; 0 disables the watcher.
    pub lut_watch_ms: u64,
    /// Devices to warm up (calibrate/load) before accepting connections.
    pub preload: Vec<String>,
    /// Seed for predictor calibration; fixed so restarts predict
    /// identically.
    pub calibration_seed: u64,
    /// Test hook: sleep this long per evaluation batch so the soak test
    /// can fill the queue deterministically. 0 in production.
    pub slow_eval_ms: u64,
    /// Optional precomputed `.hsbt` bench table; covered `predict_latency`
    /// and `score` requests answer O(1) from it instead of the queue.
    pub bench_table: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            host: "127.0.0.1".into(),
            port: 0,
            state_dir: None,
            budget: Budget::Fast,
            queue_capacity: 64,
            eval_workers: 2,
            pool_threads: 0,
            batch_max: 16,
            lut_watch_ms: 0,
            preload: Vec::new(),
            calibration_seed: 2021,
            slow_eval_ms: 0,
            bench_table: None,
        }
    }
}

/// Serving-layer failure, mapped to a protocol response code by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a device this build does not model.
    UnknownDevice(String),
    /// Anything else — surfaces as `500 internal`.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDevice(name) => write!(
                f,
                "unknown device '{name}' (known: gpu, cpu, edge, or their full names)"
            ),
            ServeError::Internal(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Resolves a device name or alias to its spec.
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name {
        "gpu" | "gpu-gv100" => Some(DeviceSpec::gpu_gv100()),
        "cpu" | "cpu-xeon-6136" => Some(DeviceSpec::cpu_xeon_6136()),
        "edge" | "edge-xavier" => Some(DeviceSpec::edge_xavier()),
        _ => None,
    }
}

/// Everything needed to evaluate one batch consistently: the predictor
/// generation the batch saw at admission to execution, and the memo cache
/// shared by every request against that `(version, target)` pair.
pub struct EvalContext {
    /// The predictor to read latencies from.
    pub predictor: Arc<LatencyPredictor>,
    /// The cross-request memo cache for this `(predictor, target)`.
    pub cache: SharedEvalCache,
    /// Latency target in milliseconds.
    pub target_ms: f64,
}

/// Spill a cache once it has grown by this many entries since its last
/// spill (the drain path spills any growth regardless).
const SPILL_EVERY: usize = 64;

/// Per-cache spill bookkeeping: the generation the cache was created
/// under (spills must never write old entries under a newer generation's
/// filename) and the entry count already on disk.
#[derive(Clone, Copy)]
struct SpillMeta {
    generation: u64,
    last_spilled: usize,
}

/// Warm state for one device.
pub struct DeviceState {
    /// Canonical device name (e.g. `edge-xavier`).
    pub name: String,
    /// The search space served for this device.
    pub space: SearchSpace,
    oracle: SurrogateAccuracy,
    predictor: Mutex<Arc<LatencyPredictor>>,
    /// Bumped on every successful hot reload.
    version: AtomicU64,
    /// Content hash of the live predictor (see module docs); updated
    /// together with `version` on reload.
    lut_generation: AtomicU64,
    /// Memo caches keyed by `(predictor version, target_ms.to_bits())`.
    caches: Mutex<HashMap<(u64, u64), SharedEvalCache>>,
    /// Spill bookkeeping per cache key; cleared with the caches on reload.
    spill_meta: Mutex<HashMap<(u64, u64), SpillMeta>>,
    /// Spill-file directory; `None` disables the persistent tier.
    spill_dir: Option<PathBuf>,
    snapshot_path: Option<PathBuf>,
    snapshot_mtime: Mutex<Option<SystemTime>>,
    /// Successful hot reloads.
    pub reloads_ok: AtomicU64,
    /// Snapshot files refused by validation (stale/foreign/corrupt).
    pub reloads_rejected: AtomicU64,
    /// Evaluations preloaded from spill files into fresh caches.
    pub spill_loaded: AtomicU64,
    /// New evaluations written out to spill files.
    pub spill_written: AtomicU64,
}

impl DeviceState {
    /// The current predictor reload count (0 until the first reload).
    /// Process-local — use [`DeviceState::lut_generation`] to compare
    /// predictors across shards.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The content-hash generation stamp of the live predictor.
    pub fn lut_generation(&self) -> u64 {
        self.lut_generation.load(Ordering::Acquire)
    }

    /// A consistent `(predictor, cache)` pair for evaluating against
    /// `target_ms`. Concurrent callers with the same target and predictor
    /// generation share one cache — that is the cross-request dedup. A
    /// cache's first touch preloads its spill file, when the tier is on.
    pub fn eval_context(&self, target_ms: f64) -> EvalContext {
        let (predictor, version) = {
            let guard = lock(&self.predictor);
            (Arc::clone(&guard), self.version())
        };
        let key = (version, target_ms.to_bits());
        let mut caches = lock(&self.caches);
        let cache = match caches.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => slot.get().clone(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                let cache = SharedEvalCache::default();
                let generation = self.lut_generation();
                let mut on_disk = 0usize;
                if let Some(dir) = &self.spill_dir {
                    let path = spill_path(dir, &self.name, key.1, generation);
                    if let Some(entries) = read_spill(&path, &self.name, key.1, generation) {
                        on_disk = entries.len();
                        self.spill_loaded
                            .fetch_add(on_disk as u64, Ordering::Relaxed);
                        cache.import_entries(entries);
                    }
                }
                lock(&self.spill_meta).insert(
                    key,
                    SpillMeta {
                        generation,
                        last_spilled: on_disk,
                    },
                );
                slot.insert(cache).clone()
            }
        };
        drop(caches);
        EvalContext {
            predictor,
            cache,
            target_ms,
        }
    }

    /// Spills caches that accumulated at least [`SPILL_EVERY`] new
    /// entries since their last spill. Returns new entries persisted.
    pub fn spill_tick(&self) -> usize {
        self.spill(false)
    }

    /// Spills every cache with any unpersisted entries (the drain path).
    pub fn spill_all(&self) -> usize {
        self.spill(true)
    }

    fn spill(&self, force: bool) -> usize {
        let Some(dir) = &self.spill_dir else { return 0 };
        let snapshot: Vec<((u64, u64), SharedEvalCache)> = lock(&self.caches)
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let mut written = 0usize;
        for (key, cache) in snapshot {
            // A missing meta entry means a reload retired this cache
            // between the snapshot and now — its entries belong to a dead
            // generation, so skip rather than pollute the new one's file.
            let Some(meta) = lock(&self.spill_meta).get(&key).copied() else {
                continue;
            };
            let len = cache.len();
            let grown = len.saturating_sub(meta.last_spilled);
            if grown == 0 || (!force && grown < SPILL_EVERY) {
                continue;
            }
            let entries = cache.export_entries();
            let path = spill_path(dir, &self.name, key.1, meta.generation);
            match write_spill(&path, &self.name, key.1, meta.generation, &entries) {
                Ok(()) => {
                    written += grown;
                    if let Some(m) = lock(&self.spill_meta).get_mut(&key) {
                        m.last_spilled = m.last_spilled.max(entries.len());
                    }
                }
                Err(e) => eprintln!(
                    "hsconas-serve: spill of {} entries to {} failed: {e}",
                    entries.len(),
                    path.display()
                ),
            }
        }
        self.spill_written
            .fetch_add(written as u64, Ordering::Relaxed);
        written
    }

    /// Eq. 2 prediction for one architecture (no queueing — reads only).
    ///
    /// # Errors
    ///
    /// Returns the underlying space error text if `arch` does not fit the
    /// device's space.
    pub fn predict_ms(&self, arch: &Arch) -> Result<(f64, f64), String> {
        let predictor = Arc::clone(&lock(&self.predictor));
        let ms = predictor.predict_ms(arch).map_err(|e| e.to_string())?;
        Ok((ms, predictor.bias_us()))
    }

    /// Raw (accuracy, latency_ms) for one architecture via the live oracle
    /// and predictor — exactly the numbers the [`Self::evaluator`] closure
    /// computes, so bench-table rows built from this are bit-identical to
    /// live evaluations.
    ///
    /// # Errors
    ///
    /// Returns the oracle or predictor error text.
    pub fn measure(&self, arch: &Arch) -> Result<(f64, f64), String> {
        let accuracy = self.oracle.accuracy(arch).map_err(|e| e.to_string())?;
        let predictor = Arc::clone(&lock(&self.predictor));
        let latency_ms = predictor.predict_ms(arch).map_err(|e| e.to_string())?;
        Ok((accuracy, latency_ms))
    }

    /// Decodes and validates a wire-encoded architecture against this
    /// device's space.
    ///
    /// # Errors
    ///
    /// Returns a client-facing message when the genome is malformed or
    /// outside the space.
    pub fn decode_arch(&self, encoded: &[usize]) -> Result<Arch, String> {
        let arch = Arch::decode(encoded).map_err(|e| e.to_string())?;
        if arch.genes().len() != self.space.num_layers() {
            return Err(format!(
                "arch has {} layers; this space has {}",
                arch.genes().len(),
                self.space.num_layers()
            ));
        }
        if !self.space.contains(&arch) {
            return Err("arch uses an op/scale outside the served search space".into());
        }
        Ok(arch)
    }

    /// LUT entry count and bias of the live predictor, for `status`.
    pub fn predictor_stats(&self) -> (usize, f64) {
        let predictor = lock(&self.predictor);
        (predictor.lut().len(), predictor.bias_us())
    }

    /// Total memoized evaluations across the live caches, for `status`.
    pub fn cached_evaluations(&self) -> usize {
        lock(&self.caches).values().map(SharedEvalCache::len).sum()
    }

    /// Builds the Eq. 1 evaluation closure for `ctx`. The closure is pure
    /// and `Sync`, so [`hsconas_evo::ParallelObjective`] may fan it out.
    pub fn evaluator(
        self: &Arc<Self>,
        ctx: &EvalContext,
    ) -> impl Fn(&Arch) -> Result<Evaluation, EvoError> + Sync + 'static {
        let device = Arc::clone(self);
        let predictor = Arc::clone(&ctx.predictor);
        let target_ms = ctx.target_ms;
        move |arch: &Arch| {
            let accuracy = device
                .oracle
                .accuracy(arch)
                .map_err(|e| EvoError::Objective {
                    detail: e.to_string(),
                })?;
            let latency_ms = predictor.predict_ms(arch).map_err(EvoError::Space)?;
            Ok(Evaluation {
                score: tradeoff_score(accuracy, latency_ms, target_ms, BETA),
                accuracy,
                latency_ms,
            })
        }
    }

    /// Re-reads the snapshot file if its mtime changed; swaps the
    /// predictor on success, keeps the old one (and counts the rejection)
    /// on any failure.
    fn maybe_reload(&self) {
        let Some(path) = &self.snapshot_path else {
            return;
        };
        let Ok(meta) = std::fs::metadata(path) else {
            return; // File gone — keep serving the in-memory predictor.
        };
        let mtime = meta.modified().ok();
        {
            let mut last = lock(&self.snapshot_mtime);
            if *last == mtime {
                return;
            }
            // Record before validating so a bad file is reported once, not
            // on every poll tick.
            *last = mtime;
        }
        match load_snapshot(path, &self.name, &self.space) {
            Ok(predictor) => {
                let generation = predictor_generation(&predictor);
                *lock(&self.predictor) = Arc::new(predictor);
                self.lut_generation.store(generation, Ordering::Release);
                self.version.fetch_add(1, Ordering::AcqRel);
                // Old-version caches would serve latencies from the
                // replaced LUT; drop them all (and their spill meta, so a
                // racing spill cannot write old entries under the new
                // generation's filename).
                lock(&self.caches).clear();
                lock(&self.spill_meta).clear();
                self.reloads_ok.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "hsconas-serve: reloaded predictor snapshot for {} from {}",
                    self.name,
                    path.display()
                );
            }
            Err(detail) => {
                self.reloads_rejected.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "hsconas-serve: REFUSED predictor snapshot for {} from {}: {detail}",
                    self.name,
                    path.display()
                );
            }
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn load_snapshot(
    path: &Path,
    device_name: &str,
    space: &SearchSpace,
) -> Result<LatencyPredictor, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let snapshot: PredictorSnapshot =
        serde_json::from_str(&text).map_err(|e| format!("parse failed: {e}"))?;
    let device = device_by_name(device_name).ok_or_else(|| "unknown device".to_string())?;
    LatencyPredictor::from_snapshot(device, space, snapshot).map_err(|e| e.to_string())
}

/// The generation stamp for a predictor: FNV-1a over a canonical
/// rendering of its export. The export's entry list comes out of a
/// `HashMap` in arbitrary order, so the entries are sorted first — the
/// stamp must be a pure function of the LUT *contents* for every process
/// that loads (or deterministically calibrates) the same predictor to
/// compute the same value.
fn predictor_generation(predictor: &LatencyPredictor) -> u64 {
    let snapshot = predictor.export();
    let mut lines: Vec<String> = snapshot
        .lut
        .entries
        .iter()
        .map(|(k, v)| {
            format!(
                "{} {:?} {} {} {:016x}",
                k.layer,
                k.op,
                k.c_in,
                k.c_out,
                v.to_bits()
            )
        })
        .collect();
    lines.sort_unstable();
    let mut canon = format!(
        "{} {:016x} {:016x} {}\n",
        snapshot.lut.device_name,
        snapshot.lut.stem_us.to_bits(),
        snapshot.bias_us.to_bits(),
        snapshot.calibration_samples
    );
    for line in &lines {
        canon.push_str(line);
        canon.push('\n');
    }
    crate::router::fnv1a_64(canon.as_bytes())
}

/// Spill-file path for one `(device, target, generation)` cache. All
/// three identities are in the name, so files from different targets or
/// LUT generations can never be confused.
fn spill_path(dir: &Path, device: &str, target_bits: u64, generation: u64) -> PathBuf {
    dir.join(format!(
        "{device}.t{target_bits:016x}.g{generation:016x}.evals"
    ))
}

fn spill_header(device: &str, target_bits: u64, generation: u64) -> String {
    format!("hsconas-evals v1 {device} t{target_bits:016x} g{generation:016x}")
}

/// Reads and validates one spill file; `None` for absent, foreign, or
/// corrupt files (the cache then simply starts cold — the tier is an
/// optimization, never a correctness dependency).
///
/// Format: one header line, then one `fp score acc lat` line per entry,
/// each field the 16-hex-digit bit pattern of its u64/f64. Bit patterns
/// rather than decimal floats because a decimal roundtrip that loses one
/// ulp would change served score bytes after a restart.
fn read_spill(
    path: &Path,
    device: &str,
    target_bits: u64,
    generation: u64,
) -> Option<Vec<(u64, Evaluation)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != spill_header(device, target_bits, generation) {
        return None;
    }
    let mut entries = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(' ').map(|f| u64::from_str_radix(f, 16).ok());
        let fingerprint = fields.next()??;
        let score = f64::from_bits(fields.next()??);
        let accuracy = f64::from_bits(fields.next()??);
        let latency_ms = f64::from_bits(fields.next()??);
        if fields.next().is_some() {
            return None;
        }
        entries.push((
            fingerprint,
            Evaluation {
                score,
                accuracy,
                latency_ms,
            },
        ));
    }
    Some(entries)
}

/// Read-merge-write of one spill file: the on-disk result is the union of
/// the existing file (when it validates) and `entries`, written through
/// the crash-safe atomic writer so sibling shards sharing the directory
/// see either the old or the new complete file, never a torn one. The
/// union is value-safe because entries are pure functions of their
/// fingerprint for this `(device, target, generation)`.
fn write_spill(
    path: &Path,
    device: &str,
    target_bits: u64,
    generation: u64,
    entries: &[(u64, Evaluation)],
) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create spill dir: {e}"))?;
    }
    let mut merged: std::collections::BTreeMap<u64, Evaluation> =
        read_spill(path, device, target_bits, generation)
            .unwrap_or_default()
            .into_iter()
            .collect();
    merged.extend(entries.iter().copied());
    let mut out = spill_header(device, target_bits, generation);
    out.push('\n');
    for (fingerprint, eval) in &merged {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{fingerprint:016x} {:016x} {:016x} {:016x}",
            eval.score.to_bits(),
            eval.accuracy.to_bits(),
            eval.latency_ms.to_bits()
        );
    }
    hsconas_ckpt::write_atomic_bytes(path, out.as_bytes()).map_err(|e| e.to_string())
}

/// The full warm state: options plus lazily-built per-device entries.
pub struct WarmState {
    options: ServeOptions,
    devices: Mutex<HashMap<String, Arc<DeviceState>>>,
    graphs: Mutex<HashMap<Vec<usize>, Arc<hsconas_graph::Artifact>>>,
}

/// Compiled-artifact cache bound: past this many distinct genomes an
/// arbitrary entry is evicted (compiling is cheap; the cache exists to
/// make the *repeated*-genome path fast).
const MAX_CACHED_GRAPHS: usize = 64;

impl WarmState {
    /// Creates an empty warm state.
    pub fn new(options: ServeOptions) -> WarmState {
        WarmState {
            options,
            devices: Mutex::new(HashMap::new()),
            graphs: Mutex::new(HashMap::new()),
        }
    }

    /// The compiled artifact for `encoded`, building it on first touch
    /// against the tiny skeleton with the default deterministic
    /// provenance (so identical genomes produce identical artifacts on
    /// every server). Returns the artifact and whether it was a cache hit.
    ///
    /// # Errors
    ///
    /// Returns a client-safe message if the genome does not decode or does
    /// not fit the skeleton.
    pub fn compiled_graph(
        &self,
        encoded: &[usize],
    ) -> Result<(Arc<hsconas_graph::Artifact>, bool), String> {
        let mut graphs = lock(&self.graphs);
        if let Some(art) = graphs.get(encoded) {
            return Ok((Arc::clone(art), true));
        }
        let arch = Arch::decode(encoded).map_err(|e| format!("bad arch: {e}"))?;
        let skeleton = hsconas_space::NetworkSkeleton::tiny(10);
        if arch.len() != skeleton.num_layers() {
            return Err(format!(
                "genome has {} layers but the infer skeleton searches {}",
                arch.len(),
                skeleton.num_layers()
            ));
        }
        let opts = hsconas_graph::CompileOptions::default();
        let (artifact, _stats) =
            hsconas_graph::compile(&skeleton, &arch, &opts).map_err(|e| e.to_string())?;
        if graphs.len() >= MAX_CACHED_GRAPHS {
            if let Some(key) = graphs.keys().next().cloned() {
                graphs.remove(&key);
            }
        }
        let artifact = Arc::new(artifact);
        graphs.insert(encoded.to_vec(), Arc::clone(&artifact));
        Ok((artifact, false))
    }

    /// Distinct genomes in the compiled-artifact cache (for `status`).
    pub fn graphs_cached(&self) -> usize {
        lock(&self.graphs).len()
    }

    /// The options this state was built with.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Returns the warm state for `name`, building it on first touch:
    /// load the snapshot from the state dir if one validates, otherwise
    /// calibrate (deterministically, from `calibration_seed`) and persist.
    ///
    /// Building holds the device-map lock — concurrent first touches of
    /// different devices serialize, which is acceptable because fast-budget
    /// calibration takes milliseconds and happens once per device.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownDevice`] for names outside the model set;
    /// [`ServeError::Internal`] if calibration itself fails.
    pub fn device(&self, name: &str) -> Result<Arc<DeviceState>, ServeError> {
        let spec = device_by_name(name).ok_or_else(|| ServeError::UnknownDevice(name.into()))?;
        let canonical = spec.name.clone();
        let mut devices = lock(&self.devices);
        if let Some(state) = devices.get(&canonical) {
            return Ok(Arc::clone(state));
        }
        let state = Arc::new(self.build_device(spec)?);
        devices.insert(canonical, Arc::clone(&state));
        Ok(state)
    }

    fn build_device(&self, spec: DeviceSpec) -> Result<DeviceState, ServeError> {
        let space = SearchSpace::hsconas_a();
        let oracle = SurrogateAccuracy::new(space.skeleton().clone());
        let snapshot_path = self
            .options
            .state_dir
            .as_ref()
            .map(|dir| dir.join(format!("{}.predictor.json", spec.name)));

        let mut loaded = None;
        if let Some(path) = &snapshot_path {
            if path.exists() {
                match load_snapshot(path, &spec.name, &space) {
                    Ok(predictor) => {
                        let mtime = std::fs::metadata(path).and_then(|m| m.modified()).ok();
                        loaded = Some((predictor, mtime));
                    }
                    Err(detail) => eprintln!(
                        "hsconas-serve: ignoring stale predictor snapshot {}: {detail}",
                        path.display()
                    ),
                }
            }
        }

        let (predictor, mtime) = match loaded {
            Some(pair) => pair,
            None => {
                let (m, repeats) = self.options.budget.calibration();
                let mut rng = StdRng::seed_from_u64(self.options.calibration_seed);
                let predictor =
                    LatencyPredictor::calibrate(spec.clone(), &space, m, repeats, &mut rng)
                        .map_err(|e| ServeError::Internal(format!("calibration failed: {e}")))?;
                let mtime = match &snapshot_path {
                    Some(path) => persist_snapshot(path, &predictor),
                    None => None,
                };
                (predictor, mtime)
            }
        };

        Ok(DeviceState {
            name: spec.name,
            space,
            oracle,
            lut_generation: AtomicU64::new(predictor_generation(&predictor)),
            predictor: Mutex::new(Arc::new(predictor)),
            version: AtomicU64::new(0),
            caches: Mutex::new(HashMap::new()),
            spill_meta: Mutex::new(HashMap::new()),
            spill_dir: self.options.state_dir.as_ref().map(|d| d.join("spill")),
            snapshot_path,
            snapshot_mtime: Mutex::new(mtime),
            reloads_ok: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
            spill_loaded: AtomicU64::new(0),
            spill_written: AtomicU64::new(0),
        })
    }

    /// All devices built so far, name-sorted (for deterministic `status`).
    pub fn loaded(&self) -> Vec<Arc<DeviceState>> {
        let mut all: Vec<_> = lock(&self.devices).values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// One hot-reload poll tick over every loaded device.
    pub fn poll_reload(&self) {
        for device in self.loaded() {
            device.maybe_reload();
        }
    }

    /// One spill tick over every loaded device (called between
    /// evaluation batches). Returns new entries persisted.
    pub fn spill_tick(&self) -> usize {
        self.loaded().iter().map(|d| d.spill_tick()).sum()
    }

    /// Spills everything unpersisted on every device (the drain path).
    pub fn spill_all(&self) -> usize {
        self.loaded().iter().map(|d| d.spill_all()).sum()
    }
}

fn persist_snapshot(path: &Path, predictor: &LatencyPredictor) -> Option<SystemTime> {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "hsconas-serve: cannot create state dir {}: {e}",
                dir.display()
            );
            return None;
        }
    }
    let json = match serde_json::to_string(&predictor.export()) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("hsconas-serve: cannot serialize predictor snapshot: {e}");
            return None;
        }
    };
    if let Err(e) = hsconas_ckpt::write_atomic_bytes(path, json.as_bytes()) {
        eprintln!(
            "hsconas-serve: cannot persist predictor snapshot {}: {e}",
            path.display()
        );
        return None;
    }
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options_with_dir(dir: &Path) -> ServeOptions {
        ServeOptions {
            state_dir: Some(dir.to_path_buf()),
            ..ServeOptions::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hsconas-serve-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn aliases_resolve_and_unknown_is_typed() {
        assert_eq!(device_by_name("gpu").unwrap().name, "gpu-gv100");
        assert_eq!(device_by_name("edge-xavier").unwrap().name, "edge-xavier");
        let state = WarmState::new(ServeOptions::default());
        match state.device("tpu") {
            Err(ServeError::UnknownDevice(name)) => assert_eq!(name, "tpu"),
            Err(other) => panic!("expected UnknownDevice, got {other:?}"),
            Ok(_) => panic!("expected UnknownDevice, got a device"),
        }
    }

    #[test]
    fn calibration_is_persisted_and_reused() {
        let dir = temp_dir("persist");
        let state = WarmState::new(options_with_dir(&dir));
        let device = state.device("edge").unwrap();
        let (entries, bias) = device.predictor_stats();
        assert!(entries > 0);
        let path = dir.join("edge-xavier.predictor.json");
        assert!(path.exists(), "snapshot should be persisted");

        // A second warm state must load the file, not recalibrate — same
        // bias bits proves it is the same snapshot.
        let state2 = WarmState::new(options_with_dir(&dir));
        let device2 = state2.device("edge-xavier").unwrap();
        let (entries2, bias2) = device2.predictor_stats();
        assert_eq!(entries, entries2);
        assert_eq!(bias.to_bits(), bias2.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_contexts_share_caches_per_target_only() {
        let state = WarmState::new(ServeOptions::default());
        let device = state.device("edge").unwrap();
        let a = device.eval_context(24.0);
        let b = device.eval_context(24.0);
        let c = device.eval_context(30.0);
        let arch = device.space.sample(&mut StdRng::seed_from_u64(7));
        let eval = device.evaluator(&a);
        let mut memo = hsconas_evo::MemoObjective::with_shared_cache(
            hsconas_evo::ParallelObjective::new(eval, 1),
            a.cache.clone(),
        );
        use hsconas_evo::Objective;
        memo.evaluate(&arch).unwrap();
        assert_eq!(a.cache.len(), 1);
        assert_eq!(b.cache.len(), 1, "same target shares the cache");
        assert_eq!(c.cache.len(), 0, "different target must not");
    }

    #[test]
    fn hot_reload_swaps_predictor_and_refuses_foreign_snapshot() {
        let dir = temp_dir("reload");
        let state = WarmState::new(options_with_dir(&dir));
        let device = state.device("edge").unwrap();
        let path = dir.join("edge-xavier.predictor.json");
        let (_, bias_before) = device.predictor_stats();

        // Rewrite the snapshot with a shifted bias: must be accepted.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut snapshot: PredictorSnapshot = serde_json::from_str(&text).unwrap();
        snapshot.bias_us += 500.0;
        bump_mtime(&path, &serde_json::to_string(&snapshot).unwrap());
        state.poll_reload();
        let (_, bias_after) = device.predictor_stats();
        assert_eq!(device.version(), 1);
        assert_eq!(device.reloads_ok.load(Ordering::Relaxed), 1);
        assert!((bias_after - bias_before - 500.0).abs() < 1e-9);

        // Corrupt the file: must be refused, predictor unchanged.
        bump_mtime(&path, "{ not json");
        state.poll_reload();
        assert_eq!(device.version(), 1, "rejected reload must not bump version");
        assert_eq!(device.reloads_rejected.load(Ordering::Relaxed), 1);
        let (_, bias_kept) = device.predictor_stats();
        assert_eq!(bias_kept.to_bits(), bias_after.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lut_generation_is_stable_across_processes_and_content_sensitive() {
        let dir = temp_dir("generation");
        let state = WarmState::new(options_with_dir(&dir));
        let g1 = state.device("edge").unwrap().lut_generation();
        assert_ne!(g1, 0);

        // A second warm state over the same snapshot — the "other shard"
        // case — must compute the identical stamp.
        let state2 = WarmState::new(options_with_dir(&dir));
        assert_eq!(state2.device("edge").unwrap().lut_generation(), g1);

        // A different predictor (shifted bias) must stamp differently,
        // and a reload must adopt the new stamp.
        let path = dir.join("edge-xavier.predictor.json");
        let mut snapshot: PredictorSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        snapshot.bias_us += 125.0;
        bump_mtime(&path, &serde_json::to_string(&snapshot).unwrap());
        state.poll_reload();
        let g2 = state.device("edge").unwrap().lut_generation();
        assert_ne!(g2, g1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Evaluates one arch through the memo path, filling `ctx.cache`.
    fn evaluate_one(device: &Arc<DeviceState>, ctx: &EvalContext, seed: u64) -> Evaluation {
        use hsconas_evo::Objective;
        let arch = device.space.sample(&mut StdRng::seed_from_u64(seed));
        let mut memo = hsconas_evo::MemoObjective::with_shared_cache(
            hsconas_evo::ParallelObjective::new(device.evaluator(ctx), 1),
            ctx.cache.clone(),
        );
        memo.evaluate(&arch).unwrap()
    }

    #[test]
    fn spill_tier_roundtrips_bit_exactly() {
        let dir = temp_dir("spill");
        let evals: Vec<Evaluation> = {
            let state = WarmState::new(options_with_dir(&dir));
            let device = state.device("edge").unwrap();
            let ctx = device.eval_context(24.0);
            let evals = (0..5).map(|s| evaluate_one(&device, &ctx, s)).collect();
            assert_eq!(ctx.cache.len(), 5);
            // Below SPILL_EVERY growth: a tick must not spill, the drain
            // path must.
            assert_eq!(device.spill_tick(), 0);
            assert_eq!(device.spill_all(), 5);
            assert_eq!(device.spill_written.load(Ordering::Relaxed), 5);
            assert_eq!(device.spill_all(), 0, "nothing new since last spill");
            evals
        };

        // A fresh process preloads the spilled entries and returns the
        // exact same bits without recomputation.
        let state = WarmState::new(options_with_dir(&dir));
        let device = state.device("edge").unwrap();
        let ctx = device.eval_context(24.0);
        assert_eq!(ctx.cache.len(), 5, "fresh cache must preload the spill");
        assert_eq!(device.spill_loaded.load(Ordering::Relaxed), 5);
        for (seed, before) in evals.iter().enumerate() {
            let after = evaluate_one(&device, &ctx, seed as u64);
            assert_eq!(before.score.to_bits(), after.score.to_bits());
            assert_eq!(before.latency_ms.to_bits(), after.latency_ms.to_bits());
        }
        assert_eq!(ctx.cache.len(), 5, "all five were memo hits");

        // A different target must not see the file.
        let other = device.eval_context(30.0);
        assert_eq!(other.cache.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_refuses_foreign_or_corrupt_files() {
        let dir = temp_dir("spill-foreign");
        let spill = dir.join("spill");
        std::fs::create_dir_all(&spill).unwrap();
        let state = WarmState::new(options_with_dir(&dir));
        let device = state.device("edge").unwrap();
        let generation = device.lut_generation();
        let target_bits = 24.0f64.to_bits();

        // A file named for this cache but carrying a mismatched header
        // generation (e.g. clobbered by an older shard) must be ignored.
        let path = spill_path(&spill, "edge-xavier", target_bits, generation);
        std::fs::write(
            &path,
            format!(
                "{}\n{:016x} {:016x} {:016x} {:016x}\n",
                spill_header("edge-xavier", target_bits, generation ^ 1),
                7u64,
                1.0f64.to_bits(),
                0.9f64.to_bits(),
                20.0f64.to_bits()
            ),
        )
        .unwrap();
        assert_eq!(device.eval_context(24.0).cache.len(), 0);

        // Corrupt entry lines invalidate the whole file — half a cache
        // would be fine, but trusting a file that failed validation once
        // is how subtle corruption spreads.
        std::fs::write(
            &path,
            format!(
                "{}\nnot hex at all\n",
                spill_header("edge-xavier", target_bits, generation)
            ),
        )
        .unwrap();
        assert!(read_spill(&path, "edge-xavier", target_bits, generation).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Writes `contents` and nudges mtime forward so a poll sees a change
    /// even on filesystems with coarse timestamps.
    fn bump_mtime(path: &Path, contents: &str) {
        std::fs::write(path, contents).unwrap();
        // Coarse-mtime filesystems may not register back-to-back writes;
        // retry with small sleeps until the mtime actually moves.
        let before = std::fs::metadata(path).and_then(|m| m.modified()).ok();
        for _ in 0..50 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            std::fs::write(path, contents).unwrap();
            let now = std::fs::metadata(path).and_then(|m| m.modified()).ok();
            if now != before {
                return;
            }
        }
    }
}
