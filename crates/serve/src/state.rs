//! Warm per-device serving state.
//!
//! The expensive part of answering a request is everything that does *not*
//! depend on the request: the search space, the surrogate accuracy oracle,
//! and above all the calibrated latency predictor (Eq. 2 LUT + Eq. 3
//! bias). [`WarmState`] builds that once per device on first touch and
//! keeps it hot:
//!
//! * **Snapshot persistence** — with a `--state-dir`, a freshly calibrated
//!   predictor is exported to `<dir>/<device>.predictor.json` via the
//!   crash-safe [`hsconas_ckpt::write_atomic_bytes`], and later server
//!   starts load it back instead of recalibrating.
//! * **Hot reload** — [`WarmState::poll_reload`] watches each snapshot
//!   file's mtime; a changed file is re-read and validated through
//!   [`LatencyPredictor::from_snapshot`], which refuses any LUT whose key
//!   set is foreign to the search space. A rejected snapshot is loud (one
//!   stderr line + a counter) and the previous predictor stays in service.
//! * **Cross-request dedup** — evaluation memo caches
//!   ([`SharedEvalCache`]) are keyed by `(predictor version, target_ms
//!   bits)`: an `Evaluation` embeds the Eq. 1 score, which depends on both
//!   the LUT contents and the target, so sharing across either boundary
//!   would serve wrong bytes. A successful reload bumps the version and
//!   drops the old caches; in-flight work keeps its `Arc` to the old
//!   predictor and stays internally consistent.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_evo::{tradeoff_score, Evaluation, EvoError, SharedEvalCache};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::{LatencyPredictor, PredictorSnapshot};
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Eq. 1 trade-off coefficient used by the serving layer; matches
/// `TradeoffObjective::DEFAULT_BETA` so served scores equal pipeline scores.
pub const BETA: f64 = -20.0;

/// How much work a request is allowed to cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Small calibration (20 archs x 2 repeats) and a short EA
    /// (8 generations, population 20). Answers in milliseconds; the
    /// default, and what the protocol tests run.
    Fast,
    /// Paper-scale EA (20 generations, population 50) and a denser
    /// calibration (100 archs x 5 repeats).
    Full,
}

impl Budget {
    /// Parses the CLI/wire spelling.
    pub fn parse(s: &str) -> Option<Budget> {
        match s {
            "fast" => Some(Budget::Fast),
            "full" => Some(Budget::Full),
            _ => None,
        }
    }

    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Budget::Fast => "fast",
            Budget::Full => "full",
        }
    }

    /// `(calibration archs, repeats per arch)` for Eq. 3.
    pub fn calibration(self) -> (usize, usize) {
        match self {
            Budget::Fast => (20, 2),
            Budget::Full => (100, 5),
        }
    }

    /// EA hyper-parameters for `search` requests.
    pub fn evolution_config(self) -> hsconas_evo::EvolutionConfig {
        match self {
            Budget::Fast => hsconas_evo::EvolutionConfig {
                generations: 8,
                population: 20,
                parents: 8,
                ..Default::default()
            },
            Budget::Full => hsconas_evo::EvolutionConfig::default(),
        }
    }
}

/// Server configuration, filled by the `hsconas serve` CLI.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind host.
    pub host: String,
    /// Bind port; 0 picks an ephemeral port (printed on startup).
    pub port: u16,
    /// Directory for predictor snapshots; `None` disables persistence and
    /// hot reload.
    pub state_dir: Option<PathBuf>,
    /// Per-request work budget.
    pub budget: Budget,
    /// Evaluation queue bound; pushes beyond it get `429 overloaded`.
    pub queue_capacity: usize,
    /// Threads draining the evaluation queue.
    pub eval_workers: usize,
    /// `hsconas_par` pool width used inside one batch evaluation
    /// (0 = process default).
    pub pool_threads: usize,
    /// Most queued jobs merged into one micro-batch.
    pub batch_max: usize,
    /// Snapshot-file poll interval for hot reload; 0 disables the watcher.
    pub lut_watch_ms: u64,
    /// Devices to warm up (calibrate/load) before accepting connections.
    pub preload: Vec<String>,
    /// Seed for predictor calibration; fixed so restarts predict
    /// identically.
    pub calibration_seed: u64,
    /// Test hook: sleep this long per evaluation batch so the soak test
    /// can fill the queue deterministically. 0 in production.
    pub slow_eval_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            host: "127.0.0.1".into(),
            port: 0,
            state_dir: None,
            budget: Budget::Fast,
            queue_capacity: 64,
            eval_workers: 2,
            pool_threads: 0,
            batch_max: 16,
            lut_watch_ms: 0,
            preload: Vec::new(),
            calibration_seed: 2021,
            slow_eval_ms: 0,
        }
    }
}

/// Serving-layer failure, mapped to a protocol response code by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a device this build does not model.
    UnknownDevice(String),
    /// Anything else — surfaces as `500 internal`.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDevice(name) => write!(
                f,
                "unknown device '{name}' (known: gpu, cpu, edge, or their full names)"
            ),
            ServeError::Internal(detail) => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Resolves a device name or alias to its spec.
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name {
        "gpu" | "gpu-gv100" => Some(DeviceSpec::gpu_gv100()),
        "cpu" | "cpu-xeon-6136" => Some(DeviceSpec::cpu_xeon_6136()),
        "edge" | "edge-xavier" => Some(DeviceSpec::edge_xavier()),
        _ => None,
    }
}

/// Everything needed to evaluate one batch consistently: the predictor
/// generation the batch saw at admission to execution, and the memo cache
/// shared by every request against that `(version, target)` pair.
pub struct EvalContext {
    /// The predictor to read latencies from.
    pub predictor: Arc<LatencyPredictor>,
    /// The cross-request memo cache for this `(predictor, target)`.
    pub cache: SharedEvalCache,
    /// Latency target in milliseconds.
    pub target_ms: f64,
}

/// Warm state for one device.
pub struct DeviceState {
    /// Canonical device name (e.g. `edge-xavier`).
    pub name: String,
    /// The search space served for this device.
    pub space: SearchSpace,
    oracle: SurrogateAccuracy,
    predictor: Mutex<Arc<LatencyPredictor>>,
    /// Bumped on every successful hot reload.
    version: AtomicU64,
    /// Memo caches keyed by `(predictor version, target_ms.to_bits())`.
    caches: Mutex<HashMap<(u64, u64), SharedEvalCache>>,
    snapshot_path: Option<PathBuf>,
    snapshot_mtime: Mutex<Option<SystemTime>>,
    /// Successful hot reloads.
    pub reloads_ok: AtomicU64,
    /// Snapshot files refused by validation (stale/foreign/corrupt).
    pub reloads_rejected: AtomicU64,
}

impl DeviceState {
    /// The current predictor generation (0 until the first reload).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// A consistent `(predictor, cache)` pair for evaluating against
    /// `target_ms`. Concurrent callers with the same target and predictor
    /// generation share one cache — that is the cross-request dedup.
    pub fn eval_context(&self, target_ms: f64) -> EvalContext {
        let (predictor, version) = {
            let guard = lock(&self.predictor);
            (Arc::clone(&guard), self.version())
        };
        let cache = lock(&self.caches)
            .entry((version, target_ms.to_bits()))
            .or_default()
            .clone();
        EvalContext {
            predictor,
            cache,
            target_ms,
        }
    }

    /// Eq. 2 prediction for one architecture (no queueing — reads only).
    ///
    /// # Errors
    ///
    /// Returns the underlying space error text if `arch` does not fit the
    /// device's space.
    pub fn predict_ms(&self, arch: &Arch) -> Result<(f64, f64), String> {
        let predictor = Arc::clone(&lock(&self.predictor));
        let ms = predictor.predict_ms(arch).map_err(|e| e.to_string())?;
        Ok((ms, predictor.bias_us()))
    }

    /// Decodes and validates a wire-encoded architecture against this
    /// device's space.
    ///
    /// # Errors
    ///
    /// Returns a client-facing message when the genome is malformed or
    /// outside the space.
    pub fn decode_arch(&self, encoded: &[usize]) -> Result<Arch, String> {
        let arch = Arch::decode(encoded).map_err(|e| e.to_string())?;
        if arch.genes().len() != self.space.num_layers() {
            return Err(format!(
                "arch has {} layers; this space has {}",
                arch.genes().len(),
                self.space.num_layers()
            ));
        }
        if !self.space.contains(&arch) {
            return Err("arch uses an op/scale outside the served search space".into());
        }
        Ok(arch)
    }

    /// LUT entry count and bias of the live predictor, for `status`.
    pub fn predictor_stats(&self) -> (usize, f64) {
        let predictor = lock(&self.predictor);
        (predictor.lut().len(), predictor.bias_us())
    }

    /// Total memoized evaluations across the live caches, for `status`.
    pub fn cached_evaluations(&self) -> usize {
        lock(&self.caches).values().map(SharedEvalCache::len).sum()
    }

    /// Builds the Eq. 1 evaluation closure for `ctx`. The closure is pure
    /// and `Sync`, so [`hsconas_evo::ParallelObjective`] may fan it out.
    pub fn evaluator(
        self: &Arc<Self>,
        ctx: &EvalContext,
    ) -> impl Fn(&Arch) -> Result<Evaluation, EvoError> + Sync + 'static {
        let device = Arc::clone(self);
        let predictor = Arc::clone(&ctx.predictor);
        let target_ms = ctx.target_ms;
        move |arch: &Arch| {
            let accuracy = device
                .oracle
                .accuracy(arch)
                .map_err(|e| EvoError::Objective {
                    detail: e.to_string(),
                })?;
            let latency_ms = predictor.predict_ms(arch).map_err(EvoError::Space)?;
            Ok(Evaluation {
                score: tradeoff_score(accuracy, latency_ms, target_ms, BETA),
                accuracy,
                latency_ms,
            })
        }
    }

    /// Re-reads the snapshot file if its mtime changed; swaps the
    /// predictor on success, keeps the old one (and counts the rejection)
    /// on any failure.
    fn maybe_reload(&self) {
        let Some(path) = &self.snapshot_path else {
            return;
        };
        let Ok(meta) = std::fs::metadata(path) else {
            return; // File gone — keep serving the in-memory predictor.
        };
        let mtime = meta.modified().ok();
        {
            let mut last = lock(&self.snapshot_mtime);
            if *last == mtime {
                return;
            }
            // Record before validating so a bad file is reported once, not
            // on every poll tick.
            *last = mtime;
        }
        match load_snapshot(path, &self.name, &self.space) {
            Ok(predictor) => {
                *lock(&self.predictor) = Arc::new(predictor);
                self.version.fetch_add(1, Ordering::AcqRel);
                // Old-version caches would serve latencies from the
                // replaced LUT; drop them all.
                lock(&self.caches).clear();
                self.reloads_ok.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "hsconas-serve: reloaded predictor snapshot for {} from {}",
                    self.name,
                    path.display()
                );
            }
            Err(detail) => {
                self.reloads_rejected.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "hsconas-serve: REFUSED predictor snapshot for {} from {}: {detail}",
                    self.name,
                    path.display()
                );
            }
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn load_snapshot(
    path: &Path,
    device_name: &str,
    space: &SearchSpace,
) -> Result<LatencyPredictor, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let snapshot: PredictorSnapshot =
        serde_json::from_str(&text).map_err(|e| format!("parse failed: {e}"))?;
    let device = device_by_name(device_name).ok_or_else(|| "unknown device".to_string())?;
    LatencyPredictor::from_snapshot(device, space, snapshot).map_err(|e| e.to_string())
}

/// The full warm state: options plus lazily-built per-device entries.
pub struct WarmState {
    options: ServeOptions,
    devices: Mutex<HashMap<String, Arc<DeviceState>>>,
    graphs: Mutex<HashMap<Vec<usize>, Arc<hsconas_graph::Artifact>>>,
}

/// Compiled-artifact cache bound: past this many distinct genomes an
/// arbitrary entry is evicted (compiling is cheap; the cache exists to
/// make the *repeated*-genome path fast).
const MAX_CACHED_GRAPHS: usize = 64;

impl WarmState {
    /// Creates an empty warm state.
    pub fn new(options: ServeOptions) -> WarmState {
        WarmState {
            options,
            devices: Mutex::new(HashMap::new()),
            graphs: Mutex::new(HashMap::new()),
        }
    }

    /// The compiled artifact for `encoded`, building it on first touch
    /// against the tiny skeleton with the default deterministic
    /// provenance (so identical genomes produce identical artifacts on
    /// every server). Returns the artifact and whether it was a cache hit.
    ///
    /// # Errors
    ///
    /// Returns a client-safe message if the genome does not decode or does
    /// not fit the skeleton.
    pub fn compiled_graph(
        &self,
        encoded: &[usize],
    ) -> Result<(Arc<hsconas_graph::Artifact>, bool), String> {
        let mut graphs = lock(&self.graphs);
        if let Some(art) = graphs.get(encoded) {
            return Ok((Arc::clone(art), true));
        }
        let arch = Arch::decode(encoded).map_err(|e| format!("bad arch: {e}"))?;
        let skeleton = hsconas_space::NetworkSkeleton::tiny(10);
        if arch.len() != skeleton.num_layers() {
            return Err(format!(
                "genome has {} layers but the infer skeleton searches {}",
                arch.len(),
                skeleton.num_layers()
            ));
        }
        let opts = hsconas_graph::CompileOptions::default();
        let (artifact, _stats) =
            hsconas_graph::compile(&skeleton, &arch, &opts).map_err(|e| e.to_string())?;
        if graphs.len() >= MAX_CACHED_GRAPHS {
            if let Some(key) = graphs.keys().next().cloned() {
                graphs.remove(&key);
            }
        }
        let artifact = Arc::new(artifact);
        graphs.insert(encoded.to_vec(), Arc::clone(&artifact));
        Ok((artifact, false))
    }

    /// Distinct genomes in the compiled-artifact cache (for `status`).
    pub fn graphs_cached(&self) -> usize {
        lock(&self.graphs).len()
    }

    /// The options this state was built with.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Returns the warm state for `name`, building it on first touch:
    /// load the snapshot from the state dir if one validates, otherwise
    /// calibrate (deterministically, from `calibration_seed`) and persist.
    ///
    /// Building holds the device-map lock — concurrent first touches of
    /// different devices serialize, which is acceptable because fast-budget
    /// calibration takes milliseconds and happens once per device.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownDevice`] for names outside the model set;
    /// [`ServeError::Internal`] if calibration itself fails.
    pub fn device(&self, name: &str) -> Result<Arc<DeviceState>, ServeError> {
        let spec = device_by_name(name).ok_or_else(|| ServeError::UnknownDevice(name.into()))?;
        let canonical = spec.name.clone();
        let mut devices = lock(&self.devices);
        if let Some(state) = devices.get(&canonical) {
            return Ok(Arc::clone(state));
        }
        let state = Arc::new(self.build_device(spec)?);
        devices.insert(canonical, Arc::clone(&state));
        Ok(state)
    }

    fn build_device(&self, spec: DeviceSpec) -> Result<DeviceState, ServeError> {
        let space = SearchSpace::hsconas_a();
        let oracle = SurrogateAccuracy::new(space.skeleton().clone());
        let snapshot_path = self
            .options
            .state_dir
            .as_ref()
            .map(|dir| dir.join(format!("{}.predictor.json", spec.name)));

        let mut loaded = None;
        if let Some(path) = &snapshot_path {
            if path.exists() {
                match load_snapshot(path, &spec.name, &space) {
                    Ok(predictor) => {
                        let mtime = std::fs::metadata(path).and_then(|m| m.modified()).ok();
                        loaded = Some((predictor, mtime));
                    }
                    Err(detail) => eprintln!(
                        "hsconas-serve: ignoring stale predictor snapshot {}: {detail}",
                        path.display()
                    ),
                }
            }
        }

        let (predictor, mtime) = match loaded {
            Some(pair) => pair,
            None => {
                let (m, repeats) = self.options.budget.calibration();
                let mut rng = StdRng::seed_from_u64(self.options.calibration_seed);
                let predictor =
                    LatencyPredictor::calibrate(spec.clone(), &space, m, repeats, &mut rng)
                        .map_err(|e| ServeError::Internal(format!("calibration failed: {e}")))?;
                let mtime = match &snapshot_path {
                    Some(path) => persist_snapshot(path, &predictor),
                    None => None,
                };
                (predictor, mtime)
            }
        };

        Ok(DeviceState {
            name: spec.name,
            space,
            oracle,
            predictor: Mutex::new(Arc::new(predictor)),
            version: AtomicU64::new(0),
            caches: Mutex::new(HashMap::new()),
            snapshot_path,
            snapshot_mtime: Mutex::new(mtime),
            reloads_ok: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
        })
    }

    /// All devices built so far, name-sorted (for deterministic `status`).
    pub fn loaded(&self) -> Vec<Arc<DeviceState>> {
        let mut all: Vec<_> = lock(&self.devices).values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// One hot-reload poll tick over every loaded device.
    pub fn poll_reload(&self) {
        for device in self.loaded() {
            device.maybe_reload();
        }
    }
}

fn persist_snapshot(path: &Path, predictor: &LatencyPredictor) -> Option<SystemTime> {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "hsconas-serve: cannot create state dir {}: {e}",
                dir.display()
            );
            return None;
        }
    }
    let json = match serde_json::to_string(&predictor.export()) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("hsconas-serve: cannot serialize predictor snapshot: {e}");
            return None;
        }
    };
    if let Err(e) = hsconas_ckpt::write_atomic_bytes(path, json.as_bytes()) {
        eprintln!(
            "hsconas-serve: cannot persist predictor snapshot {}: {e}",
            path.display()
        );
        return None;
    }
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options_with_dir(dir: &Path) -> ServeOptions {
        ServeOptions {
            state_dir: Some(dir.to_path_buf()),
            ..ServeOptions::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hsconas-serve-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn aliases_resolve_and_unknown_is_typed() {
        assert_eq!(device_by_name("gpu").unwrap().name, "gpu-gv100");
        assert_eq!(device_by_name("edge-xavier").unwrap().name, "edge-xavier");
        let state = WarmState::new(ServeOptions::default());
        match state.device("tpu") {
            Err(ServeError::UnknownDevice(name)) => assert_eq!(name, "tpu"),
            Err(other) => panic!("expected UnknownDevice, got {other:?}"),
            Ok(_) => panic!("expected UnknownDevice, got a device"),
        }
    }

    #[test]
    fn calibration_is_persisted_and_reused() {
        let dir = temp_dir("persist");
        let state = WarmState::new(options_with_dir(&dir));
        let device = state.device("edge").unwrap();
        let (entries, bias) = device.predictor_stats();
        assert!(entries > 0);
        let path = dir.join("edge-xavier.predictor.json");
        assert!(path.exists(), "snapshot should be persisted");

        // A second warm state must load the file, not recalibrate — same
        // bias bits proves it is the same snapshot.
        let state2 = WarmState::new(options_with_dir(&dir));
        let device2 = state2.device("edge-xavier").unwrap();
        let (entries2, bias2) = device2.predictor_stats();
        assert_eq!(entries, entries2);
        assert_eq!(bias.to_bits(), bias2.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_contexts_share_caches_per_target_only() {
        let state = WarmState::new(ServeOptions::default());
        let device = state.device("edge").unwrap();
        let a = device.eval_context(24.0);
        let b = device.eval_context(24.0);
        let c = device.eval_context(30.0);
        let arch = device.space.sample(&mut StdRng::seed_from_u64(7));
        let eval = device.evaluator(&a);
        let mut memo = hsconas_evo::MemoObjective::with_shared_cache(
            hsconas_evo::ParallelObjective::new(eval, 1),
            a.cache.clone(),
        );
        use hsconas_evo::Objective;
        memo.evaluate(&arch).unwrap();
        assert_eq!(a.cache.len(), 1);
        assert_eq!(b.cache.len(), 1, "same target shares the cache");
        assert_eq!(c.cache.len(), 0, "different target must not");
    }

    #[test]
    fn hot_reload_swaps_predictor_and_refuses_foreign_snapshot() {
        let dir = temp_dir("reload");
        let state = WarmState::new(options_with_dir(&dir));
        let device = state.device("edge").unwrap();
        let path = dir.join("edge-xavier.predictor.json");
        let (_, bias_before) = device.predictor_stats();

        // Rewrite the snapshot with a shifted bias: must be accepted.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut snapshot: PredictorSnapshot = serde_json::from_str(&text).unwrap();
        snapshot.bias_us += 500.0;
        bump_mtime(&path, &serde_json::to_string(&snapshot).unwrap());
        state.poll_reload();
        let (_, bias_after) = device.predictor_stats();
        assert_eq!(device.version(), 1);
        assert_eq!(device.reloads_ok.load(Ordering::Relaxed), 1);
        assert!((bias_after - bias_before - 500.0).abs() < 1e-9);

        // Corrupt the file: must be refused, predictor unchanged.
        bump_mtime(&path, "{ not json");
        state.poll_reload();
        assert_eq!(device.version(), 1, "rejected reload must not bump version");
        assert_eq!(device.reloads_rejected.load(Ordering::Relaxed), 1);
        let (_, bias_kept) = device.predictor_stats();
        assert_eq!(bias_kept.to_bits(), bias_after.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Writes `contents` and nudges mtime forward so a poll sees a change
    /// even on filesystems with coarse timestamps.
    fn bump_mtime(path: &Path, contents: &str) {
        std::fs::write(path, contents).unwrap();
        // Coarse-mtime filesystems may not register back-to-back writes;
        // retry with small sleeps until the mtime actually moves.
        let before = std::fs::metadata(path).and_then(|m| m.modified()).ok();
        for _ in 0..50 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            std::fs::write(path, contents).unwrap();
            let now = std::fs::metadata(path).and_then(|m| m.modified()).ok();
            if now != before {
                return;
            }
        }
    }
}
