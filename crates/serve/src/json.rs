//! A hand-rolled, panic-free JSON value codec for the wire protocol.
//!
//! The vendored `serde_json` stand-in only (de)serializes concrete derived
//! types; the serving protocol needs to parse *untrusted* bytes into a
//! generic value first (so malformed frames can be rejected with a precise
//! error instead of a panic), and to render responses with a deterministic
//! field order (so identical requests produce byte-identical reply lines —
//! the property the protocol tests assert). Hence this small recursive-
//! descent parser:
//!
//! * never panics — every index is bounds-checked, every `char` conversion
//!   guarded, recursion is depth-limited ([`MAX_DEPTH`]);
//! * reports the byte offset of the first error;
//! * preserves object key order on both parse and encode, so encoding is a
//!   pure function of insertion order.

use std::fmt;

/// Maximum nesting depth accepted by the parser. Frames are capped at
/// 64 KiB, so 32 levels is far beyond any legitimate request while keeping
/// the recursive parser safely away from stack exhaustion on junk like
/// `[[[[...`.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Objects keep their key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integer from float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer: `None` unless
    /// this is a finite number with zero fraction inside `[0, 2^53]`.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(n) if n.is_finite() && *n >= 0.0 && *n <= MAX_EXACT && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object value from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as compact JSON. Deterministic: a pure function of
    /// the value (object key order is preserved). Non-finite numbers render
    /// as `null` (JSON has no NaN/Inf).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => encode_number(*n, out),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_number(n: f64, out: &mut String) {
    use fmt::Write;
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= MAX_EXACT {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip Display: parses back to the same bits.
        let _ = write!(out, "{n}");
    }
}

fn encode_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the first offending byte.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `bytes`, requiring it to consume the whole
/// input (trailing whitespace allowed). Never panics on any input.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_literal(&mut self, lit: &'static [u8], msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'n') => self
                .eat_literal(b"null", "expected 'null'")
                .map(|()| Json::Null),
            Some(b't') => self
                .eat_literal(b"true", "expected 'true'")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .eat_literal(b"false", "expected 'false'")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected byte at start of value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let start = self.pos;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => {
                            self.pos -= 1;
                            return Err(self.err("invalid escape character"));
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar. The input came from a &[u8],
                    // so validate rather than trust.
                    let rest = &self.bytes[self.pos..];
                    let first = *rest
                        .first()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    let len = utf8_len(first);
                    let chunk = rest.get(..len).ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
            // Defensive: a string longer than the whole input is impossible,
            // but cap pathological growth from escapes anyway.
            if out.len() > self.bytes.len().saturating_sub(start) + 8 {
                return Err(self.err("string grew beyond input length"));
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: require a following \uDC00..\uDFFF.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&second) {
                    let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..=0xDFFF).contains(&first) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(self.err("number overflows f64"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse(b"null").unwrap(), Json::Null);
        assert_eq!(parse(b"true").unwrap(), Json::Bool(true));
        assert_eq!(parse(b" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse(b"42").unwrap(), Json::Num(42.0));
        assert_eq!(parse(b"-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(br#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_and_preserves_key_order() {
        let v = parse(br#"{"b":1,"a":[true,null,"x\n"]}"#).unwrap();
        let Json::Obj(pairs) = &v else { panic!() };
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn roundtrips_escapes_and_unicode() {
        let original = Json::Str("tab\there \"q\" \\ nl\n€ 😀".into());
        let encoded = original.encode();
        assert_eq!(parse(encoded.as_bytes()).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"😀\"".as_bytes()).unwrap(), Json::Str("😀".into()));
        assert!(parse(br#""\ud83d""#).is_err());
        assert!(parse(br#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_malformed_with_offsets() {
        for junk in [
            &b"{"[..],
            b"[1,",
            b"\"unterminated",
            b"01",
            b"1.",
            b"1e",
            b"nul",
            b"{\"a\" 1}",
            b"[1] x",
            b"\xff\xfe",
            b"\"bad \\q escape\"",
        ] {
            assert!(parse(junk).is_err(), "{junk:?} should fail");
        }
    }

    #[test]
    fn depth_limit_is_enforced_not_a_crash() {
        let deep = "[".repeat(10_000);
        assert!(parse(deep.as_bytes()).is_err());
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(ok.as_bytes()).is_ok());
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(24.0).encode(), "24");
        assert_eq!(Json::Num(-3.0).encode(), "-3");
        assert_eq!(Json::Num(1.5).encode(), "1.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn encode_is_deterministic() {
        let v = Json::obj(vec![
            ("z", Json::Num(1.0)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.encode(), v.encode());
        assert_eq!(v.encode(), r#"{"z":1,"a":[true,null]}"#);
    }
}
