//! The wire protocol: newline-delimited JSON frames over TCP.
//!
//! Grammar (one frame per line, `\n`-terminated, at most
//! [`MAX_FRAME_BYTES`] bytes including the newline):
//!
//! ```text
//! request  = { "v": 1, "id": string, "cmd": command, ...fields } "\n"
//! command  = "status" | "predict_latency" | "score" | "search" | "pareto"
//!          | "infer" | "shutdown"
//! response = { "v": 1, "id": string, "code": number,
//!              "result": value | "error": string } "\n"
//! ```
//!
//! Field requirements per command:
//!
//! * `predict_latency`: `device` (string), `arch` (array of ints).
//! * `score`: `device`, `target_ms` (finite, > 0), `arch`.
//! * `search`: `device`, `target_ms`, `seed` (unsigned int, default 0).
//! * `pareto`: `devices` (non-empty array of 1..=[`MAX_PARETO_DEVICES`]
//!   strings; duplicates and any ordering accepted — the server
//!   canonicalizes), `target_ms`, `seed` (unsigned int, default 0).
//! * `infer`: `arch`, `input_seed` (unsigned int, default 0), `batch`
//!   (1..=[`MAX_INFER_BATCH`], default 1). Compiled artifacts are cached
//!   per genome, so repeated `infer` requests skip compilation.
//! * `status` / `shutdown`: no extra fields.
//!
//! Response codes mirror HTTP where a familiar number exists:
//! [`CODE_OK`] 200, [`CODE_BAD_REQUEST`] 400, [`CODE_UNKNOWN_DEVICE`] 404,
//! [`CODE_FRAME_TOO_LARGE`] 413, [`CODE_OVERLOADED`] 429,
//! [`CODE_INTERNAL`] 500, [`CODE_SHUTTING_DOWN`] 503.

use crate::json::{self, Json};
use std::io::{self, BufRead};

/// Protocol version spoken by this crate. Requests may omit `v`; if
/// present it must equal this.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame (request or response line), newline included.
/// Oversized frames are consumed to the next newline and rejected with
/// [`CODE_FRAME_TOO_LARGE`], leaving the connection usable.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Largest `infer` batch one request may ask for — keeps the logits
/// response comfortably inside [`MAX_FRAME_BYTES`].
pub const MAX_INFER_BATCH: usize = 16;

/// Most devices one `pareto` request may co-optimize over — bounds both
/// the per-candidate evaluation cost and the frontier response size.
pub const MAX_PARETO_DEVICES: usize = 8;

/// Request accepted and answered.
pub const CODE_OK: u16 = 200;
/// Malformed JSON or invalid/missing fields.
pub const CODE_BAD_REQUEST: u16 = 400;
/// The `device` field names no known device.
pub const CODE_UNKNOWN_DEVICE: u16 = 404;
/// The frame exceeded [`MAX_FRAME_BYTES`].
pub const CODE_FRAME_TOO_LARGE: u16 = 413;
/// The evaluation queue is full — retry later (backpressure).
pub const CODE_OVERLOADED: u16 = 429;
/// The server failed internally while answering.
pub const CODE_INTERNAL: u16 = 500;
/// The server is draining and accepts no new evaluation work.
pub const CODE_SHUTTING_DOWN: u16 = 503;

/// One decoded request command with its payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Server metrics and per-device state.
    Status,
    /// Begin graceful drain: queued work is answered, then the process exits.
    Shutdown,
    /// Eq. 2 LUT latency for one architecture.
    PredictLatency {
        /// Target device name or alias.
        device: String,
        /// `Arch::encode()` form: `[op_0, scale_0, op_1, scale_1, ...]`.
        arch: Vec<usize>,
    },
    /// Eq. 1 score for one architecture under a latency target.
    Score {
        /// Target device name or alias.
        device: String,
        /// Latency target `T` in milliseconds.
        target_ms: f64,
        /// Encoded architecture.
        arch: Vec<usize>,
    },
    /// A full evolutionary search for the given device/target/seed.
    Search {
        /// Target device name or alias.
        device: String,
        /// Latency target `T` in milliseconds.
        target_ms: f64,
        /// RNG seed driving the EA — same seed, same result bytes.
        seed: u64,
    },
    /// A multi-device co-exploration: one NSGA-II search returning the
    /// non-dominated accuracy/latency frontier over a device fleet.
    Pareto {
        /// Device names or aliases (1..=[`MAX_PARETO_DEVICES`]); the
        /// server canonicalizes, dedups, and sorts before searching, so
        /// permutations of the same set answer identically.
        devices: Vec<String>,
        /// Latency target `T` in milliseconds (shared across devices).
        target_ms: f64,
        /// RNG seed driving the EA — same seed, same frontier bytes.
        seed: u64,
    },
    /// Compile (or fetch from the artifact cache) the genome's optimized
    /// graph and run it on a seeded synthetic batch.
    Infer {
        /// Encoded architecture.
        arch: Vec<usize>,
        /// Seed for the synthetic input batch.
        input_seed: u64,
        /// Images in the batch (1..=[`MAX_INFER_BATCH`]).
        batch: usize,
    },
}

impl Command {
    /// The wire name of the command.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Status => "status",
            Command::Shutdown => "shutdown",
            Command::PredictLatency { .. } => "predict_latency",
            Command::Score { .. } => "score",
            Command::Search { .. } => "search",
            Command::Pareto { .. } => "pareto",
            Command::Infer { .. } => "infer",
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// The command and its payload.
    pub command: Command,
}

/// Why a frame failed to decode into a [`Request`] (or [`Response`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// Response code to send back ([`CODE_BAD_REQUEST`] for all decode
    /// failures today).
    pub code: u16,
    /// Human-readable cause, safe to echo to the client.
    pub detail: String,
    /// The request id, when the frame parsed far enough to recover one —
    /// lets the error response still correlate.
    pub id: Option<String>,
}

impl ProtoError {
    fn bad(detail: impl Into<String>, id: Option<String>) -> ProtoError {
        ProtoError {
            code: CODE_BAD_REQUEST,
            detail: detail.into(),
            id,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code, self.detail)
    }
}

impl std::error::Error for ProtoError {}

/// Longest accepted `id` field — ids are echoed into every response and
/// telemetry record, so they are kept short.
const MAX_ID_LEN: usize = 256;

fn field_str(obj: &Json, key: &str, id: &Option<String>) -> Result<String, ProtoError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::bad(format!("missing or non-string field '{key}'"), id.clone()))
}

fn field_target_ms(obj: &Json, id: &Option<String>) -> Result<f64, ProtoError> {
    let t = obj
        .get("target_ms")
        .and_then(Json::as_f64)
        .ok_or_else(|| ProtoError::bad("missing or non-numeric field 'target_ms'", id.clone()))?;
    if !t.is_finite() || t <= 0.0 {
        return Err(ProtoError::bad(
            format!("target_ms must be finite and positive, got {t}"),
            id.clone(),
        ));
    }
    Ok(t)
}

fn field_arch(obj: &Json, id: &Option<String>) -> Result<Vec<usize>, ProtoError> {
    let items = obj
        .get("arch")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::bad("missing or non-array field 'arch'", id.clone()))?;
    if items.len() > 1024 {
        return Err(ProtoError::bad(
            format!("arch has {} entries; limit is 1024", items.len()),
            id.clone(),
        ));
    }
    items
        .iter()
        .map(|v| {
            v.as_u64().map(|n| n as usize).ok_or_else(|| {
                ProtoError::bad("arch entries must be unsigned integers", id.clone())
            })
        })
        .collect()
}

impl Request {
    /// Decodes one frame (without its trailing newline).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] naming the first problem; when the JSON
    /// itself parsed, the error carries the request `id` for correlation.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtoError> {
        let value = json::parse(bytes).map_err(|e| ProtoError::bad(e.to_string(), None))?;
        if !matches!(value, Json::Obj(_)) {
            return Err(ProtoError::bad("request frame must be a JSON object", None));
        }
        let id = match value.get("id") {
            None => String::new(),
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| ProtoError::bad("'id' must be a string", None))?,
        };
        if id.len() > MAX_ID_LEN {
            return Err(ProtoError::bad(
                format!("'id' longer than {MAX_ID_LEN} bytes"),
                None,
            ));
        }
        let id_for_err = Some(id.clone());
        if let Some(v) = value.get("v") {
            match v.as_u64() {
                Some(PROTOCOL_VERSION) => {}
                _ => {
                    return Err(ProtoError::bad(
                        format!(
                            "unsupported protocol version (this server speaks v{PROTOCOL_VERSION})"
                        ),
                        id_for_err,
                    ))
                }
            }
        }
        let cmd = field_str(&value, "cmd", &id_for_err)?;
        let command = match cmd.as_str() {
            "status" => Command::Status,
            "shutdown" => Command::Shutdown,
            "predict_latency" => Command::PredictLatency {
                device: field_str(&value, "device", &id_for_err)?,
                arch: field_arch(&value, &id_for_err)?,
            },
            "score" => Command::Score {
                device: field_str(&value, "device", &id_for_err)?,
                target_ms: field_target_ms(&value, &id_for_err)?,
                arch: field_arch(&value, &id_for_err)?,
            },
            "search" => Command::Search {
                device: field_str(&value, "device", &id_for_err)?,
                target_ms: field_target_ms(&value, &id_for_err)?,
                seed: match value.get("seed") {
                    None => 0,
                    Some(v) => v.as_u64().ok_or_else(|| {
                        ProtoError::bad("'seed' must be an unsigned integer", id_for_err.clone())
                    })?,
                },
            },
            "pareto" => {
                let items = value.get("devices").and_then(Json::as_arr).ok_or_else(|| {
                    ProtoError::bad("missing or non-array field 'devices'", id_for_err.clone())
                })?;
                if items.is_empty() || items.len() > MAX_PARETO_DEVICES {
                    return Err(ProtoError::bad(
                        format!(
                            "devices must list 1..={MAX_PARETO_DEVICES} names, got {}",
                            items.len()
                        ),
                        id_for_err,
                    ));
                }
                let devices = items
                    .iter()
                    .map(|v| {
                        v.as_str().map(str::to_string).ok_or_else(|| {
                            ProtoError::bad("devices entries must be strings", id_for_err.clone())
                        })
                    })
                    .collect::<Result<Vec<String>, ProtoError>>()?;
                Command::Pareto {
                    devices,
                    target_ms: field_target_ms(&value, &id_for_err)?,
                    seed: match value.get("seed") {
                        None => 0,
                        Some(v) => v.as_u64().ok_or_else(|| {
                            ProtoError::bad(
                                "'seed' must be an unsigned integer",
                                id_for_err.clone(),
                            )
                        })?,
                    },
                }
            }
            "infer" => {
                let batch = match value.get("batch") {
                    None => 1,
                    Some(v) => v.as_u64().map(|n| n as usize).ok_or_else(|| {
                        ProtoError::bad("'batch' must be an unsigned integer", id_for_err.clone())
                    })?,
                };
                if batch == 0 || batch > MAX_INFER_BATCH {
                    return Err(ProtoError::bad(
                        format!("batch must be in 1..={MAX_INFER_BATCH}, got {batch}"),
                        id_for_err,
                    ));
                }
                Command::Infer {
                    arch: field_arch(&value, &id_for_err)?,
                    input_seed: match value.get("input_seed") {
                        None => 0,
                        Some(v) => v.as_u64().ok_or_else(|| {
                            ProtoError::bad(
                                "'input_seed' must be an unsigned integer",
                                id_for_err.clone(),
                            )
                        })?,
                    },
                    batch,
                }
            }
            other => {
                return Err(ProtoError::bad(
                    format!("unknown cmd '{other}'"),
                    id_for_err,
                ))
            }
        };
        Ok(Request { id, command })
    }

    /// Renders the request as one frame line (no trailing newline).
    /// Deterministic field order, so identical requests are identical bytes.
    pub fn encode(&self) -> String {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("v", Json::Num(PROTOCOL_VERSION as f64)),
            ("id", Json::Str(self.id.clone())),
            ("cmd", Json::Str(self.command.name().to_string())),
        ];
        match &self.command {
            Command::Status | Command::Shutdown => {}
            Command::PredictLatency { device, arch } => {
                pairs.push(("device", Json::Str(device.clone())));
                pairs.push(("arch", encode_arch(arch)));
            }
            Command::Score {
                device,
                target_ms,
                arch,
            } => {
                pairs.push(("device", Json::Str(device.clone())));
                pairs.push(("target_ms", Json::Num(*target_ms)));
                pairs.push(("arch", encode_arch(arch)));
            }
            Command::Search {
                device,
                target_ms,
                seed,
            } => {
                pairs.push(("device", Json::Str(device.clone())));
                pairs.push(("target_ms", Json::Num(*target_ms)));
                pairs.push(("seed", Json::Num(*seed as f64)));
            }
            Command::Pareto {
                devices,
                target_ms,
                seed,
            } => {
                pairs.push((
                    "devices",
                    Json::Arr(devices.iter().map(|d| Json::Str(d.clone())).collect()),
                ));
                pairs.push(("target_ms", Json::Num(*target_ms)));
                pairs.push(("seed", Json::Num(*seed as f64)));
            }
            Command::Infer {
                arch,
                input_seed,
                batch,
            } => {
                pairs.push(("arch", encode_arch(arch)));
                pairs.push(("input_seed", Json::Num(*input_seed as f64)));
                pairs.push(("batch", Json::Num(*batch as f64)));
            }
        }
        Json::obj(pairs).encode()
    }
}

fn encode_arch(arch: &[usize]) -> Json {
    Json::Arr(arch.iter().map(|&g| Json::Num(g as f64)).collect())
}

/// A response frame: the echoed id, a status code, and either a result
/// value (code 200) or an error string (anything else).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this answers ("" when the request had none or was
    /// unparseable).
    pub id: String,
    /// One of the `CODE_*` constants.
    pub code: u16,
    /// Present iff `code == 200`.
    pub result: Option<Json>,
    /// Present iff `code != 200`.
    pub error: Option<String>,
}

impl Response {
    /// A 200 response carrying `result`.
    pub fn ok(id: impl Into<String>, result: Json) -> Response {
        Response {
            id: id.into(),
            code: CODE_OK,
            result: Some(result),
            error: None,
        }
    }

    /// A non-200 response carrying an error message.
    pub fn fail(id: impl Into<String>, code: u16, detail: impl Into<String>) -> Response {
        Response {
            id: id.into(),
            code,
            result: None,
            error: Some(detail.into()),
        }
    }

    /// Whether this is a 200.
    pub fn is_ok(&self) -> bool {
        self.code == CODE_OK
    }

    /// Renders the response as one frame line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("v", Json::Num(PROTOCOL_VERSION as f64)),
            ("id", Json::Str(self.id.clone())),
            ("code", Json::Num(f64::from(self.code))),
        ];
        if let Some(result) = &self.result {
            pairs.push(("result", result.clone()));
        }
        if let Some(error) = &self.error {
            pairs.push(("error", Json::Str(error.clone())));
        }
        Json::obj(pairs).encode()
    }

    /// Decodes one response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] if the frame is not a well-formed response.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtoError> {
        let value = json::parse(bytes).map_err(|e| ProtoError::bad(e.to_string(), None))?;
        if !matches!(value, Json::Obj(_)) {
            return Err(ProtoError::bad(
                "response frame must be a JSON object",
                None,
            ));
        }
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let code = value
            .get("code")
            .and_then(Json::as_u64)
            .and_then(|c| u16::try_from(c).ok())
            .ok_or_else(|| ProtoError::bad("missing or invalid 'code'", Some(id.clone())))?;
        let result = value.get("result").cloned();
        let error = value
            .get("error")
            .and_then(Json::as_str)
            .map(str::to_string);
        if (code == CODE_OK) != result.is_some() || (code != CODE_OK) != error.is_some() {
            return Err(ProtoError::bad(
                "response must carry 'result' iff code is 200, else 'error'",
                Some(id),
            ));
        }
        Ok(Response {
            id,
            code,
            result,
            error,
        })
    }
}

/// One framing-layer read outcome.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped).
    Line(Vec<u8>),
    /// The line exceeded `max` bytes; input was consumed up to (and
    /// including) the next newline or EOF, so the stream is resynchronized.
    Oversized,
    /// Clean end of stream with no pending bytes.
    Eof,
}

/// Reads one `\n`-delimited frame of at most `max` bytes.
///
/// A final line without a trailing newline is returned as a normal
/// [`Frame::Line`]. Oversized lines are drained to the next newline so a
/// hostile or buggy client cannot wedge the connection.
///
/// # Errors
///
/// Propagates transport errors from the underlying reader.
pub fn read_frame(reader: &mut impl BufRead, max: usize) -> io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF.
            return Ok(if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Line(line)
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let overflow = line.len() + nl + 1 > max;
                if !overflow {
                    line.extend_from_slice(&buf[..nl]);
                }
                reader.consume(nl + 1);
                if overflow {
                    return Ok(Frame::Oversized);
                }
                if let Some(&b'\r') = line.last() {
                    line.pop();
                }
                return Ok(Frame::Line(line));
            }
            None => {
                let take = buf.len();
                if line.len() + take > max {
                    // Too long already: drop what we have and drain to the
                    // next newline (or EOF) to resynchronize.
                    reader.consume(take);
                    drain_to_newline(reader)?;
                    return Ok(Frame::Oversized);
                }
                line.extend_from_slice(buf);
                reader.consume(take);
            }
        }
    }
}

fn drain_to_newline(reader: &mut impl BufRead) -> io::Result<()> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                reader.consume(nl + 1);
                return Ok(());
            }
            None => {
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_commands() {
        let requests = [
            Request {
                id: "a".into(),
                command: Command::Status,
            },
            Request {
                id: "b".into(),
                command: Command::Shutdown,
            },
            Request {
                id: "c".into(),
                command: Command::PredictLatency {
                    device: "edge".into(),
                    arch: vec![0, 9, 1, 3],
                },
            },
            Request {
                id: "d".into(),
                command: Command::Score {
                    device: "gpu-gv100".into(),
                    target_ms: 9.5,
                    arch: vec![4, 0],
                },
            },
            Request {
                id: "e".into(),
                command: Command::Search {
                    device: "cpu".into(),
                    target_ms: 24.0,
                    seed: u64::MAX >> 12,
                },
            },
            Request {
                id: "e2".into(),
                command: Command::Pareto {
                    devices: vec!["gpu".into(), "edge".into(), "cpu".into()],
                    target_ms: 24.0,
                    seed: 11,
                },
            },
            Request {
                id: "f".into(),
                command: Command::Infer {
                    arch: vec![3, 3, 0, 9],
                    input_seed: 7,
                    batch: 2,
                },
            },
        ];
        for req in requests {
            let line = req.encode();
            assert_eq!(Request::decode(line.as_bytes()).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let ok = Response::ok("x", Json::obj(vec![("latency_ms", Json::Num(8.25))]));
        assert_eq!(Response::decode(ok.encode().as_bytes()).unwrap(), ok);
        let fail = Response::fail("y", CODE_OVERLOADED, "queue full");
        assert_eq!(Response::decode(fail.encode().as_bytes()).unwrap(), fail);
    }

    #[test]
    fn decode_rejects_bad_fields_with_id() {
        let e = Request::decode(
            br#"{"id":"r1","cmd":"score","device":"edge","target_ms":-3,"arch":[]}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, CODE_BAD_REQUEST);
        assert_eq!(e.id.as_deref(), Some("r1"));
        assert!(e.detail.contains("target_ms"));

        let e = Request::decode(br#"{"id":"r2","cmd":"warp"}"#).unwrap_err();
        assert!(e.detail.contains("unknown cmd"));

        let e =
            Request::decode(br#"{"id":"r4","cmd":"infer","arch":[0,9],"batch":0}"#).unwrap_err();
        assert!(e.detail.contains("batch"));
        let e =
            Request::decode(br#"{"id":"r5","cmd":"infer","arch":[0,9],"batch":999}"#).unwrap_err();
        assert!(e.detail.contains("batch"));

        let e = Request::decode(br#"{"id":"p1","cmd":"pareto","target_ms":5}"#).unwrap_err();
        assert!(e.detail.contains("devices"));
        assert_eq!(e.id.as_deref(), Some("p1"));
        let e = Request::decode(br#"{"id":"p2","cmd":"pareto","devices":[],"target_ms":5}"#)
            .unwrap_err();
        assert!(e.detail.contains("devices"));
        let e = Request::decode(br#"{"id":"p3","cmd":"pareto","devices":[1,2],"target_ms":5}"#)
            .unwrap_err();
        assert!(e.detail.contains("strings"));
        let e = Request::decode(br#"{"id":"p4","cmd":"pareto","devices":["edge"],"target_ms":0}"#)
            .unwrap_err();
        assert!(e.detail.contains("target_ms"));
        let e = Request::decode(
            br#"{"id":"p5","cmd":"pareto","devices":["a","a","a","a","a","a","a","a","a"],"target_ms":5}"#,
        )
        .unwrap_err();
        assert!(e.detail.contains("1..=8"));

        let e = Request::decode(br#"{"v":2,"id":"r3","cmd":"status"}"#).unwrap_err();
        assert!(e.detail.contains("version"));

        let e = Request::decode(b"[1,2]").unwrap_err();
        assert!(e.detail.contains("object"));
        assert_eq!(e.id, None);
    }

    #[test]
    fn frames_split_on_newlines() {
        let mut input: &[u8] = b"one\r\ntwo\nthree";
        assert_eq!(
            read_frame(&mut input, 64).unwrap(),
            Frame::Line(b"one".to_vec())
        );
        assert_eq!(
            read_frame(&mut input, 64).unwrap(),
            Frame::Line(b"two".to_vec())
        );
        assert_eq!(
            read_frame(&mut input, 64).unwrap(),
            Frame::Line(b"three".to_vec())
        );
        assert_eq!(read_frame(&mut input, 64).unwrap(), Frame::Eof);
    }

    #[test]
    fn oversized_frame_resynchronizes() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut input: &[u8] = &data;
        assert_eq!(read_frame(&mut input, 16).unwrap(), Frame::Oversized);
        assert_eq!(
            read_frame(&mut input, 16).unwrap(),
            Frame::Line(b"ok".to_vec())
        );
        assert_eq!(read_frame(&mut input, 16).unwrap(), Frame::Eof);
    }

    #[test]
    fn oversized_final_line_without_newline_is_oversized() {
        let data = vec![b'y'; 50];
        let mut input: &[u8] = &data;
        assert_eq!(read_frame(&mut input, 16).unwrap(), Frame::Oversized);
        assert_eq!(read_frame(&mut input, 16).unwrap(), Frame::Eof);
    }
}
