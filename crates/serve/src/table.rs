//! The `.hsbt` precomputed bench-table artifact (ROADMAP item 3).
//!
//! An offline `hsconas bench-table` run subspace-samples architectures and
//! precomputes, for a device set, `arch → {latency per device, proxy
//! accuracy}` with exactly the predictors and oracle the server would use
//! live. The server then answers `predict_latency` and `score` for covered
//! architectures with an O(1) lookup instead of a queue round-trip —
//! bit-identically, because every stored float is the bit pattern the live
//! evaluator would produce, and a per-device LUT generation stamp refuses
//! lookups against a predictor the table was not built for.
//!
//! ## Envelope
//!
//! Reuses the `.hsart` atomic-write + FNV-envelope idiom:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "HSBT"
//! 4       4     format version (u32 LE), currently 1
//! 8       8     payload length (u64 LE)
//! 16      8     FNV-1a checksum of the payload (u64 LE)
//! 24      …     payload (hsconas-ckpt Encoder stream)
//! ```
//!
//! Loading is strict: wrong magic, a foreign version, a truncated or
//! padded payload, a checksum mismatch, or trailing payload bytes all
//! reject loudly — a bit-flipped table can never limp into serving.

use std::collections::HashMap;
use std::path::Path;

use hsconas_ckpt::{fnv1a, write_atomic_bytes, Decoder, Encoder};

/// Table envelope magic.
pub const MAGIC: [u8; 4] = *b"HSBT";
/// Current table format version.
pub const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: usize = 24;

/// One device column of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDevice {
    /// Canonical device name (e.g. `edge-xavier`).
    pub name: String,
    /// Content-hash generation stamp of the predictor the latencies were
    /// computed under (see [`crate::state::DeviceState::lut_generation`]).
    /// A serve-side lookup requires an exact match.
    pub lut_generation: u64,
    /// Eq. 3 bias of that predictor, stored so a table-hit
    /// `predict_latency` answer carries the same `bias_us` field bytes as
    /// a live one.
    pub bias_us: f64,
}

/// One precomputed row: proxy accuracy plus one latency per device.
#[derive(Debug, Clone, PartialEq)]
pub struct TableEntry {
    /// Surrogate-oracle accuracy (%), device-independent.
    pub accuracy: f64,
    /// Predicted latency per device, aligned with [`BenchTable::devices`].
    pub latencies_ms: Vec<f64>,
}

/// The in-memory table: provenance, device columns, and rows keyed by
/// genome fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTable {
    /// Seed the subspace sample was drawn with.
    pub seed: u64,
    /// Samples requested (rows may be fewer after fingerprint dedup).
    pub samples: u64,
    /// Device columns, name-sorted.
    pub devices: Vec<TableDevice>,
    entries: HashMap<u64, TableEntry>,
}

impl BenchTable {
    /// Creates an empty table over `devices` (sorted by name here, so the
    /// column order is canonical regardless of how the builder listed
    /// them).
    pub fn new(seed: u64, samples: u64, mut devices: Vec<TableDevice>) -> BenchTable {
        devices.sort_by(|a, b| a.name.cmp(&b.name));
        BenchTable {
            seed,
            samples,
            devices,
            entries: HashMap::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) one row.
    ///
    /// # Panics
    ///
    /// Panics if the entry's latency count does not match the device
    /// count — a builder bug, not an input error.
    pub fn insert(&mut self, fingerprint: u64, entry: TableEntry) {
        assert_eq!(
            entry.latencies_ms.len(),
            self.devices.len(),
            "one latency per device column"
        );
        self.entries.insert(fingerprint, entry);
    }

    /// The row for `fingerprint`, if covered.
    pub fn get(&self, fingerprint: u64) -> Option<&TableEntry> {
        self.entries.get(&fingerprint)
    }

    /// The column index for a canonical device name.
    pub fn device_index(&self, canonical_name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.name == canonical_name)
    }

    /// All covered fingerprints, sorted (deterministic iteration for the
    /// encoder and for exhaustive tests).
    pub fn fingerprints(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self.entries.keys().copied().collect();
        all.sort_unstable();
        all
    }

    /// Serializes the table into its envelope bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.seed);
        e.put_u64(self.samples);
        e.put_usize(self.devices.len());
        for device in &self.devices {
            e.put_str(&device.name);
            e.put_u64(device.lut_generation);
            e.put_f64(device.bias_us);
        }
        let fingerprints = self.fingerprints();
        e.put_usize(fingerprints.len());
        for fp in fingerprints {
            let entry = &self.entries[&fp];
            e.put_u64(fp);
            e.put_f64(entry.accuracy);
            for &lat in &entry.latencies_ms {
                e.put_f64(lat);
            }
        }
        let payload = e.finish();

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Parses a table, rejecting any malformed envelope or payload.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first defect found.
    pub fn from_bytes(bytes: &[u8]) -> Result<BenchTable, String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!(
                "file is {} bytes, smaller than the {HEADER_LEN}-byte header",
                bytes.len()
            ));
        }
        if bytes[0..4] != MAGIC {
            return Err(format!(
                "bad magic {:02x?}, expected {:02x?} (\"HSBT\")",
                &bytes[0..4],
                MAGIC
            ));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(format!(
                "format version {version} is not supported (this build reads version {FORMAT_VERSION})"
            ));
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != payload_len {
            return Err(format!(
                "payload is {} bytes but the header promises {payload_len} (truncated or padded file)",
                payload.len()
            ));
        }
        let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let actual = fnv1a(payload);
        if checksum != actual {
            return Err(format!(
                "payload checksum {actual:#018x} does not match header {checksum:#018x} (corrupted file)"
            ));
        }

        let mut d = Decoder::new(payload);
        let table = decode_payload(&mut d)?;
        d.expect_end().map_err(|e| e.to_string())?;
        Ok(table)
    }

    /// Writes the table crash-safely (temp file + fsync + rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error text.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("create table dir: {e}"))?;
            }
        }
        write_atomic_bytes(path, &self.to_bytes()).map_err(|e| e.to_string())
    }

    /// Reads and validates a table file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the defect — callers are expected to fail
    /// loudly, never to serve from a table that did not validate.
    pub fn load(path: &Path) -> Result<BenchTable, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        BenchTable::from_bytes(&bytes)
            .map_err(|detail| format!("invalid bench table {}: {detail}", path.display()))
    }
}

fn decode_payload(d: &mut Decoder<'_>) -> Result<BenchTable, String> {
    let err = |e: hsconas_ckpt::CkptError| e.to_string();
    let seed = d.get_u64().map_err(err)?;
    let samples = d.get_u64().map_err(err)?;
    let num_devices = d.get_usize().map_err(err)?;
    let mut devices = Vec::with_capacity(num_devices.min(64));
    for _ in 0..num_devices {
        devices.push(TableDevice {
            name: d.get_str().map_err(err)?,
            lut_generation: d.get_u64().map_err(err)?,
            bias_us: d.get_f64().map_err(err)?,
        });
    }
    for pair in devices.windows(2) {
        if pair[0].name >= pair[1].name {
            return Err(format!(
                "device columns not in canonical order ('{}' then '{}')",
                pair[0].name, pair[1].name
            ));
        }
    }
    let num_entries = d.get_usize().map_err(err)?;
    let mut entries = HashMap::with_capacity(num_entries.min(1 << 20));
    for _ in 0..num_entries {
        let fingerprint = d.get_u64().map_err(err)?;
        let accuracy = d.get_f64().map_err(err)?;
        let mut latencies_ms = Vec::with_capacity(devices.len());
        for _ in 0..devices.len() {
            latencies_ms.push(d.get_f64().map_err(err)?);
        }
        if entries
            .insert(
                fingerprint,
                TableEntry {
                    accuracy,
                    latencies_ms,
                },
            )
            .is_some()
        {
            return Err(format!("duplicate row for fingerprint {fingerprint:#018x}"));
        }
    }
    Ok(BenchTable {
        seed,
        samples,
        devices,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> BenchTable {
        let mut table = BenchTable::new(
            7,
            3,
            vec![
                TableDevice {
                    name: "gpu-gv100".into(),
                    lut_generation: 0xdead,
                    bias_us: 120.5,
                },
                TableDevice {
                    name: "cpu-xeon-6136".into(),
                    lut_generation: 0xbeef,
                    bias_us: -3.25,
                },
            ],
        );
        table.insert(
            11,
            TableEntry {
                accuracy: 71.125,
                latencies_ms: vec![4.5, 9.75],
            },
        );
        table.insert(
            42,
            TableEntry {
                accuracy: 68.0625,
                latencies_ms: vec![3.0, 8.5],
            },
        );
        table
    }

    #[test]
    fn devices_are_canonically_sorted() {
        let table = sample_table();
        assert_eq!(table.devices[0].name, "cpu-xeon-6136");
        assert_eq!(table.device_index("gpu-gv100"), Some(1));
        assert_eq!(table.device_index("gpu"), None, "aliases are not columns");
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let table = sample_table();
        let bytes = table.to_bytes();
        let decoded = BenchTable::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, table);
        assert_eq!(decoded.to_bytes(), bytes, "re-encoding is byte-stable");
    }

    #[test]
    fn corruption_is_rejected_loudly() {
        let table = sample_table();
        let good = table.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(BenchTable::from_bytes(&bad_magic)
            .unwrap_err()
            .contains("magic"));

        let mut foreign_version = good.clone();
        foreign_version[4] = 99;
        assert!(BenchTable::from_bytes(&foreign_version)
            .unwrap_err()
            .contains("version"));

        let truncated = &good[..good.len() - 3];
        assert!(BenchTable::from_bytes(truncated)
            .unwrap_err()
            .contains("truncated"));

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(BenchTable::from_bytes(&flipped)
            .unwrap_err()
            .contains("checksum"));

        let mut padded = good.clone();
        padded.push(0);
        assert!(BenchTable::from_bytes(&padded).is_err());
    }

    #[test]
    fn save_load_roundtrips() {
        let dir = std::env::temp_dir().join(format!("hsconas-hsbt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t.hsbt");
        let table = sample_table();
        table.save(&path).unwrap();
        assert_eq!(BenchTable::load(&path).unwrap(), table);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
