//! Serve-local metrics.
//!
//! Two layers with different jobs:
//!
//! * **Exact atomics** (this struct's counters) back the `status`
//!   response and the soak test's bookkeeping contract: every accepted
//!   request increments exactly one of `served_*` / `rejected_*`, so
//!   `sum(counters) == client-side tally` holds with no sampling error.
//! * **Registry instruments** ([`hsconas_telemetry`] histograms, gauge,
//!   counters) feed the p50/p99 latency figures in `status` and, with the
//!   `telemetry` feature, the JSONL event stream. The registry is
//!   compiled unconditionally, so percentiles work in no-default-features
//!   builds too.

use hsconas_telemetry::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// All serving metrics; one instance per [`crate::Server`].
pub struct ServeMetrics {
    started: Instant,
    /// Accepted TCP connections.
    pub connections: AtomicU64,
    /// 200-answered `status` requests.
    pub served_status: AtomicU64,
    /// 200-answered `predict_latency` requests.
    pub served_predict: AtomicU64,
    /// 200-answered `score` requests.
    pub served_score: AtomicU64,
    /// 200-answered `search` requests.
    pub served_search: AtomicU64,
    /// 200-answered `pareto` requests.
    pub served_pareto: AtomicU64,
    /// 200-answered `shutdown` requests.
    pub served_shutdown: AtomicU64,
    /// 200-answered `infer` requests.
    pub served_infer: AtomicU64,
    /// `infer` requests answered from the compiled-artifact cache.
    pub infer_cache_hits: AtomicU64,
    /// `predict_latency`/`score` requests answered O(1) from the
    /// precomputed bench table.
    pub table_hits: AtomicU64,
    /// Requests that consulted a loaded bench table and missed (uncovered
    /// arch or stale generation stamp) — these fell through to live eval.
    pub table_misses: AtomicU64,
    /// 429 responses (queue full).
    pub rejected_overloaded: AtomicU64,
    /// 400 responses (malformed frame or fields).
    pub rejected_malformed: AtomicU64,
    /// 413 responses (frame over the size cap).
    pub rejected_oversized: AtomicU64,
    /// 404 responses (unknown device).
    pub rejected_unknown_device: AtomicU64,
    /// 503 responses (draining).
    pub rejected_shutting_down: AtomicU64,
    /// 500 responses.
    pub internal_errors: AtomicU64,
    /// Evaluation micro-batches executed.
    pub batches: AtomicU64,
    /// Jobs carried by those batches (`>= batches`; the ratio is the
    /// batching win).
    pub batched_jobs: AtomicU64,
    /// Highest queue depth observed at admission.
    pub queue_peak: AtomicU64,
    /// Live queue depth (mirrored onto the registry gauge).
    gauge_queue_depth: Gauge,
    hist_predict_ms: Histogram,
    hist_score_ms: Histogram,
    hist_search_ms: Histogram,
    hist_pareto_ms: Histogram,
    hist_infer_ms: Histogram,
    counter_served: Counter,
    counter_rejected: Counter,
}

impl ServeMetrics {
    /// Fresh metrics; clock starts now.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            served_status: AtomicU64::new(0),
            served_predict: AtomicU64::new(0),
            served_score: AtomicU64::new(0),
            served_search: AtomicU64::new(0),
            served_pareto: AtomicU64::new(0),
            served_shutdown: AtomicU64::new(0),
            served_infer: AtomicU64::new(0),
            infer_cache_hits: AtomicU64::new(0),
            table_hits: AtomicU64::new(0),
            table_misses: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_malformed: AtomicU64::new(0),
            rejected_oversized: AtomicU64::new(0),
            rejected_unknown_device: AtomicU64::new(0),
            rejected_shutting_down: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            gauge_queue_depth: Gauge::register("serve.queue_depth"),
            hist_predict_ms: Histogram::register("serve.latency_ms.predict_latency"),
            hist_score_ms: Histogram::register("serve.latency_ms.score"),
            hist_search_ms: Histogram::register("serve.latency_ms.search"),
            hist_pareto_ms: Histogram::register("serve.latency_ms.pareto"),
            hist_infer_ms: Histogram::register("serve.latency_ms.infer"),
            counter_served: Counter::register("serve.requests_served"),
            counter_rejected: Counter::register("serve.requests_rejected"),
        }
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Records a successfully served request of `cmd` taking `elapsed_ms`.
    pub fn record_served(&self, cmd: &str, elapsed_ms: f64) {
        let counter = match cmd {
            "status" => &self.served_status,
            "predict_latency" => &self.served_predict,
            "score" => &self.served_score,
            "search" => &self.served_search,
            "pareto" => &self.served_pareto,
            "shutdown" => &self.served_shutdown,
            "infer" => &self.served_infer,
            _ => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.counter_served.incr();
        match cmd {
            "predict_latency" => self.hist_predict_ms.record(elapsed_ms),
            "score" => self.hist_score_ms.record(elapsed_ms),
            "search" => self.hist_search_ms.record(elapsed_ms),
            "pareto" => self.hist_pareto_ms.record(elapsed_ms),
            "infer" => self.hist_infer_ms.record(elapsed_ms),
            _ => {}
        }
    }

    /// Records a rejection with protocol code `code`.
    pub fn record_rejected(&self, code: u16) {
        let counter = match code {
            crate::proto::CODE_OVERLOADED => &self.rejected_overloaded,
            crate::proto::CODE_BAD_REQUEST => &self.rejected_malformed,
            crate::proto::CODE_FRAME_TOO_LARGE => &self.rejected_oversized,
            crate::proto::CODE_UNKNOWN_DEVICE => &self.rejected_unknown_device,
            crate::proto::CODE_SHUTTING_DOWN => &self.rejected_shutting_down,
            _ => &self.internal_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.counter_rejected.incr();
    }

    /// Publishes the current queue depth (and tracks the peak).
    pub fn record_queue_depth(&self, depth: usize) {
        self.gauge_queue_depth.set(depth as f64);
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// `(count, p50, p99, max)` of the per-command latency histogram.
    pub fn latency_stats(&self, cmd: &str) -> (u64, f64, f64, f64) {
        let hist = match cmd {
            "predict_latency" => &self.hist_predict_ms,
            "score" => &self.hist_score_ms,
            "search" => &self.hist_search_ms,
            "pareto" => &self.hist_pareto_ms,
            "infer" => &self.hist_infer_ms,
            _ => return (0, 0.0, 0.0, 0.0),
        };
        let snap = hist.snapshot();
        (
            snap.count,
            snap.quantile(0.5),
            snap.quantile(0.99),
            snap.max,
        )
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;

    #[test]
    fn served_and_rejected_tallies_are_exact() {
        let m = ServeMetrics::new();
        for _ in 0..3 {
            m.record_served("score", 1.0);
        }
        m.record_served("search", 250.0);
        m.record_served("pareto", 400.0);
        m.record_rejected(proto::CODE_OVERLOADED);
        m.record_rejected(proto::CODE_OVERLOADED);
        m.record_rejected(proto::CODE_BAD_REQUEST);
        assert_eq!(m.served_score.load(Ordering::Relaxed), 3);
        assert_eq!(m.served_search.load(Ordering::Relaxed), 1);
        assert_eq!(m.served_pareto.load(Ordering::Relaxed), 1);
        assert_eq!(m.latency_stats("pareto").0, 1);
        assert_eq!(m.rejected_overloaded.load(Ordering::Relaxed), 2);
        assert_eq!(m.rejected_malformed.load(Ordering::Relaxed), 1);
        let (count, p50, p99, max) = m.latency_stats("score");
        assert_eq!(count, 3);
        assert!(p50 > 0.0 && p50 <= p99 && p99 <= max);
    }

    #[test]
    fn queue_depth_tracks_peak() {
        let m = ServeMetrics::new();
        m.record_queue_depth(3);
        m.record_queue_depth(7);
        m.record_queue_depth(1);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 7);
    }
}
