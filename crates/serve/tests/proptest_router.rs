//! Property tests for the fleet router's consistent-hash ring: the
//! stability guarantees the fleet's bit-identity contract rests on must
//! hold for arbitrary fleet sizes, vnode counts, and keys — not just the
//! handful exercised by the unit tests.

use hsconas_serve::router::{
    arch_route_key, device_target_key, fnv1a_64, HashRing, VNODES_PER_SHARD,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same key, same ring parameters → same shard, across independent
    /// ring rebuilds (the "router restart" case). Ring placement must be
    /// a pure function of `(shards, vnodes)`.
    #[test]
    fn same_key_same_shard_across_restarts(
        shards in 1usize..12,
        vnodes in 1usize..128,
        key in 0u64..u64::MAX,
    ) {
        let a = HashRing::new(shards, vnodes);
        let b = HashRing::new(shards, vnodes);
        prop_assert_eq!(a.shard_for(key), b.shard_for(key));
        prop_assert!(a.shard_for(key) < shards);
    }

    /// Growing the fleet by one shard only ever moves keys TO the new
    /// shard — never between surviving shards — and moves roughly 1/(N+1)
    /// of them. This is what makes fleet resizes cheap: a key that stays
    /// keeps its shard's warm caches.
    #[test]
    fn adding_a_shard_moves_only_about_one_over_n_keys(
        shards in 1usize..10,
        key_seed in 0u64..u64::MAX,
    ) {
        let before = HashRing::new(shards, VNODES_PER_SHARD);
        let after = HashRing::new(shards + 1, VNODES_PER_SHARD);
        let keys = 4_096u64;
        let mut moved = 0usize;
        for i in 0..keys {
            let key = fnv1a_64(&(key_seed ^ i).to_le_bytes());
            let (was, now) = (before.shard_for(key), after.shard_for(key));
            if was != now {
                prop_assert_eq!(now, shards, "keys may only move to the new shard");
                moved += 1;
            }
        }
        let expected = keys as f64 / (shards + 1) as f64;
        let ratio = moved as f64 / expected;
        prop_assert!(
            (0.3..3.0).contains(&ratio),
            "moved {} keys, expected about {:.0}",
            moved,
            expected
        );
    }

    /// Routing keys are total functions: any device string and finite
    /// positive target produce a key, aliases canonicalize, and the key
    /// separates devices from targets (no accidental collisions between
    /// the fields).
    #[test]
    fn device_target_keys_are_stable_and_alias_insensitive(
        target in 0.1f64..10_000.0,
        junk in 0u64..1_000_000,
    ) {
        let junk_device = format!("dev-{junk}");
        for (alias, canonical) in [
            ("gpu", "gpu-gv100"),
            ("cpu", "cpu-xeon-6136"),
            ("edge", "edge-xavier"),
        ] {
            prop_assert_eq!(
                device_target_key(alias, target),
                device_target_key(canonical, target)
            );
        }
        // Unknown devices still route deterministically (the owning shard
        // answers the 404 so error bytes match single-daemon behavior).
        prop_assert_eq!(
            device_target_key(&junk_device, target),
            device_target_key(&junk_device, target)
        );
    }

    /// Infer routing is a pure function of the genome.
    #[test]
    fn arch_keys_depend_only_on_the_genome(
        arch in prop::collection::vec(0usize..10, 1..40),
    ) {
        prop_assert_eq!(arch_route_key(&arch), arch_route_key(&arch));
        let mut longer = arch.clone();
        longer.push(0);
        prop_assert_ne!(arch_route_key(&arch), arch_route_key(&longer));
    }
}
