//! Sweeps the trade-off coefficient β for the GPU-A search to pick the
//! default that best reproduces Table I's accuracy/latency balance.

use hsconas::{search_for_device, PipelineConfig};
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_hwsim::DeviceSpec;
use hsconas_space::SearchSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    for beta in [-10.0, -20.0, -40.0, -80.0] {
        let mut rng = StdRng::seed_from_u64(7);
        let config = PipelineConfig {
            beta,
            ..PipelineConfig::default()
        };
        let space = SearchSpace::hsconas_a();
        let outcome = search_for_device(
            space.clone(),
            DeviceSpec::gpu_gv100(),
            9.0,
            &config,
            &mut rng,
        )
        .unwrap();
        let oracle = SurrogateAccuracy::new(space.skeleton().clone());
        println!(
            "beta {beta:>6}: err {:.1}  lat {:.2} ms  score {:.2}",
            oracle.top1_error(&outcome.best_arch).unwrap(),
            outcome.best.latency_ms,
            outcome.best.score
        );
    }
}
