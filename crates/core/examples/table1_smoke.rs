//! Full-budget Table I smoke run (release mode): prints the complete table
//! with the paper's search hyper-parameters.

use hsconas::{render_table, table_one, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2021);
    let config = PipelineConfig::default();
    let rows = table_one(&config, &mut rng).expect("table generation");
    println!("{}", render_table(&rows));
}
