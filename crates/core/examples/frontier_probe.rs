//! Probes the accuracy/latency frontier on GPU for uniform-scaled archs
//! and a few structured variants, to sanity-check what the EA can reach.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_space::{Arch, ChannelScale, Gene, OpKind, SearchSpace};

fn main() {
    let space = SearchSpace::hsconas_a();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let gpu = DeviceSpec::gpu_gv100();
    for t in (3..=10u8).rev() {
        let mut arch = Arch::widest(20);
        for l in 0..20 {
            arch.set_gene(
                l,
                Gene::new(OpKind::Shuffle3, ChannelScale::from_tenths(t).unwrap()),
            )
            .unwrap();
        }
        let net = lower_arch(space.skeleton(), &arch).unwrap();
        println!(
            "uniform {:.1}: err {:.1}  gpu {:.2} ms",
            t as f64 / 10.0,
            oracle.top1_error(&arch).unwrap(),
            gpu.network_time_us(&net) / 1000.0
        );
    }
    // skip k stride-1 layers in stage order from front
    for skips in [2, 4, 6] {
        let mut arch = Arch::widest(20);
        for l in [1, 2, 3, 5, 6, 7].into_iter().take(skips) {
            arch.set_gene(l, Gene::new(OpKind::Skip, ChannelScale::FULL))
                .unwrap();
        }
        let net = lower_arch(space.skeleton(), &arch).unwrap();
        println!(
            "{skips} skips: err {:.1}  gpu {:.2} ms",
            oracle.top1_error(&arch).unwrap(),
            gpu.network_time_us(&net) / 1000.0
        );
    }
}
