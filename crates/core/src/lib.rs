//! # hsconas
//!
//! The end-to-end HSCoNAS pipeline (DATE 2021): hardware-software co-design
//! of efficient DNNs via neural architecture search.
//!
//! This crate ties the subsystem crates together into the paper's Fig. 1
//! flow:
//!
//! 1. build the search space ([`hsconas_space`]);
//! 2. calibrate the hardware performance model for the target device
//!    ([`hsconas_latency`] over the simulated devices of
//!    [`hsconas_hwsim`]);
//! 3. progressively shrink the space towards the target hardware
//!    ([`hsconas_shrink`]);
//! 4. run the evolutionary search ([`hsconas_evo`]) with the Eq. 1
//!    objective combining the accuracy oracle ([`hsconas_accuracy`]) and
//!    the latency predictor;
//! 5. report Table-I-style comparisons against the baseline zoo
//!    ([`hsconas_baselines`]).
//!
//! ## Example
//!
//! ```no_run
//! use hsconas::{search_for_device, PipelineConfig};
//! use hsconas_hwsim::DeviceSpec;
//! use hsconas_space::SearchSpace;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), hsconas::PipelineError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let outcome = search_for_device(
//!     SearchSpace::hsconas_a(),
//!     DeviceSpec::edge_xavier(),
//!     34.0, // the paper's edge latency target (ms)
//!     &PipelineConfig::default(),
//!     &mut rng,
//! )?;
//! println!("found {} @ {:.1} ms", outcome.best_arch, outcome.best.latency_ms);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod checkpoint;
pub mod config;
pub mod persist;
pub mod pipeline;
pub mod real_pipeline;
pub mod report;

pub use checkpoint::{
    pareto_config_hash, run_pareto_checkpointed, run_search_checkpointed, CheckpointOptions,
};
pub use config::PipelineConfig;
pub use error::PipelineError;
pub use persist::{load_json, save_json, SavedModel};
pub use pipeline::{search_for_device, search_for_device_checkpointed, SearchOutcome};
pub use real_pipeline::{
    run_real_pipeline, run_real_pipeline_checkpointed, RealPipelineConfig, RealPipelineResult,
};
pub use report::{render_table, table_one, TableGroup, TableRow};
