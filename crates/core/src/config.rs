//! Pipeline configuration.

use hsconas_evo::EvolutionConfig;
use hsconas_shrink::ShrinkConfig;

/// End-to-end search configuration. `Default` reproduces the paper's
/// settings; the `fast_test` preset scales the sampling budgets down for
/// unit/integration tests.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Architectures sampled to calibrate the latency bias `B` (the `M`
    /// of Eq. 3).
    pub calibration_archs: usize,
    /// On-device measurement repeats per calibration architecture.
    pub calibration_repeats: usize,
    /// Trade-off coefficient β of Eq. 1 (must be negative).
    pub beta: f64,
    /// Whether to run progressive space shrinking before the EA.
    pub shrink: bool,
    /// Shrinking schedule.
    pub shrink_config: ShrinkConfig,
    /// Evolutionary-search hyper-parameters.
    pub evolution: EvolutionConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            calibration_archs: 100,
            calibration_repeats: 5,
            beta: -20.0,
            shrink: true,
            shrink_config: ShrinkConfig::default(),
            evolution: EvolutionConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// A configuration with drastically reduced sampling budgets for tests.
    pub fn fast_test() -> Self {
        PipelineConfig {
            calibration_archs: 20,
            calibration_repeats: 2,
            beta: -20.0,
            shrink: true,
            shrink_config: ShrinkConfig {
                stages: vec![vec![19, 18], vec![17, 16]],
                samples_per_subspace: 25,
            },
            evolution: EvolutionConfig {
                generations: 12,
                population: 30,
                parents: 10,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.evolution.generations, 20);
        assert_eq!(c.evolution.population, 50);
        assert_eq!(c.evolution.parents, 20);
        assert_eq!(c.evolution.crossover_prob, 0.25);
        assert_eq!(c.evolution.mutation_prob, 0.25);
        assert_eq!(c.shrink_config.samples_per_subspace, 100);
        assert!(c.beta < 0.0);
        assert!(c.shrink);
    }

    #[test]
    fn fast_test_is_smaller() {
        let fast = PipelineConfig::fast_test();
        let full = PipelineConfig::default();
        assert!(fast.calibration_archs < full.calibration_archs);
        assert!(fast.evolution.population < full.evolution.population);
    }
}
