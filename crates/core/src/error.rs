use hsconas_accuracy::AccuracyError;
use hsconas_evo::EvoError;
use hsconas_space::SpaceError;
use std::fmt;

/// Error type for the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Search-space failure.
    Space(SpaceError),
    /// Search or objective failure.
    Evo(EvoError),
    /// Accuracy-oracle failure.
    Accuracy(AccuracyError),
    /// Checkpoint persistence or resume failure.
    Ckpt {
        /// Human-readable description of the checkpoint failure.
        detail: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Space(e) => write!(f, "space error: {e}"),
            PipelineError::Evo(e) => write!(f, "search error: {e}"),
            PipelineError::Accuracy(e) => write!(f, "accuracy error: {e}"),
            PipelineError::Ckpt { detail } => write!(f, "checkpoint error: {detail}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Space(e) => Some(e),
            PipelineError::Evo(e) => Some(e),
            PipelineError::Accuracy(e) => Some(e),
            PipelineError::Ckpt { .. } => None,
        }
    }
}

impl From<hsconas_ckpt::CkptError> for PipelineError {
    fn from(e: hsconas_ckpt::CkptError) -> Self {
        PipelineError::Ckpt {
            detail: e.to_string(),
        }
    }
}

impl From<SpaceError> for PipelineError {
    fn from(e: SpaceError) -> Self {
        PipelineError::Space(e)
    }
}

impl From<EvoError> for PipelineError {
    fn from(e: EvoError) -> Self {
        PipelineError::Evo(e)
    }
}

impl From<AccuracyError> for PipelineError {
    fn from(e: AccuracyError) -> Self {
        PipelineError::Accuracy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e: PipelineError = SpaceError::EmptyCandidates { layer: 2 }.into();
        assert!(e.to_string().contains("space error"));
        assert!(e.source().is_some());
        let e: PipelineError = EvoError::InvalidConfig { detail: "x".into() }.into();
        assert!(e.to_string().contains("search error"));
    }
}
