//! Persistence of search results: discovered architectures and comparison
//! tables are saved as JSON so an expensive search can be re-measured,
//! re-rendered, or deployed without rerunning the pipeline.

use crate::{PipelineError, TableRow};
use hsconas_space::{Arch, SpaceError};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// A saved search outcome: everything needed to reproduce the discovered
/// model's row in a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedModel {
    /// Model name (e.g. "HSCoNet-Edge-A").
    pub name: String,
    /// Device the search targeted.
    pub target_device: String,
    /// Latency constraint used, milliseconds.
    pub target_ms: f64,
    /// The discovered architecture.
    pub arch: Arch,
    /// Top-1 error at save time, percent.
    pub top1_error: f64,
    /// Predicted latency at save time, milliseconds.
    pub latency_ms: f64,
    /// Seed that produced this result.
    pub seed: u64,
}

/// Serializes a value to pretty JSON at `path`.
///
/// # Errors
///
/// Returns [`PipelineError`] wrapping the I/O or serialization failure.
pub fn save_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> Result<(), PipelineError> {
    let json = serde_json::to_string_pretty(value).map_err(to_pipeline_error)?;
    fs::write(path.as_ref(), json)
        .map_err(|e| to_pipeline_error(format!("write {}: {e}", path.as_ref().display())))?;
    Ok(())
}

/// Deserializes a value from JSON at `path`.
///
/// # Errors
///
/// Returns [`PipelineError`] wrapping the I/O or deserialization failure.
pub fn load_json<T: for<'de> Deserialize<'de>>(path: impl AsRef<Path>) -> Result<T, PipelineError> {
    let json = fs::read_to_string(path.as_ref())
        .map_err(|e| to_pipeline_error(format!("read {}: {e}", path.as_ref().display())))?;
    serde_json::from_str(&json).map_err(to_pipeline_error)
}

/// Saves a full comparison table.
///
/// # Errors
///
/// Returns [`PipelineError`] on I/O or serialization failure.
pub fn save_table(rows: &[TableRow], path: impl AsRef<Path>) -> Result<(), PipelineError> {
    save_json(&rows.to_vec(), path)
}

/// Loads a previously saved comparison table.
///
/// # Errors
///
/// Returns [`PipelineError`] on I/O or deserialization failure.
pub fn load_table(path: impl AsRef<Path>) -> Result<Vec<TableRow>, PipelineError> {
    load_json(path)
}

fn to_pipeline_error(e: impl std::fmt::Display) -> PipelineError {
    PipelineError::Space(SpaceError::ArchMismatch {
        detail: format!("persistence: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::baseline_rows;
    use hsconas_space::SearchSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "hsconas-persist-{name}-{}.json",
            std::process::id()
        ))
    }

    #[test]
    fn saved_model_roundtrip() {
        let space = SearchSpace::hsconas_a();
        let mut rng = StdRng::seed_from_u64(1);
        let model = SavedModel {
            name: "HSCoNet-Edge-A".into(),
            target_device: "edge-xavier".into(),
            target_ms: 34.0,
            arch: space.sample(&mut rng),
            top1_error: 25.7,
            latency_ms: 34.3,
            seed: 2021,
        };
        let path = tmp("model");
        save_json(&model, &path).unwrap();
        let loaded: SavedModel = load_json(&path).unwrap();
        assert_eq!(loaded, model);
        assert!(space.contains(&loaded.arch), "arch survives the roundtrip");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn table_roundtrip() {
        let rows = baseline_rows();
        let path = tmp("table");
        save_table(&rows, &path).unwrap();
        let loaded = load_table(&path).unwrap();
        assert_eq!(loaded.len(), rows.len());
        for (a, b) in loaded.iter().zip(&rows) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.group, b.group);
            assert_eq!(a.top1_error, b.top1_error);
            for i in 0..3 {
                // floats survive JSON up to formatting precision
                assert!((a.latency_ms[i] - b.latency_ms[i]).abs() < 1e-9);
            }
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        let result: Result<SavedModel, _> = load_json("/nonexistent/hsconas.json");
        assert!(result.is_err());
    }

    #[test]
    fn load_corrupt_json_errors() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{not json").unwrap();
        let result: Result<SavedModel, _> = load_json(&path);
        assert!(result.is_err());
        let _ = std::fs::remove_file(path);
    }
}
