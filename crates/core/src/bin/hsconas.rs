//! The `hsconas` command-line tool: run searches, regenerate the
//! comparison table, and re-measure saved models without writing code.
//!
//! ```text
//! hsconas search --device edge --target-ms 34 [--layout a|b] [--seed N] [--fast] [--out FILE] [--telemetry RUN.jsonl]
//! hsconas table [--fast] [--seed N] [--out FILE] [--telemetry RUN.jsonl]
//! hsconas baselines
//! hsconas measure --model FILE
//! hsconas report RUN.jsonl
//! ```
//!
//! `--telemetry PATH` streams a JSONL event log of the run (spans, metric
//! flushes) to `PATH`; `hsconas report PATH` renders it as per-phase
//! summary tables. Requires a build with the `telemetry` feature (default).

use hsconas::checkpoint::inspect_checkpoint;
use hsconas::persist::{load_json, save_json, SavedModel};
use hsconas::{
    render_table, search_for_device, search_for_device_checkpointed, table_one, CheckpointOptions,
    PipelineConfig,
};
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_latency::LatencyPredictor;
use hsconas_space::{ChannelLayout, NetworkSkeleton, SearchSpace};
use hsconas_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("search") => cmd_search(&args[1..]),
        Some("table") => cmd_table(&args[1..]),
        Some("baselines") => cmd_baselines(),
        Some("measure") => cmd_measure(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("ckpt") => cmd_ckpt(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-table") => cmd_bench_table(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        _ => {
            eprintln!(
                "usage: hsconas <search|table|baselines|measure|report|ckpt|serve|bench-table|client|compile|infer|compare> [options]\n\
                 \n\
                 search    --device gpu|cpu|edge --target-ms N [--layout a|b] [--seed N] [--fast] [--out FILE] [--telemetry RUN.jsonl]\n\
                 \x20         [--checkpoint DIR] [--resume] [--keep-last K]\n\
                 table     [--fast] [--seed N] [--out FILE] [--telemetry RUN.jsonl]\n\
                 baselines\n\
                 measure   --model FILE\n\
                 profile   --device gpu|cpu|edge --out FILE [--seed N]\n\
                 report    RUN.jsonl\n\
                 ckpt      inspect FILE\n\
                 serve     [--host H] [--port N] [--state-dir DIR] [--budget fast|full] [--devices a,b]\n\
                 \x20         [--queue-cap N] [--eval-workers N] [--pool-threads N] [--batch-max N]\n\
                 \x20         [--lut-watch-ms N] [--bench-table FILE] [--telemetry RUN.jsonl]\n\
                 \x20         [--fleet N | --workers H:P,H:P,...] [--vnodes N] [--health-ms N]\n\
                 \x20         [--shard-timeout-ms N] [--drain-workers]\n\
                 bench-table --out FILE [--devices a,b,c] [--samples N] [--seed N] [--state-dir DIR]\n\
                 \x20         [--budget fast|full] [--calibration-seed N]\n\
                 client    --addr HOST:PORT <status|shutdown|predict|score|search|pareto|infer> [--device D]\n\
                 \x20         [--devices a,b,c] [--target-ms N] [--seed N] [--arch 0,9,1,3,...]\n\
                 \x20         [--input-seed N] [--batch N]\n\
                 compile   (--arch 0,9,1,3,... | --widest) -o model.hsart [--skeleton tiny|imagenet-a|imagenet-b]\n\
                 \x20         [--classes N] [--seed N] [--warmup N]\n\
                 infer     model.hsart [--input-seed N] [--batch N]\n\
                 compare   model.hsart [--input-seed N] [--batch N] [--tolerance X]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Installs the JSONL telemetry sink when `--telemetry PATH` is given.
/// The returned guard flushes metrics and closes the log when dropped, so
/// hold it for the duration of the command. A `None` means telemetry was
/// not requested; a request against a telemetry-disabled build warns and
/// continues (observability must never fail the run).
fn telemetry_from_args(args: &[String]) -> Option<hsconas_telemetry::FlushGuard> {
    let path = flag(args, "--telemetry")?;
    match hsconas_telemetry::init_jsonl(&path) {
        Ok(guard) => Some(guard),
        Err(e) => {
            eprintln!("warning: --telemetry disabled: {e}");
            None
        }
    }
}

fn device_by_name(name: &str) -> Result<DeviceSpec, String> {
    match name {
        "gpu" => Ok(DeviceSpec::gpu_gv100()),
        "cpu" => Ok(DeviceSpec::cpu_xeon_6136()),
        "edge" => Ok(DeviceSpec::edge_xavier()),
        other => Err(format!("unknown device '{other}' (use gpu|cpu|edge)")),
    }
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let device_name = flag(args, "--device").ok_or("--device is required")?;
    let device = device_by_name(&device_name)?;
    let target_ms: f64 = flag(args, "--target-ms")
        .ok_or("--target-ms is required")?
        .parse()
        .map_err(|e| format!("--target-ms: {e}"))?;
    let layout = match flag(args, "--layout").as_deref() {
        None | Some("a") => ChannelLayout::A,
        Some("b") => ChannelLayout::B,
        Some(other) => return Err(format!("unknown layout '{other}' (use a|b)")),
    };
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(2021);
    let config = if has_flag(args, "--fast") {
        PipelineConfig::fast_test()
    } else {
        PipelineConfig::default()
    };
    let _telemetry = telemetry_from_args(args);
    let space = SearchSpace::full(NetworkSkeleton::imagenet(layout));
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = match checkpoint_options_from_args(args)? {
        Some(opts) => search_for_device_checkpointed(
            space.clone(),
            device.clone(),
            target_ms,
            &config,
            &mut rng,
            &opts,
        )
        .map_err(|e| e.to_string())?,
        None => search_for_device(space.clone(), device.clone(), target_ms, &config, &mut rng)
            .map_err(|e| e.to_string())?,
    };
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let top1 = oracle
        .top1_error(&outcome.best_arch)
        .map_err(|e| e.to_string())?;
    println!("architecture : {}", outcome.best_arch);
    println!("top-1 error  : {top1:.1}%");
    println!(
        "latency      : {:.1} ms on {} (target {target_ms} ms)",
        outcome.best.latency_ms, device.name
    );
    println!("objective F  : {:.2}", outcome.best.score);
    if let Some(path) = flag(args, "--out") {
        let saved = SavedModel {
            name: format!("search-{device_name}-{target_ms}ms"),
            target_device: device.name.clone(),
            target_ms,
            arch: outcome.best_arch,
            top1_error: top1,
            latency_ms: outcome.best.latency_ms,
            seed,
        };
        save_json(&saved, &path).map_err(|e| e.to_string())?;
        println!("saved        : {path}");
    }
    Ok(())
}

/// Parses `--checkpoint DIR [--resume] [--keep-last K]` into
/// [`CheckpointOptions`] (`None` when `--checkpoint` is absent).
fn checkpoint_options_from_args(args: &[String]) -> Result<Option<CheckpointOptions>, String> {
    let Some(dir) = flag(args, "--checkpoint") else {
        if has_flag(args, "--resume") {
            return Err("--resume requires --checkpoint DIR".into());
        }
        return Ok(None);
    };
    let mut opts = CheckpointOptions::new(dir).resume(has_flag(args, "--resume"));
    if let Some(k) = flag(args, "--keep-last") {
        opts = opts.keep_last(k.parse().map_err(|e| format!("--keep-last: {e}"))?);
    }
    Ok(Some(opts))
}

/// `hsconas ckpt inspect FILE`: print a checkpoint file's self-describing
/// header (format version, phase, cursor, config hash) after verifying
/// its payload checksum.
fn cmd_ckpt(args: &[String]) -> Result<(), String> {
    match (args.first().map(String::as_str), args.get(1)) {
        (Some("inspect"), Some(path)) => {
            let report = inspect_checkpoint(std::path::Path::new(path))?;
            println!("{report}");
            Ok(())
        }
        _ => Err("usage: hsconas ckpt inspect FILE".into()),
    }
}

/// `hsconas serve`: run the search-as-a-service daemon until a client
/// sends `shutdown`. Prints the bound address on stdout before accepting,
/// so scripts (and the protocol tests) can discover an ephemeral port.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use hsconas_serve::{Budget, ServeOptions, Server};

    let parse_num = |name: &str, default: u64| -> Result<u64, String> {
        flag(args, name)
            .map(|s| s.parse().map_err(|e| format!("{name}: {e}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let fleet_workers = parse_num("--fleet", 0)? as usize;
    let attach = flag(args, "--workers").map(|s| {
        s.split(',')
            .map(|a| a.trim().to_string())
            .collect::<Vec<_>>()
    });
    if fleet_workers > 0 && attach.is_some() {
        return Err("--fleet and --workers are mutually exclusive".into());
    }
    if fleet_workers > 0 || attach.is_some() {
        return cmd_serve_fleet(args, fleet_workers, attach);
    }
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        host: flag(args, "--host").unwrap_or(defaults.host),
        port: parse_num("--port", 0)? as u16,
        state_dir: flag(args, "--state-dir").map(std::path::PathBuf::from),
        budget: match flag(args, "--budget") {
            None => Budget::Fast,
            Some(s) => {
                Budget::parse(&s).ok_or_else(|| format!("unknown budget '{s}' (use fast|full)"))?
            }
        },
        queue_capacity: parse_num("--queue-cap", defaults.queue_capacity as u64)? as usize,
        eval_workers: parse_num("--eval-workers", defaults.eval_workers as u64)? as usize,
        pool_threads: parse_num("--pool-threads", defaults.pool_threads as u64)? as usize,
        batch_max: parse_num("--batch-max", defaults.batch_max as u64)? as usize,
        lut_watch_ms: parse_num("--lut-watch-ms", defaults.lut_watch_ms)?,
        preload: flag(args, "--devices")
            .map(|s| s.split(',').map(str::to_string).collect())
            .unwrap_or_default(),
        calibration_seed: parse_num("--calibration-seed", defaults.calibration_seed)?,
        slow_eval_ms: parse_num("--test-slow-eval-ms", 0)?,
        bench_table: flag(args, "--bench-table").map(std::path::PathBuf::from),
    };
    let _telemetry = telemetry_from_args(args);
    let server = Server::bind(options).map_err(|e| e.to_string())?;
    println!("hsconas-serve listening on {}", server.local_addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())
}

/// `hsconas bench-table`: precompute a `.hsbt` table of per-device
/// latencies plus proxy accuracy over a sampled subspace, using exactly
/// the warm state (calibration seed, snapshot dir, budget) a server with
/// the same flags would build — so a server pointed at the artifact via
/// `--bench-table` answers covered requests bit-identically to live
/// evaluation.
fn cmd_bench_table(args: &[String]) -> Result<(), String> {
    use hsconas_serve::{BenchTable, Budget, ServeOptions, TableDevice, TableEntry, WarmState};

    let out = flag(args, "--out").ok_or("--out FILE is required")?;
    let samples: usize = flag(args, "--samples")
        .map(|s| s.parse().map_err(|e| format!("--samples: {e}")))
        .transpose()?
        .unwrap_or(64);
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(2021);
    let device_names: Vec<String> = flag(args, "--devices")
        .unwrap_or_else(|| "gpu,cpu,edge".into())
        .split(',')
        .map(|d| d.trim().to_string())
        .filter(|d| !d.is_empty())
        .collect();
    if device_names.is_empty() {
        return Err("--devices must name at least one device".into());
    }
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        state_dir: flag(args, "--state-dir").map(std::path::PathBuf::from),
        budget: match flag(args, "--budget") {
            None => Budget::Fast,
            Some(s) => {
                Budget::parse(&s).ok_or_else(|| format!("unknown budget '{s}' (use fast|full)"))?
            }
        },
        calibration_seed: flag(args, "--calibration-seed")
            .map(|s| s.parse().map_err(|e| format!("--calibration-seed: {e}")))
            .transpose()?
            .unwrap_or(defaults.calibration_seed),
        ..defaults
    };
    let _telemetry = telemetry_from_args(args);
    let state = WarmState::new(options);
    let mut devices = Vec::new();
    for name in &device_names {
        devices.push(state.device(name).map_err(|e| e.to_string())?);
    }
    // Canonical column order: sorted by canonical name, aliases deduped —
    // the same normalization the serve router applies to device sets.
    devices.sort_by(|a, b| a.name.cmp(&b.name));
    devices.dedup_by(|a, b| a.name == b.name);
    let columns: Vec<TableDevice> = devices
        .iter()
        .map(|d| {
            let (_, bias_us) = d.predictor_stats();
            TableDevice {
                name: d.name.clone(),
                lut_generation: d.lut_generation(),
                bias_us,
            }
        })
        .collect();
    let mut table = BenchTable::new(seed, samples as u64, columns);
    let space = devices[0].space.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    for arch in space.sample_n(samples, &mut rng) {
        let fingerprint = hsconas_serve::router::arch_route_key(&arch.encode());
        if table.get(fingerprint).is_some() {
            continue; // duplicate samples collapse onto one row
        }
        let mut accuracy = 0.0;
        let mut latencies_ms = Vec::with_capacity(devices.len());
        for (i, device) in devices.iter().enumerate() {
            let (acc, lat) = device
                .measure(&arch)
                .map_err(|e| format!("{}: {e}", device.name))?;
            if i == 0 {
                accuracy = acc;
            }
            latencies_ms.push(lat);
        }
        table.insert(
            fingerprint,
            TableEntry {
                accuracy,
                latencies_ms,
            },
        );
    }
    table
        .save(std::path::Path::new(&out))
        .map_err(|e| e.to_string())?;
    println!(
        "devices      : {}",
        table
            .devices
            .iter()
            .map(|d| d.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "rows         : {} (from {samples} samples, seed {seed})",
        table.len()
    );
    println!("saved        : {out}");
    Ok(())
}

/// `hsconas serve --fleet N` / `--workers A,B`: run the routing front-end
/// over a sharded worker fleet. In `--fleet` mode the router spawns and
/// owns N worker processes (this same binary, ephemeral ports) and drains
/// them on shutdown; in `--workers` attach mode it routes to externally
/// managed daemons and leaves them running unless `--drain-workers` is
/// passed. Either way the stdout greeting is byte-identical to the
/// single-daemon one so scripts don't care which mode they got.
fn cmd_serve_fleet(
    args: &[String],
    fleet_workers: usize,
    attach: Option<Vec<String>>,
) -> Result<(), String> {
    use hsconas_serve::{Fleet, FleetOptions, Router, RouterOptions};

    let parse_num = |name: &str, default: u64| -> Result<u64, String> {
        flag(args, name)
            .map(|s| s.parse().map_err(|e| format!("{name}: {e}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let _telemetry = telemetry_from_args(args);
    let mut fleet: Option<Fleet> = None;
    let shards = match attach {
        Some(addrs) => addrs,
        None => {
            // Forward only the worker-relevant serve flags; the router-level
            // flags (and --port, which the fleet pins to 0) stay here.
            let mut worker_args = Vec::new();
            for name in [
                "--host",
                "--state-dir",
                "--budget",
                "--devices",
                "--queue-cap",
                "--eval-workers",
                "--pool-threads",
                "--batch-max",
                "--lut-watch-ms",
                "--calibration-seed",
                "--test-slow-eval-ms",
                "--bench-table",
            ] {
                if let Some(value) = flag(args, name) {
                    worker_args.push(name.to_string());
                    worker_args.push(value);
                }
            }
            let program = std::env::current_exe()
                .map_err(|e| format!("cannot locate own binary for fleet spawn: {e}"))?;
            let spawned = Fleet::spawn(&FleetOptions {
                program,
                workers: fleet_workers,
                worker_args,
                startup_timeout_ms: parse_num("--fleet-startup-timeout-ms", 60_000)?,
            })
            .map_err(|e| e.to_string())?;
            eprintln!(
                "hsconas-route: {} worker(s) up: {}",
                spawned.addrs().len(),
                spawned.addrs().join(", ")
            );
            let addrs = spawned.addrs().to_vec();
            fleet = Some(spawned);
            addrs
        }
    };
    let defaults = RouterOptions::default();
    let options = RouterOptions {
        host: flag(args, "--host").unwrap_or(defaults.host),
        port: parse_num("--port", 0)? as u16,
        shards,
        vnodes: parse_num("--vnodes", defaults.vnodes as u64)? as usize,
        health_ms: parse_num("--health-ms", defaults.health_ms)?,
        shard_timeout_ms: parse_num("--shard-timeout-ms", defaults.shard_timeout_ms)?,
        drain_shards: fleet.is_some() || has_flag(args, "--drain-workers"),
    };
    let router = Router::bind(options).map_err(|e| e.to_string())?;
    println!("hsconas-serve listening on {}", router.local_addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    let run = router.run().map_err(|e| e.to_string());
    if let Some(mut fleet) = fleet {
        let killed = fleet.wait_exit(std::time::Duration::from_secs(30));
        if killed > 0 {
            eprintln!("hsconas-route: killed {killed} straggler worker(s)");
        }
    }
    run
}

/// `hsconas client`: one request against a running daemon, response
/// pretty-printed to stdout. Exits nonzero on any non-200 response so
/// shell scripts can branch on it.
fn cmd_client(args: &[String]) -> Result<(), String> {
    use hsconas_serve::client::render_pretty;
    use hsconas_serve::{Client, Command};

    let addr = flag(args, "--addr").ok_or("--addr HOST:PORT is required")?;
    // The command is the first positional token; every client flag takes a
    // value, so skip flags two tokens at a time.
    let mut cmd = None;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            cmd = Some(args[i].clone());
            break;
        }
    }
    let cmd = cmd.ok_or(
        "usage: hsconas client --addr HOST:PORT <status|shutdown|predict|score|search|pareto|infer>",
    )?;
    let device = || flag(args, "--device").ok_or("--device is required".to_string());
    let target_ms = || -> Result<f64, String> {
        flag(args, "--target-ms")
            .ok_or("--target-ms is required")?
            .parse()
            .map_err(|e| format!("--target-ms: {e}"))
    };
    let arch = || -> Result<Vec<usize>, String> {
        flag(args, "--arch")
            .ok_or("--arch is required (comma-separated genome)")?
            .split(',')
            .map(|g| g.trim().parse().map_err(|e| format!("--arch: {e}")))
            .collect()
    };
    let command = match cmd.as_str() {
        "status" => Command::Status,
        "shutdown" => Command::Shutdown,
        "predict" | "predict_latency" => Command::PredictLatency {
            device: device()?,
            arch: arch()?,
        },
        "score" => Command::Score {
            device: device()?,
            target_ms: target_ms()?,
            arch: arch()?,
        },
        "search" => Command::Search {
            device: device()?,
            target_ms: target_ms()?,
            seed: flag(args, "--seed")
                .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(0),
        },
        "pareto" => Command::Pareto {
            devices: flag(args, "--devices")
                .ok_or("--devices is required (comma-separated device names)")?
                .split(',')
                .map(|d| d.trim().to_string())
                .filter(|d| !d.is_empty())
                .collect(),
            target_ms: target_ms()?,
            seed: flag(args, "--seed")
                .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(0),
        },
        "infer" => Command::Infer {
            arch: arch()?,
            input_seed: flag(args, "--input-seed")
                .map(|s| s.parse().map_err(|e| format!("--input-seed: {e}")))
                .transpose()?
                .unwrap_or(0),
            batch: flag(args, "--batch")
                .map(|s| s.parse().map_err(|e| format!("--batch: {e}")))
                .transpose()?
                .unwrap_or(1),
        },
        other => return Err(format!("unknown client command '{other}'")),
    };
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .set_timeout(Some(std::time::Duration::from_secs(300)))
        .map_err(|e| e.to_string())?;
    let response = client.call(command).map_err(|e| e.to_string())?;
    match (&response.result, &response.error) {
        (Some(result), _) => println!("{}", render_pretty(result)),
        (None, Some(error)) => return Err(format!("{} {error}", response.code)),
        (None, None) => return Err(format!("{} (empty response)", response.code)),
    }
    Ok(())
}

/// Shared by the graph subcommands: `--skeleton tiny|imagenet-a|imagenet-b`
/// (default tiny, whose class count `--classes` overrides).
fn skeleton_from_args(args: &[String]) -> Result<NetworkSkeleton, String> {
    let classes: usize = flag(args, "--classes")
        .map(|s| s.parse().map_err(|e| format!("--classes: {e}")))
        .transpose()?
        .unwrap_or(10);
    match flag(args, "--skeleton").as_deref() {
        None | Some("tiny") => Ok(NetworkSkeleton::tiny(classes)),
        Some("imagenet-a") => Ok(NetworkSkeleton::imagenet(ChannelLayout::A)),
        Some("imagenet-b") => Ok(NetworkSkeleton::imagenet(ChannelLayout::B)),
        Some(other) => Err(format!(
            "unknown skeleton '{other}' (use tiny|imagenet-a|imagenet-b)"
        )),
    }
}

/// First non-flag token: the artifact path for `infer` / `compare`.
fn artifact_path(args: &[String]) -> Result<String, String> {
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            return Ok(args[i].clone());
        }
    }
    Err("an artifact path is required".into())
}

/// Seeded synthetic input batch matching an artifact's input geometry.
fn synthetic_input(args: &[String], art: &hsconas_graph::Artifact) -> Result<Tensor, String> {
    let input_seed: u64 = flag(args, "--input-seed")
        .map(|s| s.parse().map_err(|e| format!("--input-seed: {e}")))
        .transpose()?
        .unwrap_or(0);
    let batch: usize = flag(args, "--batch")
        .map(|s| s.parse().map_err(|e| format!("--batch: {e}")))
        .transpose()?
        .unwrap_or(1);
    let g = &art.graph;
    let mut rng = hsconas_tensor::rng::SmallRng::new(input_seed);
    Ok(Tensor::randn(
        [batch, g.input_c, g.input_h, g.input_w],
        1.0,
        &mut rng,
    ))
}

/// `hsconas compile`: lower a genome into an optimized graph artifact.
fn cmd_compile(args: &[String]) -> Result<(), String> {
    use hsconas_graph::{artifact, compile, CompileOptions};
    use hsconas_space::Arch;

    let skeleton = skeleton_from_args(args)?;
    let out = flag(args, "-o")
        .or_else(|| flag(args, "--out"))
        .ok_or("-o FILE is required")?;
    let arch = if has_flag(args, "--widest") {
        Arch::widest(skeleton.num_layers())
    } else {
        let encoded: Vec<usize> = flag(args, "--arch")
            .ok_or("--arch is required (comma-separated genome, or --widest)")?
            .split(',')
            .map(|g| g.trim().parse().map_err(|e| format!("--arch: {e}")))
            .collect::<Result<_, String>>()?;
        Arch::decode(&encoded).map_err(|e| e.to_string())?
    };
    if arch.len() != skeleton.num_layers() {
        return Err(format!(
            "genome has {} layers but the skeleton searches {}",
            arch.len(),
            skeleton.num_layers()
        ));
    }
    let opts = CompileOptions {
        seed: flag(args, "--seed")
            .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
            .transpose()?
            .unwrap_or(0),
        warmup_steps: flag(args, "--warmup")
            .map(|s| s.parse().map_err(|e| format!("--warmup: {e}")))
            .transpose()?
            .unwrap_or(CompileOptions::default().warmup_steps),
    };
    let _telemetry = telemetry_from_args(args);
    let (art, stats) = compile(&skeleton, &arch, &opts).map_err(|e| e.to_string())?;
    let bytes = artifact::to_bytes(&art);
    artifact::save(&art, std::path::Path::new(&out)).map_err(|e| e.to_string())?;
    println!("architecture : {arch}");
    println!(
        "graph        : {} nodes, {} weight floats",
        art.graph.nodes.len(),
        art.graph.const_elements()
    );
    println!(
        "patches      : {} fused, {} specialized, {} folded, {} removed",
        stats.fused, stats.specialized, stats.folded, stats.removed
    );
    println!("artifact     : {out} ({} bytes)", bytes.len());
    Ok(())
}

/// `hsconas infer`: run a compiled artifact on a seeded synthetic batch.
fn cmd_infer(args: &[String]) -> Result<(), String> {
    use hsconas_graph::{artifact, execute};

    let path = artifact_path(args)?;
    let _telemetry = telemetry_from_args(args);
    let art = artifact::load(std::path::Path::new(&path)).map_err(|e| e.to_string())?;
    let x = synthetic_input(args, &art)?;
    let logits = execute(&art.graph, &x).map_err(|e| e.to_string())?;
    let s = logits.shape();
    for n in 0..s.n {
        let row: Vec<f32> = (0..s.c).map(|c| logits.at(n, c, 0, 0)).collect();
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        println!("image {n}: class {argmax}  logits {row:?}");
    }
    Ok(())
}

/// `hsconas compare`: diff an artifact layer-by-layer against the
/// reference supernet rebuilt from its provenance. Exits nonzero when the
/// worst error exceeds `--tolerance` (default 0 — bit-identity).
fn cmd_compare(args: &[String]) -> Result<(), String> {
    use hsconas_graph::{artifact, compare};

    let path = artifact_path(args)?;
    let tolerance: f32 = flag(args, "--tolerance")
        .map(|s| s.parse().map_err(|e| format!("--tolerance: {e}")))
        .transpose()?
        .unwrap_or(0.0);
    let _telemetry = telemetry_from_args(args);
    let art = artifact::load(std::path::Path::new(&path)).map_err(|e| e.to_string())?;
    let x = synthetic_input(args, &art)?;
    let report = compare(&art, &x).map_err(|e| e.to_string())?;
    println!(
        "{:<10} {:>9} {:>9} {:>13} {:>13}",
        "boundary", "logical C", "actual C", "max |err|", "tail max"
    );
    for row in &report.layers {
        println!(
            "{:<10} {:>9} {:>9} {:>13e} {:>13e}",
            row.label, row.logical_c, row.physical_c, row.max_abs_err, row.ref_tail_max
        );
    }
    println!("overall max |err| = {:e}", report.max_abs_err);
    if report.max_abs_err > tolerance {
        return Err(format!(
            "max |err| {:e} exceeds tolerance {tolerance:e}",
            report.max_abs_err
        ));
    }
    Ok(())
}

fn cmd_table(args: &[String]) -> Result<(), String> {
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(2021);
    let config = if has_flag(args, "--fast") {
        PipelineConfig::fast_test()
    } else {
        PipelineConfig::default()
    };
    let _telemetry = telemetry_from_args(args);
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = table_one(&config, &mut rng).map_err(|e| e.to_string())?;
    print!("{}", render_table(&rows));
    if let Some(path) = flag(args, "--out") {
        hsconas::persist::save_table(&rows, &path).map_err(|e| e.to_string())?;
        println!("saved: {path}");
    }
    Ok(())
}

fn cmd_baselines() -> Result<(), String> {
    print!("{}", render_table(&hsconas::report::baseline_rows()));
    Ok(())
}

/// Calibrates a latency predictor for one device and saves the profiled
/// LUT + bias snapshot, so later searches can skip the measurement phase.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let device_name = flag(args, "--device").ok_or("--device is required")?;
    let device = device_by_name(&device_name)?;
    let out = flag(args, "--out").ok_or("--out is required")?;
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(2021);
    let space = SearchSpace::hsconas_a();
    let mut rng = StdRng::seed_from_u64(seed);
    let predictor =
        LatencyPredictor::calibrate(device, &space, 100, 5, &mut rng).map_err(|e| e.to_string())?;
    // profile broadly so the snapshot covers most configurations
    for arch in space.sample_n(200, &mut rng) {
        predictor.predict_us(&arch).map_err(|e| e.to_string())?;
    }
    let snapshot = predictor.export();
    println!(
        "profiled {} operator configurations, bias B = {:.2} ms",
        snapshot.lut.entries.len(),
        snapshot.bias_us / 1000.0
    );
    save_json(&snapshot, &out).map_err(|e| e.to_string())?;
    println!("saved: {out}");
    Ok(())
}

/// Renders the per-phase run report from a telemetry JSONL log.
fn cmd_report(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: hsconas report RUN.jsonl")?;
    print!("{}", hsconas::report::render_run_report(path)?);
    Ok(())
}

fn cmd_measure(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--model").ok_or("--model is required")?;
    let model: SavedModel = load_json(&path).map_err(|e| e.to_string())?;
    println!("model        : {}", model.name);
    println!("architecture : {}", model.arch);
    // Re-measure on all devices; infer the layout from the arch via both
    // skeletons (exactly one will accept the widths).
    let layouts = [ChannelLayout::A, ChannelLayout::B];
    let skeleton = layouts
        .iter()
        .map(|&l| NetworkSkeleton::imagenet(l))
        .find(|s| s.num_layers() == model.arch.len())
        .ok_or("architecture does not fit any known skeleton")?;
    let net = lower_arch(&skeleton, &model.arch).map_err(|e| e.to_string())?;
    for device in DeviceSpec::paper_devices() {
        let pm = hsconas_hwsim::PowerModel::for_device(&device);
        let fp = hsconas_hwsim::memory_footprint(&device, &net);
        println!(
            "{:<16}: {:.1} ms   {:.0} mJ   {:.1} MiB",
            device.name,
            device.network_time_us(&net) / 1000.0,
            pm.network_energy_mj(&device, &net),
            fp.total_mib()
        );
    }
    // per-operator latency breakdown on the model's target device
    let target = DeviceSpec::paper_devices()
        .into_iter()
        .find(|d| d.name == model.target_device)
        .unwrap_or_else(DeviceSpec::edge_xavier);
    println!("\nper-operator breakdown on {} (us):", target.name);
    for op in &net.ops {
        println!("  {:<24} {:>10.1}", op.name, target.op_time_us(op));
    }
    println!(
        "  {:<24} {:>10.1}",
        "(inter-op + fixed)",
        (net.ops.len() - 1) as f64 * target.inter_op_overhead_us + target.fixed_overhead_us
    );
    Ok(())
}
