//! Table I reproduction: baselines and searched HSCoNets compared by test
//! error and per-device runtime latency.

use crate::{search_for_device, PipelineConfig, PipelineError};
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_baselines::zoo;
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_space::{ChannelLayout, SearchSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Row grouping, mirroring Table I's three sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableGroup {
    /// Manually-designed models.
    Manual,
    /// State-of-the-art NAS models.
    Nas,
    /// Hardware-aware models discovered by HSCoNAS.
    Hsconas,
}

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Model name.
    pub name: String,
    /// Table section.
    pub group: TableGroup,
    /// Top-1 test error, percent.
    pub top1_error: f64,
    /// Top-5 test error, percent (where available).
    pub top5_error: Option<f64>,
    /// Simulated latency on `[GPU, CPU, Edge]`, milliseconds.
    pub latency_ms: [f64; 3],
}

/// Simulates the three-device latency columns for a network description.
fn device_latencies(net: &hsconas_hwsim::NetworkDesc) -> [f64; 3] {
    let devices = DeviceSpec::paper_devices();
    [
        devices[0].network_time_us(net) / 1000.0,
        devices[1].network_time_us(net) / 1000.0,
        devices[2].network_time_us(net) / 1000.0,
    ]
}

/// The baseline section of Table I: published errors, simulated latencies.
pub fn baseline_rows() -> Vec<TableRow> {
    zoo::all_baselines()
        .into_iter()
        .enumerate()
        .map(|(i, model)| TableRow {
            name: model.name.clone(),
            // first three rows of Table I are the manual designs
            group: if i < 3 {
                TableGroup::Manual
            } else {
                TableGroup::Nas
            },
            top1_error: model.top1_error,
            top5_error: model.top5_error,
            latency_ms: device_latencies(&model.network),
        })
        .collect()
}

/// Searches the six HSCoNets (layouts A and B × three devices with the
/// paper's latency targets 9 / 24 / 34 ms) and returns their rows.
///
/// # Errors
///
/// Returns [`PipelineError`] on any search failure.
pub fn hsconet_rows<R: Rng + ?Sized>(
    config: &PipelineConfig,
    rng: &mut R,
) -> Result<Vec<TableRow>, PipelineError> {
    let targets = [("GPU", 9.0), ("CPU", 24.0), ("Edge", 34.0)];
    let mut rows = Vec::with_capacity(6);
    for (layout, suffix) in [(ChannelLayout::A, "A"), (ChannelLayout::B, "B")] {
        for (i, (device_name, _)) in targets.iter().enumerate() {
            let target_ms = layout_target(layout, i);
            let space = SearchSpace::full(hsconas_space::NetworkSkeleton::imagenet(layout));
            let device = DeviceSpec::paper_devices()[i].clone();
            let outcome = search_for_device(space.clone(), device, target_ms, config, rng)?;
            let oracle = SurrogateAccuracy::new(space.skeleton().clone());
            let net = lower_arch(space.skeleton(), &outcome.best_arch)?;
            rows.push(TableRow {
                name: format!("HSCoNet-{device_name}-{suffix}"),
                group: TableGroup::Hsconas,
                top1_error: oracle.top1_error(&outcome.best_arch)?,
                top5_error: Some(oracle.top5_error(&outcome.best_arch)?),
                latency_ms: device_latencies(&net),
            });
        }
    }
    Ok(rows)
}

/// Latency targets per layout and device (index 0/1/2 = GPU/CPU/Edge).
/// The paper's headline constraints (9/24/34 ms) drive the A family; the B
/// family trades latency for accuracy, so its searches target the B-model
/// latencies Table I actually reports (12.0/26.4/52.7 ms).
fn layout_target(layout: ChannelLayout, device_index: usize) -> f64 {
    match layout {
        ChannelLayout::A => [9.0, 24.0, 34.0][device_index],
        ChannelLayout::B => [12.0, 26.4, 52.7][device_index],
    }
}

/// The full Table I: 11 baselines plus 6 searched HSCoNets.
///
/// # Errors
///
/// Returns [`PipelineError`] on any search failure.
pub fn table_one<R: Rng + ?Sized>(
    config: &PipelineConfig,
    rng: &mut R,
) -> Result<Vec<TableRow>, PipelineError> {
    let mut rows = baseline_rows();
    rows.extend(hsconet_rows(config, rng)?);
    Ok(rows)
}

/// Loads a telemetry JSONL run log (written via `--telemetry PATH`) and
/// renders the per-phase run report: span rollups, EA generations, shrink
/// stages, cache hit rates, gauges, and histograms.
///
/// Works regardless of whether *this* build has telemetry enabled — the
/// log decoder is always compiled; only event *production* is feature-gated.
///
/// # Errors
///
/// Returns a description of the I/O or schema failure.
pub fn render_run_report(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let report = hsconas_telemetry::RunReport::from_jsonl(&text)?;
    Ok(report.render())
}

/// Renders rows as a fixed-width text table in Table I's column order.
pub fn render_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>6} {:>6} {:>8} {:>8} {:>8}\n",
        "Model", "Top-1", "Top-5", "GPU(ms)", "CPU(ms)", "Edge(ms)"
    ));
    let mut group = None;
    for row in rows {
        if group != Some(row.group) {
            let title = match row.group {
                TableGroup::Manual => "-- Manually-Designed Models --",
                TableGroup::Nas => "-- State-of-the-art NAS Models --",
                TableGroup::Hsconas => "-- Hardware-Aware Models Discovered by HSCoNAS --",
            };
            out.push_str(title);
            out.push('\n');
            group = Some(row.group);
        }
        out.push_str(&format!(
            "{:<26} {:>6.1} {:>6} {:>8.1} {:>8.1} {:>8.1}\n",
            row.name,
            row.top1_error,
            row.top5_error
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
            row.latency_ms[0],
            row.latency_ms[1],
            row.latency_ms[2],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn baseline_rows_cover_table_one() {
        let rows = baseline_rows();
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].group, TableGroup::Manual);
        assert_eq!(rows[2].group, TableGroup::Manual);
        assert_eq!(rows[3].group, TableGroup::Nas);
        for row in &rows {
            for lat in row.latency_ms {
                assert!(lat > 1.0 && lat < 200.0, "{}: {lat}", row.name);
            }
        }
    }

    #[test]
    fn render_contains_sections_and_rows() {
        let text = render_table(&baseline_rows());
        assert!(text.contains("Manually-Designed"));
        assert!(text.contains("MobileNetV2"));
        assert!(text.contains("DARTS"));
        assert!(text.contains("CPU(ms)"));
    }

    #[test]
    fn hsconet_search_beats_baseline_tradeoff_on_its_device() {
        // Fast-budget end-to-end: the searched edge model should meet the
        // (scaled test) constraint while keeping surrogate error in the
        // Table I band.
        let mut rng = StdRng::seed_from_u64(4);
        let config = PipelineConfig::fast_test();
        let space = SearchSpace::hsconas_a();
        let outcome = search_for_device(
            space.clone(),
            DeviceSpec::edge_xavier(),
            34.0,
            &config,
            &mut rng,
        )
        .unwrap();
        let oracle = SurrogateAccuracy::new(space.skeleton().clone());
        let err = oracle.top1_error(&outcome.best_arch).unwrap();
        assert!(err < 30.0, "searched model error {err}");
    }
}
