//! The end-to-end search pipeline (Fig. 1 of the paper).

use crate::checkpoint::{
    surrogate_config_hash, CheckpointOptions, PipelineCkpt, CUR_CALIBRATED, CUR_EA_BASE,
    CUR_SHRINK_BASE, TAG_CALIBRATED, TAG_EA_GEN, TAG_SHRINK_STAGE,
};
use crate::{PipelineConfig, PipelineError};
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_ckpt::{CheckpointStore, Phase};
use hsconas_evo::{Evaluation, EvolutionSearch, SearchResult, TradeoffObjective};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::{LatencyPredictor, PredictorSnapshot};
use hsconas_shrink::{ProgressiveShrinking, ShrinkConfig, ShrinkResult, StageRecord};
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::Rng;

/// The result of one device-targeted search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The discovered architecture (`arch*` of Eq. 5).
    pub best_arch: Arch,
    /// Its evaluation under the Eq. 1 objective.
    pub best: Evaluation,
    /// The calibrated latency bias `B` in microseconds.
    pub latency_bias_us: f64,
    /// The shrinking record (`None` when shrinking was disabled).
    pub shrink: Option<ShrinkResult>,
    /// The full EA result including per-generation history.
    pub evolution: SearchResult,
}

/// Builds the Eq. 1 objective for a device from the surrogate accuracy
/// oracle and a calibrated latency predictor.
#[allow(clippy::type_complexity)]
fn build_objective(
    oracle: SurrogateAccuracy,
    predictor: LatencyPredictor,
    target_ms: f64,
    beta: f64,
) -> TradeoffObjective<
    impl FnMut(&Arch) -> Result<f64, String>,
    impl FnMut(&Arch) -> Result<f64, String>,
> {
    TradeoffObjective::new(
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        target_ms,
        beta,
    )
}

/// Runs the full HSCoNAS pipeline for one target device and latency
/// constraint `target_ms` (the paper uses 9 / 24 / 34 ms for GPU / CPU /
/// Edge):
///
/// 1. calibrate the latency predictor (Eq. 2–3) on the device;
/// 2. (optionally) progressively shrink the space (§III-C);
/// 3. run the evolutionary search (§III-D) in the final space.
///
/// # Errors
///
/// Returns [`PipelineError`] on any subsystem failure.
pub fn search_for_device<R: Rng + ?Sized>(
    space: SearchSpace,
    device: DeviceSpec,
    target_ms: f64,
    config: &PipelineConfig,
    rng: &mut R,
) -> Result<SearchOutcome, PipelineError> {
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let predictor = {
        let _span = hsconas_telemetry::span!("pipeline.calibrate");
        LatencyPredictor::calibrate(
            device,
            &space,
            config.calibration_archs,
            config.calibration_repeats,
            rng,
        )?
    };
    let latency_bias_us = predictor.bias_us();
    let mut objective = build_objective(oracle, predictor, target_ms, config.beta);

    let (search_space, shrink) = if config.shrink {
        let _span = hsconas_telemetry::span!(
            "pipeline.shrink",
            stages = config.shrink_config.stages.len()
        );
        let result = ProgressiveShrinking::new(config.shrink_config.clone()).run(
            space,
            &mut objective,
            rng,
            |_stage, _space| Ok(()),
        )?;
        (result.space.clone(), Some(result))
    } else {
        (space, None)
    };

    let evolution = {
        let _span = hsconas_telemetry::span!("pipeline.search");
        let mut search = EvolutionSearch::new(search_space, config.evolution);
        search.run(&mut objective, rng)?
    };
    Ok(SearchOutcome {
        best_arch: evolution.best_arch.clone(),
        best: evolution.best_evaluation,
        latency_bias_us,
        shrink,
        evolution,
    })
}

/// [`search_for_device`] with crash-safe checkpointing: a self-contained
/// checkpoint lands after calibration, after every shrinking stage, and
/// after every EA generation. With `opts.resume = true` the run continues
/// from the latest checkpoint bit-identically to an uninterrupted run
/// (the shrink/EA RNG stream is restored exactly; the calibrated
/// predictor is rebuilt from its snapshot).
///
/// Takes a concrete [`StdRng`] (rather than a generic `Rng`) because the
/// driving RNG's state must be persisted and restored.
///
/// # Errors
///
/// Returns [`PipelineError`] on any subsystem failure, including refusing
/// to resume from a checkpoint written under a different space, device,
/// latency target, or configuration.
pub fn search_for_device_checkpointed(
    space: SearchSpace,
    device: DeviceSpec,
    target_ms: f64,
    config: &PipelineConfig,
    rng: &mut StdRng,
    opts: &CheckpointOptions,
) -> Result<SearchOutcome, PipelineError> {
    let store = CheckpointStore::open(
        &opts.dir,
        Phase::Pipeline,
        surrogate_config_hash(&space, &device, target_ms, config)?,
        opts.keep_last,
    )?;
    let resume: Option<PipelineCkpt> = if opts.resume {
        match store.load_latest()? {
            Some((_, payload)) => Some(PipelineCkpt::decode(&payload)?),
            None => None,
        }
    } else {
        None
    };
    if let Some(state) = resume.as_ref().and_then(|r| r.search_rng) {
        *rng = StdRng::from_state(state);
    }

    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let predictor = match resume.as_ref().and_then(|r| r.predictor_json.as_deref()) {
        Some(json) => {
            let snapshot: PredictorSnapshot =
                serde_json::from_str(json).map_err(|e| PipelineError::Ckpt {
                    detail: format!("invalid predictor snapshot in checkpoint: {e}"),
                })?;
            LatencyPredictor::from_snapshot(device.clone(), &space, snapshot).map_err(|e| {
                PipelineError::Ckpt {
                    detail: e.to_string(),
                }
            })?
        }
        None => {
            let _span = hsconas_telemetry::span!("pipeline.calibrate");
            LatencyPredictor::calibrate(
                device.clone(),
                &space,
                config.calibration_archs,
                config.calibration_repeats,
                rng,
            )?
        }
    };
    let latency_bias_us = predictor.bias_us();
    let predictor_json =
        serde_json::to_string(&predictor.export()).map_err(|e| PipelineError::Ckpt {
            detail: format!("serializing predictor snapshot: {e}"),
        })?;
    if resume.is_none() {
        let payload = PipelineCkpt {
            tag: TAG_CALIBRATED,
            trainer: None,
            cursor: None,
            predictor_json: Some(predictor_json.clone()),
            search_rng: Some(rng.state()),
            stages: Vec::new(),
            ea: None,
        }
        .encode()?;
        store.save(CUR_CALIBRATED, &payload)?;
    }
    let mut objective = build_objective(oracle, predictor, target_ms, config.beta);

    // Shrinking is driven one stage per `run` call (instead of one call
    // over all stages) so the RNG can be snapshotted between stages; the
    // stream each stage consumes is identical either way. On resume the
    // restricted space is rebuilt by replaying the checkpointed per-layer
    // decisions over the original space.
    let mut completed: Vec<StageRecord> = resume
        .as_ref()
        .filter(|r| r.tag >= TAG_SHRINK_STAGE)
        .map_or_else(Vec::new, |r| r.stages.clone());
    let (search_space, shrink) = if config.shrink {
        let mut current = space.clone();
        for record in &completed {
            for decision in &record.decisions {
                current = current.restrict_op(decision.layer, decision.chosen)?;
            }
        }
        let shrink_span = hsconas_telemetry::span!(
            "pipeline.shrink",
            stages = config.shrink_config.stages.len()
        );
        for (stage_idx, layers) in config
            .shrink_config
            .stages
            .iter()
            .enumerate()
            .skip(completed.len())
        {
            let engine = ProgressiveShrinking::new(ShrinkConfig {
                stages: vec![layers.clone()],
                samples_per_subspace: config.shrink_config.samples_per_subspace,
            });
            let result = engine.run(current.clone(), &mut objective, rng, |_, _| Ok(()))?;
            current = result.space;
            let mut record = result
                .stages
                .into_iter()
                .next()
                .expect("single-stage shrink yields one record");
            record.stage = stage_idx;
            completed.push(record);
            let payload = PipelineCkpt {
                tag: TAG_SHRINK_STAGE,
                trainer: None,
                cursor: None,
                predictor_json: Some(predictor_json.clone()),
                search_rng: Some(rng.state()),
                stages: completed.clone(),
                ea: None,
            }
            .encode()?;
            store.save(CUR_SHRINK_BASE + stage_idx as u64 + 1, &payload)?;
        }
        shrink_span.close();
        (
            current.clone(),
            Some(ShrinkResult {
                space: current,
                stages: completed.clone(),
            }),
        )
    } else {
        (space, None)
    };

    let evolution = {
        let _span = hsconas_telemetry::span!("pipeline.search");
        let mut search = EvolutionSearch::new(search_space, config.evolution);
        let _ea_span = hsconas_telemetry::span!(
            "ea.search",
            generations = config.evolution.generations,
            population = config.evolution.population,
            parents = config.evolution.parents
        );
        let save_generation =
            |state: &hsconas_evo::SearchState, rng: &StdRng| -> Result<(), PipelineError> {
                let payload = PipelineCkpt {
                    tag: TAG_EA_GEN,
                    trainer: None,
                    cursor: None,
                    predictor_json: Some(predictor_json.clone()),
                    search_rng: Some(rng.state()),
                    stages: completed.clone(),
                    ea: Some(state.clone()),
                }
                .encode()?;
                store.save(CUR_EA_BASE + state.completed_generations() as u64, &payload)?;
                Ok(())
            };
        let mut state = match resume.as_ref().and_then(|r| r.ea.clone()) {
            Some(state) => state,
            None => {
                let state = search.init_state(&mut objective, rng)?;
                save_generation(&state, rng)?;
                state
            }
        };
        while state.completed_generations() < config.evolution.generations {
            search.step_generation(&mut state, &mut objective, rng)?;
            save_generation(&state, rng)?;
        }
        search.finalize(&state)?
    };
    Ok(SearchOutcome {
        best_arch: evolution.best_arch.clone(),
        best: evolution.best_evaluation,
        latency_bias_us,
        shrink,
        evolution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pipeline_finds_arch_near_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = search_for_device(
            SearchSpace::hsconas_a(),
            DeviceSpec::edge_xavier(),
            34.0,
            &PipelineConfig::fast_test(),
            &mut rng,
        )
        .unwrap();
        // within 30% of the constraint even with the tiny test budget
        let ratio = outcome.best.latency_ms / 34.0;
        assert!(
            (0.5..=1.3).contains(&ratio),
            "latency {} ms vs target 34 ms",
            outcome.best.latency_ms
        );
        assert!(
            outcome.best.accuracy > 65.0,
            "accuracy {}",
            outcome.best.accuracy
        );
        assert!(outcome.latency_bias_us > 0.0);
        let shrink = outcome.shrink.as_ref().unwrap();
        assert_eq!(shrink.stages.len(), 2);
    }

    #[test]
    fn shrinking_can_be_disabled() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = PipelineConfig {
            shrink: false,
            ..PipelineConfig::fast_test()
        };
        let outcome = search_for_device(
            SearchSpace::hsconas_a(),
            DeviceSpec::gpu_gv100(),
            9.0,
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(outcome.shrink.is_none());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            search_for_device(
                SearchSpace::hsconas_a(),
                DeviceSpec::cpu_xeon_6136(),
                24.0,
                &PipelineConfig::fast_test(),
                &mut rng,
            )
            .unwrap()
            .best_arch
        };
        assert_eq!(run(3), run(3));
    }
}
