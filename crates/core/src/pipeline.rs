//! The end-to-end search pipeline (Fig. 1 of the paper).

use crate::{PipelineConfig, PipelineError};
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_evo::{Evaluation, EvolutionSearch, SearchResult, TradeoffObjective};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::LatencyPredictor;
use hsconas_shrink::{ProgressiveShrinking, ShrinkResult};
use hsconas_space::{Arch, SearchSpace};
use rand::Rng;

/// The result of one device-targeted search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The discovered architecture (`arch*` of Eq. 5).
    pub best_arch: Arch,
    /// Its evaluation under the Eq. 1 objective.
    pub best: Evaluation,
    /// The calibrated latency bias `B` in microseconds.
    pub latency_bias_us: f64,
    /// The shrinking record (`None` when shrinking was disabled).
    pub shrink: Option<ShrinkResult>,
    /// The full EA result including per-generation history.
    pub evolution: SearchResult,
}

/// Builds the Eq. 1 objective for a device from the surrogate accuracy
/// oracle and a calibrated latency predictor.
#[allow(clippy::type_complexity)]
fn build_objective(
    oracle: SurrogateAccuracy,
    predictor: LatencyPredictor,
    target_ms: f64,
    beta: f64,
) -> TradeoffObjective<
    impl FnMut(&Arch) -> Result<f64, String>,
    impl FnMut(&Arch) -> Result<f64, String>,
> {
    TradeoffObjective::new(
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        target_ms,
        beta,
    )
}

/// Runs the full HSCoNAS pipeline for one target device and latency
/// constraint `target_ms` (the paper uses 9 / 24 / 34 ms for GPU / CPU /
/// Edge):
///
/// 1. calibrate the latency predictor (Eq. 2–3) on the device;
/// 2. (optionally) progressively shrink the space (§III-C);
/// 3. run the evolutionary search (§III-D) in the final space.
///
/// # Errors
///
/// Returns [`PipelineError`] on any subsystem failure.
pub fn search_for_device<R: Rng + ?Sized>(
    space: SearchSpace,
    device: DeviceSpec,
    target_ms: f64,
    config: &PipelineConfig,
    rng: &mut R,
) -> Result<SearchOutcome, PipelineError> {
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let predictor = {
        let _span = hsconas_telemetry::span!("pipeline.calibrate");
        LatencyPredictor::calibrate(
            device,
            &space,
            config.calibration_archs,
            config.calibration_repeats,
            rng,
        )?
    };
    let latency_bias_us = predictor.bias_us();
    let mut objective = build_objective(oracle, predictor, target_ms, config.beta);

    let (search_space, shrink) = if config.shrink {
        let _span = hsconas_telemetry::span!(
            "pipeline.shrink",
            stages = config.shrink_config.stages.len()
        );
        let result = ProgressiveShrinking::new(config.shrink_config.clone()).run(
            space,
            &mut objective,
            rng,
            |_stage, _space| Ok(()),
        )?;
        (result.space.clone(), Some(result))
    } else {
        (space, None)
    };

    let evolution = {
        let _span = hsconas_telemetry::span!("pipeline.search");
        let mut search = EvolutionSearch::new(search_space, config.evolution);
        search.run(&mut objective, rng)?
    };
    Ok(SearchOutcome {
        best_arch: evolution.best_arch.clone(),
        best: evolution.best_evaluation,
        latency_bias_us,
        shrink,
        evolution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_finds_arch_near_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = search_for_device(
            SearchSpace::hsconas_a(),
            DeviceSpec::edge_xavier(),
            34.0,
            &PipelineConfig::fast_test(),
            &mut rng,
        )
        .unwrap();
        // within 30% of the constraint even with the tiny test budget
        let ratio = outcome.best.latency_ms / 34.0;
        assert!(
            (0.5..=1.3).contains(&ratio),
            "latency {} ms vs target 34 ms",
            outcome.best.latency_ms
        );
        assert!(
            outcome.best.accuracy > 65.0,
            "accuracy {}",
            outcome.best.accuracy
        );
        assert!(outcome.latency_bias_us > 0.0);
        let shrink = outcome.shrink.as_ref().unwrap();
        assert_eq!(shrink.stages.len(), 2);
    }

    #[test]
    fn shrinking_can_be_disabled() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = PipelineConfig {
            shrink: false,
            ..PipelineConfig::fast_test()
        };
        let outcome = search_for_device(
            SearchSpace::hsconas_a(),
            DeviceSpec::gpu_gv100(),
            9.0,
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(outcome.shrink.is_none());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            search_for_device(
                SearchSpace::hsconas_a(),
                DeviceSpec::cpu_xeon_6136(),
                24.0,
                &PipelineConfig::fast_test(),
                &mut rng,
            )
            .unwrap()
            .best_arch
        };
        assert_eq!(run(3), run(3));
    }
}
