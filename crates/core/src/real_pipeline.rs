//! The paper's *complete* flow on the real-training substrate: train the
//! weight-sharing supernet → progressively shrink with fine-tuning →
//! evolutionary search with inherited-weight accuracy → materialize the
//! winner and train it from scratch (the paper's "trained from scratch
//! for fair comparisons").
//!
//! This runs at laptop scale (tiny search space, synthetic dataset) and
//! exists to prove the pipeline end to end with no surrogate in the loop;
//! the ImageNet-scale pipeline in [`crate::pipeline`] swaps in the
//! calibrated surrogate oracle.

use crate::checkpoint::{
    real_config_hash, CheckpointOptions, PipelineCkpt, CUR_CALIBRATED, CUR_EA_BASE,
    CUR_SHRINK_BASE, CUR_WARM_BASE, TAG_CALIBRATED, TAG_EA_GEN, TAG_SHRINK_STAGE, TAG_WARM,
};
use crate::PipelineError;
use hsconas_ckpt::{CheckpointStore, Phase};
use hsconas_data::SyntheticDataset;
use hsconas_evo::{Evaluation, EvoError, EvolutionConfig, EvolutionSearch, Objective, SearchState};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::{LatencyPredictor, PredictorSnapshot};
use hsconas_shrink::{ProgressiveShrinking, ShrinkConfig, StageRecord};
use hsconas_space::{Arch, SearchSpace};
use hsconas_supernet::subnet::{build_subnet, train_from_scratch};
use hsconas_supernet::{Supernet, SupernetError, SupernetTrainer, TrainConfig, TrainCursor};
use hsconas_tensor::rng::SmallRng;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the real-training pipeline (tiny-space scale).
#[derive(Debug, Clone, PartialEq)]
pub struct RealPipelineConfig {
    /// Dataset classes.
    pub classes: usize,
    /// Supernet warm-training steps in the full space.
    pub warm_steps: usize,
    /// Fine-tuning steps after each shrinking stage.
    pub fine_tune_steps: usize,
    /// From-scratch training steps for the final model.
    pub final_steps: usize,
    /// Layers fixed per shrinking stage (tiny space: back layers).
    pub shrink_stages: Vec<Vec<usize>>,
    /// Architectures sampled per candidate subspace during shrinking.
    pub samples_per_subspace: usize,
    /// Evaluation batches per inherited-weight accuracy query.
    pub eval_batches: usize,
    /// Evolutionary-search hyper-parameters.
    pub evolution: EvolutionConfig,
    /// Latency target, ms (on the edge device).
    pub target_ms: f64,
    /// Trade-off coefficient β.
    pub beta: f64,
}

impl RealPipelineConfig {
    /// A configuration that completes in roughly a minute in release mode.
    pub fn tiny_default() -> Self {
        RealPipelineConfig {
            classes: 4,
            warm_steps: 240,
            fine_tune_steps: 60,
            final_steps: 200,
            shrink_stages: vec![vec![3], vec![2]],
            samples_per_subspace: 4,
            eval_batches: 2,
            evolution: EvolutionConfig {
                generations: 6,
                population: 12,
                parents: 4,
                ..Default::default()
            },
            target_ms: 20.0,
            beta: -20.0,
        }
    }

    /// A configuration for fast integration tests (seconds in debug mode).
    pub fn smoke_test() -> Self {
        RealPipelineConfig {
            warm_steps: 40,
            fine_tune_steps: 10,
            final_steps: 30,
            samples_per_subspace: 2,
            evolution: EvolutionConfig {
                generations: 2,
                population: 6,
                parents: 2,
                ..Default::default()
            },
            ..Self::tiny_default()
        }
    }
}

/// Result of a completed real-training pipeline run.
#[derive(Debug)]
pub struct RealPipelineResult {
    /// The space after progressive shrinking.
    pub shrunk_space: SearchSpace,
    /// The EA winner.
    pub best_arch: Arch,
    /// The winner's inherited-weight accuracy (supernet evaluation).
    pub inherited_accuracy: f64,
    /// The winner's accuracy after from-scratch training.
    pub from_scratch_accuracy: f64,
    /// The winner's predicted latency, ms.
    pub latency_ms: f64,
}

/// Objective combining real inherited-weight accuracy with the latency
/// predictor — Eq. 1 with no surrogate anywhere.
struct InheritedWeightObjective<'a> {
    trainer: &'a mut SupernetTrainer,
    data: &'a SyntheticDataset,
    predictor: &'a LatencyPredictor,
    eval_batches: usize,
    target_ms: f64,
    beta: f64,
}

impl Objective for InheritedWeightObjective<'_> {
    fn evaluate(&mut self, arch: &Arch) -> Result<Evaluation, EvoError> {
        let acc = self
            .trainer
            .evaluate(arch, self.data, self.eval_batches)
            .map_err(|e| EvoError::Objective {
                detail: e.to_string(),
            })?;
        let latency_ms = self.predictor.predict_ms(arch).map_err(EvoError::Space)?;
        let accuracy = 100.0 * acc;
        Ok(Evaluation {
            score: accuracy + self.beta * (latency_ms / self.target_ms - 1.0).abs(),
            accuracy,
            latency_ms,
        })
    }
}

/// Runs the complete real-training pipeline on the tiny space.
///
/// # Errors
///
/// Returns [`PipelineError`] on any subsystem failure.
pub fn run_real_pipeline(
    config: &RealPipelineConfig,
    seed: u64,
) -> Result<RealPipelineResult, PipelineError> {
    run_real_pipeline_checkpointed(config, seed, None)
}

/// [`run_real_pipeline`] with optional crash-safe checkpointing: the run
/// writes a self-contained checkpoint at every phase boundary (and every
/// `train_interval` steps inside warm training), and with
/// `ckpt.resume = true` continues from the latest one **bit-identically**
/// to an uninterrupted run — weights, optimizer velocities, and all three
/// RNG streams are restored exactly.
///
/// # Errors
///
/// Returns [`PipelineError`] on any subsystem failure, including refusing
/// to resume from a checkpoint written under a different `(config, seed)`
/// or one that fails its integrity checks.
pub fn run_real_pipeline_checkpointed(
    config: &RealPipelineConfig,
    seed: u64,
    ckpt: Option<&CheckpointOptions>,
) -> Result<RealPipelineResult, PipelineError> {
    let store = match ckpt {
        Some(opts) => Some(CheckpointStore::open(
            &opts.dir,
            Phase::Pipeline,
            real_config_hash(config, seed),
            opts.keep_last,
        )?),
        None => None,
    };
    let resume: Option<PipelineCkpt> = match (&store, ckpt) {
        (Some(store), Some(opts)) if opts.resume => match store.load_latest()? {
            Some((_, payload)) => Some(PipelineCkpt::decode(&payload)?),
            None => None,
        },
        _ => None,
    };
    let resume_tag = resume.as_ref().map_or(0, |r| r.tag);

    let space = SearchSpace::tiny(config.classes);
    let data = SyntheticDataset::new(config.classes, 32, seed);
    let mut train_rng = SmallRng::new(seed);

    // 1. warm supernet training in the full space. The supernet is always
    //    built the same way (the build consumes `train_rng` draws that a
    //    fresh run needs); on resume the restored checkpoint then
    //    overwrites every parameter and the RNG streams.
    let mut trainer = {
        let supernet = Supernet::build(space.skeleton(), &mut train_rng)
            .map_err(|e| objective_error(e.to_string()))?;
        SupernetTrainer::new(supernet, TrainConfig::quick_test())
    };
    if let Some(r) = &resume {
        let snapshot = r.trainer.as_ref().ok_or_else(|| PipelineError::Ckpt {
            detail: "pipeline checkpoint is missing trainer state".into(),
        })?;
        trainer
            .restore(snapshot)
            .map_err(|e| objective_error(e.to_string()))?;
    }
    if resume_tag <= TAG_WARM {
        let _span = hsconas_telemetry::span!("pipeline.train", steps = config.warm_steps);
        let cursor = resume.as_ref().and_then(|r| r.cursor);
        let interval = ckpt.map_or(0, |o| o.train_interval);
        let mut save_mid_train =
            |t: &mut SupernetTrainer, c: &TrainCursor| -> Result<(), SupernetError> {
                let Some(store) = &store else { return Ok(()) };
                let payload = PipelineCkpt {
                    tag: TAG_WARM,
                    trainer: Some(t.checkpoint()),
                    cursor: Some(*c),
                    predictor_json: None,
                    search_rng: None,
                    stages: Vec::new(),
                    ea: None,
                }
                .encode()
                .map_err(|e| SupernetError::Checkpoint {
                    detail: e.to_string(),
                })?;
                store
                    .save(CUR_WARM_BASE + c.step_in_call, &payload)
                    .map_err(|e| SupernetError::Checkpoint {
                        detail: e.to_string(),
                    })?;
                Ok(())
            };
        trainer
            .train_steps_resumable(
                &space,
                &data,
                config.warm_steps,
                0.05,
                &mut train_rng,
                cursor.as_ref(),
                interval,
                &mut save_mid_train,
            )
            .map_err(|e| objective_error(e.to_string()))?;
    }

    // 2. latency predictor for the edge device over the tiny space
    let mut search_rng = StdRng::seed_from_u64(seed ^ 0xdead);
    if let Some(state) = resume.as_ref().and_then(|r| r.search_rng) {
        search_rng = StdRng::from_state(state);
    }
    let predictor = match resume.as_ref().and_then(|r| r.predictor_json.as_deref()) {
        Some(json) => {
            let snapshot: PredictorSnapshot =
                serde_json::from_str(json).map_err(|e| PipelineError::Ckpt {
                    detail: format!("invalid predictor snapshot in checkpoint: {e}"),
                })?;
            LatencyPredictor::from_snapshot(DeviceSpec::edge_xavier(), &space, snapshot).map_err(
                |e| PipelineError::Ckpt {
                    detail: e.to_string(),
                },
            )?
        }
        None => {
            let _span = hsconas_telemetry::span!("pipeline.calibrate");
            LatencyPredictor::calibrate(DeviceSpec::edge_xavier(), &space, 20, 2, &mut search_rng)?
        }
    };
    let predictor_json =
        match &store {
            Some(_) => Some(serde_json::to_string(&predictor.export()).map_err(|e| {
                PipelineError::Ckpt {
                    detail: format!("serializing predictor snapshot: {e}"),
                }
            })?),
            None => None,
        };
    if let Some(store) = &store {
        if resume_tag < TAG_CALIBRATED {
            let payload = PipelineCkpt {
                tag: TAG_CALIBRATED,
                trainer: Some(trainer.checkpoint()),
                cursor: None,
                predictor_json: predictor_json.clone(),
                search_rng: Some(search_rng.state()),
                stages: Vec::new(),
                ea: None,
            }
            .encode()?;
            store.save(CUR_CALIBRATED, &payload)?;
        }
    }

    // 3. progressive shrinking: each stage picks operators by *real*
    //    inherited-weight quality, then fine-tunes in the shrunk space at
    //    a reduced learning rate (the paper's 0.01-LR fine-tune). On
    //    resume the restricted space is rebuilt by replaying the
    //    checkpointed per-layer decisions.
    let mut completed: Vec<StageRecord> = resume.as_ref().map_or_else(Vec::new, |r| {
        if r.tag >= TAG_SHRINK_STAGE {
            r.stages.clone()
        } else {
            Vec::new()
        }
    });
    let mut current_space = space.clone();
    for record in &completed {
        for decision in &record.decisions {
            current_space = current_space.restrict_op(decision.layer, decision.chosen)?;
        }
    }
    let shrink_span =
        hsconas_telemetry::span!("pipeline.shrink", stages = config.shrink_stages.len());
    for (stage_idx, layers) in config
        .shrink_stages
        .iter()
        .enumerate()
        .skip(completed.len())
    {
        let stage = ProgressiveShrinking::new(ShrinkConfig {
            stages: vec![layers.clone()],
            samples_per_subspace: config.samples_per_subspace,
        });
        let result = {
            let mut objective = InheritedWeightObjective {
                trainer: &mut trainer,
                data: &data,
                predictor: &predictor,
                eval_batches: config.eval_batches,
                target_ms: config.target_ms,
                beta: config.beta,
            };
            stage.run(
                current_space.clone(),
                &mut objective,
                &mut search_rng,
                |_, _| Ok(()),
            )?
        };
        current_space = result.space;
        let mut record = result
            .stages
            .into_iter()
            .next()
            .expect("single-stage shrink yields one record");
        record.stage = stage_idx;
        completed.push(record);
        let mut ft_rng = SmallRng::new(seed ^ (stage_idx as u64 + 1));
        trainer
            .train_steps(
                &current_space,
                &data,
                config.fine_tune_steps,
                0.01,
                &mut ft_rng,
            )
            .map_err(|e| objective_error(e.to_string()))?;
        if let Some(store) = &store {
            let payload = PipelineCkpt {
                tag: TAG_SHRINK_STAGE,
                trainer: Some(trainer.checkpoint()),
                cursor: None,
                predictor_json: predictor_json.clone(),
                search_rng: Some(search_rng.state()),
                stages: completed.clone(),
                ea: None,
            }
            .encode()?;
            store.save(CUR_SHRINK_BASE + stage_idx as u64 + 1, &payload)?;
        }
    }
    shrink_span.close();

    // 4. evolutionary search with inherited weights, driven one generation
    //    at a time so a checkpoint lands after each. The trainer snapshot
    //    is taken once up front: the EA only *evaluates* (BatchNorm
    //    statistics are recalibrated per query and weights never change),
    //    so every generation shares it.
    let trainer_snapshot = store.as_ref().map(|_| trainer.checkpoint());
    let evolution = {
        let _span = hsconas_telemetry::span!("pipeline.search");
        let mut objective = InheritedWeightObjective {
            trainer: &mut trainer,
            data: &data,
            predictor: &predictor,
            eval_batches: config.eval_batches,
            target_ms: config.target_ms,
            beta: config.beta,
        };
        let mut search = EvolutionSearch::new(current_space.clone(), config.evolution);
        let _ea_span = hsconas_telemetry::span!(
            "ea.search",
            generations = config.evolution.generations,
            population = config.evolution.population,
            parents = config.evolution.parents
        );
        let save_generation = |state: &SearchState, rng: &StdRng| -> Result<(), PipelineError> {
            let Some(store) = &store else { return Ok(()) };
            let payload = PipelineCkpt {
                tag: TAG_EA_GEN,
                trainer: trainer_snapshot.clone(),
                cursor: None,
                predictor_json: predictor_json.clone(),
                search_rng: Some(rng.state()),
                stages: completed.clone(),
                ea: Some(state.clone()),
            }
            .encode()?;
            store.save(CUR_EA_BASE + state.completed_generations() as u64, &payload)?;
            Ok(())
        };
        let mut state = match resume.as_ref().and_then(|r| r.ea.clone()) {
            Some(state) => state,
            None => {
                let state = search.init_state(&mut objective, &mut search_rng)?;
                save_generation(&state, &search_rng)?;
                state
            }
        };
        while state.completed_generations() < config.evolution.generations {
            search.step_generation(&mut state, &mut objective, &mut search_rng)?;
            save_generation(&state, &search_rng)?;
        }
        search.finalize(&state)?
    };
    let inherited_accuracy = evolution.best_evaluation.accuracy / 100.0;

    // 5. materialize and train from scratch
    let mut scratch_rng = SmallRng::new(seed ^ 0xbeef);
    let _final_span = hsconas_telemetry::span!("pipeline.final_train", steps = config.final_steps);
    let mut subnet = build_subnet(space.skeleton(), &evolution.best_arch, &mut scratch_rng)
        .map_err(|e| objective_error(e.to_string()))?;
    let scratch = train_from_scratch(
        &mut subnet,
        &data,
        config.final_steps,
        8,
        0.08,
        &mut scratch_rng,
    )
    .map_err(|e| objective_error(e.to_string()))?;

    Ok(RealPipelineResult {
        shrunk_space: current_space,
        best_arch: evolution.best_arch,
        inherited_accuracy,
        from_scratch_accuracy: scratch.accuracy,
        latency_ms: evolution.best_evaluation.latency_ms,
    })
}

fn objective_error(detail: String) -> PipelineError {
    PipelineError::Evo(EvoError::Objective { detail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pipeline_completes_and_is_consistent() {
        let config = RealPipelineConfig::smoke_test();
        let result = run_real_pipeline(&config, 5).unwrap();
        // shrunk space fixed the configured layers
        assert_eq!(result.shrunk_space.fixed_layers().len(), 2);
        assert!(result.shrunk_space.contains(&result.best_arch));
        assert!((0.0..=1.0).contains(&result.inherited_accuracy));
        assert!((0.0..=1.0).contains(&result.from_scratch_accuracy));
        assert!(result.latency_ms > 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let config = RealPipelineConfig::smoke_test();
        let a = run_real_pipeline(&config, 9).unwrap();
        let b = run_real_pipeline(&config, 9).unwrap();
        assert_eq!(a.best_arch, b.best_arch);
        assert_eq!(a.from_scratch_accuracy, b.from_scratch_accuracy);
    }
}
