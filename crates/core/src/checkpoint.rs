//! Crash-safe checkpoint/resume plumbing for the long-running pipelines.
//!
//! This module bridges the generic [`hsconas_ckpt`] persistence layer
//! (atomic files, self-describing headers, checksums) and the concrete
//! pipeline state of this crate:
//!
//! * [`CheckpointOptions`] — where to write, whether to resume, retention.
//! * [`PipelineCkpt`] — the self-contained payload written at every
//!   pipeline boundary (each file alone is enough to resume; no chain of
//!   deltas), covering supernet weights + optimizer state, the mid-call
//!   training cursor, the calibrated latency-predictor snapshot, completed
//!   shrinking-stage records, the EA state, and the driving RNG streams.
//! * Config hashing — a checkpoint records a hash of the search
//!   space/configuration/seed it was produced under, and resume refuses a
//!   mismatch instead of silently continuing a different experiment.
//! * [`run_search_checkpointed`] — a per-generation checkpointing driver
//!   for a standalone evolutionary search over a memoized objective
//!   (including the memo-cache contents, so a resumed search does not
//!   re-evaluate architectures it already scored).
//!
//! ## What is deliberately *not* checkpointed
//!
//! * **BatchNorm running statistics** — `SupernetTrainer::evaluate`
//!   recalibrates them from scratch for every queried architecture, and
//!   training-mode forwards use batch statistics, so they carry no state
//!   across the boundaries where checkpoints are written.
//! * **The prefix-activation cache** — a pure accelerator; a resumed run
//!   starts it cold and produces bit-identical results.
//! * **The `TradeoffObjective` per-instance cache** — rebuilt on demand;
//!   surrogate evaluations are cheap and deterministic.

use std::path::{Path, PathBuf};

use crate::{PipelineConfig, PipelineError, RealPipelineConfig};
use hsconas_ckpt::{fnv1a, CheckpointStore, CkptError, Decoder, Encoder, Phase};
use hsconas_evo::{
    Evaluation, EvolutionSearch, GenerationStats, Individual, MemoObjective, Objective, ParetoEval,
    ParetoFrontier, ParetoIndividual, ParetoObjective, ParetoSearch, ParetoState, SearchResult,
    SearchState,
};
use hsconas_hwsim::DeviceSpec;
use hsconas_shrink::StageRecord;
use hsconas_space::{Arch, SearchSpace};
use hsconas_supernet::{StepRecord, TrainCursor, TrainerCheckpoint};
use rand::rngs::StdRng;

/// Cursor base for mid-call warm-training checkpoints
/// (`CUR_WARM_BASE + step_in_call`).
pub const CUR_WARM_BASE: u64 = 1_000_000;
/// Cursor of the post-calibration checkpoint.
pub const CUR_CALIBRATED: u64 = 2_000_000;
/// Cursor base for completed shrinking stages
/// (`CUR_SHRINK_BASE + stage_index + 1`).
pub const CUR_SHRINK_BASE: u64 = 3_000_000;
/// Cursor base for completed EA generations
/// (`CUR_EA_BASE + completed_generations`).
pub const CUR_EA_BASE: u64 = 4_000_000;

/// Payload tag: interrupted mid-call warm training.
pub const TAG_WARM: u8 = 1;
/// Payload tag: latency predictor calibrated.
pub const TAG_CALIBRATED: u8 = 2;
/// Payload tag: a shrinking stage (and its fine-tune) completed.
pub const TAG_SHRINK_STAGE: u8 = 3;
/// Payload tag: an EA generation completed.
pub const TAG_EA_GEN: u8 = 4;

/// Where and how to checkpoint a pipeline run.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory holding the checkpoint files.
    pub dir: PathBuf,
    /// Resume from the latest checkpoint in `dir` (errors if the latest
    /// file is invalid or was written under a different configuration;
    /// an empty directory starts fresh).
    pub resume: bool,
    /// Keep only the newest `keep_last` checkpoints (0 = keep all).
    pub keep_last: usize,
    /// Steps between mid-call checkpoints during supernet training
    /// (0 disables mid-call checkpoints; phase boundaries still write).
    pub train_interval: usize,
}

impl CheckpointOptions {
    /// Options with the defaults: no resume, keep the last 3 files,
    /// checkpoint training every 64 steps.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            resume: false,
            keep_last: 3,
            train_interval: 64,
        }
    }

    /// Sets the resume flag.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Sets the retention count (0 = keep all).
    #[must_use]
    pub fn keep_last(mut self, keep_last: usize) -> Self {
        self.keep_last = keep_last;
        self
    }

    /// Sets the mid-call training checkpoint interval (0 = boundaries only).
    #[must_use]
    pub fn train_interval(mut self, steps: usize) -> Self {
        self.train_interval = steps;
        self
    }
}

fn ckpt_err(detail: impl Into<String>) -> PipelineError {
    PipelineError::Ckpt {
        detail: detail.into(),
    }
}

/// The state captured at one pipeline boundary. Every field a later phase
/// needs is present, so a single file is sufficient to resume.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineCkpt {
    /// Which boundary this checkpoint was written at (`TAG_*`).
    pub tag: u8,
    /// Supernet trainer state (real-training pipeline only).
    pub trainer: Option<TrainerCheckpoint>,
    /// Mid-call training cursor (`TAG_WARM` only).
    pub cursor: Option<TrainCursor>,
    /// JSON-serialized [`hsconas_latency::PredictorSnapshot`].
    pub predictor_json: Option<String>,
    /// xoshiro256++ state of the search-driving [`StdRng`].
    pub search_rng: Option<[u64; 4]>,
    /// Completed shrinking stages, in order (replayed to rebuild the
    /// restricted space on resume).
    pub stages: Vec<StageRecord>,
    /// Evolutionary-search state (`TAG_EA_GEN` only).
    pub ea: Option<SearchState>,
}

impl PipelineCkpt {
    /// Serializes the checkpoint into a payload for
    /// [`CheckpointStore::save`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Ckpt`] if the stage records cannot be
    /// serialized.
    pub fn encode(&self) -> Result<Vec<u8>, PipelineError> {
        let stages_json = serde_json::to_string(&self.stages)
            .map_err(|e| ckpt_err(format!("serializing shrink stage records: {e}")))?;
        let mut e = Encoder::new();
        e.put_u8(self.tag);
        put_opt(&mut e, self.trainer.as_ref(), put_trainer);
        put_opt(&mut e, self.cursor.as_ref(), put_cursor);
        put_opt(&mut e, self.predictor_json.as_deref(), |e, s| e.put_str(s));
        put_opt(&mut e, self.search_rng.as_ref(), |e, s| e.put_u64_slice(s));
        e.put_str(&stages_json);
        put_opt(&mut e, self.ea.as_ref(), put_search_state);
        Ok(e.finish())
    }

    /// Deserializes a payload produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Ckpt`] on any structural mismatch
    /// (truncation, trailing bytes, malformed embedded JSON).
    pub fn decode(payload: &[u8]) -> Result<Self, PipelineError> {
        let mut d = Decoder::new(payload);
        let ckpt = decode_inner(&mut d).map_err(|e| ckpt_err(e.to_string()))?;
        d.expect_end().map_err(|e| ckpt_err(e.to_string()))?;
        Ok(ckpt)
    }
}

fn decode_inner(d: &mut Decoder<'_>) -> Result<PipelineCkpt, CkptError> {
    let tag = d.get_u8()?;
    let trainer = get_opt(d, get_trainer)?;
    let cursor = get_opt(d, get_cursor)?;
    let predictor_json = get_opt(d, |d| d.get_str())?;
    let search_rng = get_opt(d, get_rng4)?;
    let stages_json = d.get_str()?;
    let stages: Vec<StageRecord> = serde_json::from_str(&stages_json)
        .map_err(|e| CkptError::corrupt(format!("malformed stage records: {e}")))?;
    let ea = get_opt(d, get_search_state)?;
    Ok(PipelineCkpt {
        tag,
        trainer,
        cursor,
        predictor_json,
        search_rng,
        stages,
        ea,
    })
}

fn put_opt<T: ?Sized>(e: &mut Encoder, v: Option<&T>, put: impl FnOnce(&mut Encoder, &T)) {
    match v {
        Some(v) => {
            e.put_bool(true);
            put(e, v);
        }
        None => e.put_bool(false),
    }
}

fn get_opt<T>(
    d: &mut Decoder<'_>,
    get: impl FnOnce(&mut Decoder<'_>) -> Result<T, CkptError>,
) -> Result<Option<T>, CkptError> {
    if d.get_bool()? {
        Ok(Some(get(d)?))
    } else {
        Ok(None)
    }
}

fn put_trainer(e: &mut Encoder, t: &TrainerCheckpoint) {
    e.put_usize(t.params.len());
    for p in &t.params {
        e.put_f32_slice(p);
    }
    e.put_usize(t.velocities.len());
    for (shape, values) in &t.velocities {
        for d in shape {
            e.put_usize(*d);
        }
        e.put_f32_slice(values);
    }
    e.put_usize(t.steps_done);
    e.put_usize(t.history.len());
    for r in &t.history {
        e.put_usize(r.step);
        e.put_f32(r.loss);
        e.put_f32(r.lr);
    }
}

fn get_trainer(d: &mut Decoder<'_>) -> Result<TrainerCheckpoint, CkptError> {
    let n_params = d.get_usize()?;
    let mut params = Vec::with_capacity(n_params.min(d.remaining()));
    for _ in 0..n_params {
        params.push(d.get_f32_vec()?);
    }
    let n_vel = d.get_usize()?;
    let mut velocities = Vec::with_capacity(n_vel.min(d.remaining()));
    for _ in 0..n_vel {
        let mut shape = [0usize; 4];
        for s in &mut shape {
            *s = d.get_usize()?;
        }
        velocities.push((shape, d.get_f32_vec()?));
    }
    let steps_done = d.get_usize()?;
    let n_hist = d.get_usize()?;
    let mut history = Vec::with_capacity(n_hist.min(d.remaining()));
    for _ in 0..n_hist {
        history.push(StepRecord {
            step: d.get_usize()?,
            loss: d.get_f32()?,
            lr: d.get_f32()?,
        });
    }
    Ok(TrainerCheckpoint {
        params,
        velocities,
        steps_done,
        history,
    })
}

fn put_cursor(e: &mut Encoder, c: &TrainCursor) {
    e.put_u64(c.step_in_call);
    e.put_u64_slice(&c.arch_rng);
    e.put_u64(c.data_rng_state);
    put_opt(e, c.data_rng_spare.as_ref(), |e, v| e.put_u64(*v));
}

fn get_cursor(d: &mut Decoder<'_>) -> Result<TrainCursor, CkptError> {
    Ok(TrainCursor {
        step_in_call: d.get_u64()?,
        arch_rng: get_rng4(d)?,
        data_rng_state: d.get_u64()?,
        data_rng_spare: get_opt(d, |d| d.get_u64())?,
    })
}

fn get_rng4(d: &mut Decoder<'_>) -> Result<[u64; 4], CkptError> {
    let v = d.get_u64_vec()?;
    <[u64; 4]>::try_from(v)
        .map_err(|v| CkptError::corrupt(format!("rng state has {} words, expected 4", v.len())))
}

fn put_evaluation(e: &mut Encoder, ev: &Evaluation) {
    e.put_f64(ev.score);
    e.put_f64(ev.accuracy);
    e.put_f64(ev.latency_ms);
}

fn get_evaluation(d: &mut Decoder<'_>) -> Result<Evaluation, CkptError> {
    Ok(Evaluation {
        score: d.get_f64()?,
        accuracy: d.get_f64()?,
        latency_ms: d.get_f64()?,
    })
}

fn put_arch(e: &mut Encoder, arch: &Arch) {
    let encoded: Vec<u64> = arch.encode().iter().map(|&v| v as u64).collect();
    e.put_u64_slice(&encoded);
}

fn get_arch(d: &mut Decoder<'_>) -> Result<Arch, CkptError> {
    let encoded: Vec<usize> = d.get_u64_vec()?.iter().map(|&v| v as usize).collect();
    Arch::decode(&encoded).map_err(|e| CkptError::corrupt(format!("malformed genome: {e}")))
}

fn put_search_state(e: &mut Encoder, state: &SearchState) {
    e.put_usize(state.history.len());
    for gen in &state.history {
        e.put_usize(gen.generation);
        e.put_usize(gen.individuals.len());
        for ind in &gen.individuals {
            put_arch(e, &ind.arch);
            put_evaluation(e, &ind.evaluation);
        }
    }
}

fn get_search_state(d: &mut Decoder<'_>) -> Result<SearchState, CkptError> {
    let n_gens = d.get_usize()?;
    let mut history = Vec::with_capacity(n_gens.min(d.remaining()));
    for _ in 0..n_gens {
        let generation = d.get_usize()?;
        let n_ind = d.get_usize()?;
        let mut individuals = Vec::with_capacity(n_ind.min(d.remaining()));
        for _ in 0..n_ind {
            individuals.push(Individual {
                arch: get_arch(d)?,
                evaluation: get_evaluation(d)?,
            });
        }
        history.push(GenerationStats {
            generation,
            individuals,
        });
    }
    Ok(SearchState { history })
}

/// Hash of everything that determines a real-training pipeline run's
/// results. A checkpoint written under one `(config, seed)` refuses to
/// resume under another.
pub fn real_config_hash(config: &RealPipelineConfig, seed: u64) -> u64 {
    let mut e = Encoder::new();
    e.put_str("real-pipeline-v1");
    e.put_usize(config.classes);
    e.put_usize(config.warm_steps);
    e.put_usize(config.fine_tune_steps);
    e.put_usize(config.final_steps);
    e.put_usize(config.shrink_stages.len());
    for stage in &config.shrink_stages {
        let layers: Vec<u64> = stage.iter().map(|&l| l as u64).collect();
        e.put_u64_slice(&layers);
    }
    e.put_usize(config.samples_per_subspace);
    e.put_usize(config.eval_batches);
    put_evolution_config(&mut e, &config.evolution);
    e.put_f64(config.target_ms);
    e.put_f64(config.beta);
    e.put_u64(seed);
    fnv1a(&e.finish())
}

/// Hash identifying a surrogate-pipeline run: the search space, the target
/// device, the latency constraint, and the pipeline configuration.
///
/// # Errors
///
/// Returns [`PipelineError::Ckpt`] if the space cannot be serialized.
pub fn surrogate_config_hash(
    space: &SearchSpace,
    device: &DeviceSpec,
    target_ms: f64,
    config: &PipelineConfig,
) -> Result<u64, PipelineError> {
    let space_json = serde_json::to_string(space)
        .map_err(|e| ckpt_err(format!("serializing search space: {e}")))?;
    let mut e = Encoder::new();
    e.put_str("surrogate-pipeline-v1");
    e.put_str(&space_json);
    e.put_str(&device.name);
    e.put_f64(target_ms);
    e.put_usize(config.calibration_archs);
    e.put_usize(config.calibration_repeats);
    e.put_f64(config.beta);
    e.put_bool(config.shrink);
    e.put_usize(config.shrink_config.stages.len());
    for stage in &config.shrink_config.stages {
        let layers: Vec<u64> = stage.iter().map(|&l| l as u64).collect();
        e.put_u64_slice(&layers);
    }
    e.put_usize(config.shrink_config.samples_per_subspace);
    put_evolution_config(&mut e, &config.evolution);
    Ok(fnv1a(&e.finish()))
}

fn put_evolution_config(e: &mut Encoder, config: &hsconas_evo::EvolutionConfig) {
    e.put_usize(config.generations);
    e.put_usize(config.population);
    e.put_usize(config.parents);
    e.put_f64(config.crossover_prob);
    e.put_f64(config.mutation_prob);
    e.put_f64(config.gene_mutation_rate);
}

/// Hash identifying a standalone checkpointed EA run (space + EA config).
///
/// # Errors
///
/// Returns [`PipelineError::Ckpt`] if the space cannot be serialized.
pub fn search_config_hash(search: &EvolutionSearch) -> Result<u64, PipelineError> {
    let space_json = serde_json::to_string(search.space())
        .map_err(|e| ckpt_err(format!("serializing search space: {e}")))?;
    let mut e = Encoder::new();
    e.put_str("ea-search-v1");
    e.put_str(&space_json);
    put_evolution_config(&mut e, search.config());
    Ok(fnv1a(&e.finish()))
}

fn encode_search_payload(
    state: &SearchState,
    rng_state: [u64; 4],
    memo: &[(u64, Evaluation)],
) -> Vec<u8> {
    let mut e = Encoder::new();
    put_search_state(&mut e, state);
    e.put_u64_slice(&rng_state);
    e.put_usize(memo.len());
    for (fingerprint, evaluation) in memo {
        e.put_u64(*fingerprint);
        put_evaluation(&mut e, evaluation);
    }
    e.finish()
}

type SearchPayload = (SearchState, [u64; 4], Vec<(u64, Evaluation)>);

fn decode_search_payload(payload: &[u8]) -> Result<SearchPayload, PipelineError> {
    let inner = |d: &mut Decoder<'_>| -> Result<SearchPayload, CkptError> {
        let state = get_search_state(d)?;
        let rng_state = get_rng4(d)?;
        let n_memo = d.get_usize()?;
        let mut memo = Vec::with_capacity(n_memo.min(d.remaining()));
        for _ in 0..n_memo {
            let fingerprint = d.get_u64()?;
            memo.push((fingerprint, get_evaluation(d)?));
        }
        Ok((state, rng_state, memo))
    };
    let mut d = Decoder::new(payload);
    let decoded = inner(&mut d).map_err(|e| ckpt_err(e.to_string()))?;
    d.expect_end().map_err(|e| ckpt_err(e.to_string()))?;
    Ok(decoded)
}

/// Runs (or resumes) an evolutionary search with a checkpoint after every
/// generation: the full [`SearchState`], the driving RNG's state, and the
/// memo-cache contents, so a resumed search re-evaluates nothing and
/// continues bit-identically — at any worker-thread count of the wrapped
/// objective.
///
/// # Errors
///
/// Returns [`PipelineError`] on objective failures or checkpoint I/O
/// failures; resume fails loudly on a corrupt latest checkpoint or a
/// configuration mismatch.
pub fn run_search_checkpointed<O: Objective>(
    search: &mut EvolutionSearch,
    objective: &mut MemoObjective<O>,
    rng: &mut StdRng,
    opts: &CheckpointOptions,
) -> Result<SearchResult, PipelineError> {
    let generations = search.config().generations;
    let store = CheckpointStore::open(
        &opts.dir,
        Phase::Search,
        search_config_hash(search)?,
        opts.keep_last,
    )?;
    let resume = if opts.resume {
        store.load_latest()?
    } else {
        None
    };
    let _ea_span = hsconas_telemetry::span!(
        "ea.search",
        generations = generations,
        population = search.config().population,
        parents = search.config().parents
    );
    let mut state = match resume {
        Some((_, payload)) => {
            let (state, rng_state, memo) = decode_search_payload(&payload)?;
            objective.import_cache(memo);
            *rng = StdRng::from_state(rng_state);
            state
        }
        None => {
            let state = search.init_state(objective, rng)?;
            save_generation(&store, &state, rng, objective)?;
            state
        }
    };
    while state.completed_generations() < generations {
        search.step_generation(&mut state, objective, rng)?;
        save_generation(&store, &state, rng, objective)?;
    }
    search.finalize(&state).map_err(Into::into)
}

fn save_generation<O: Objective>(
    store: &CheckpointStore,
    state: &SearchState,
    rng: &StdRng,
    objective: &MemoObjective<O>,
) -> Result<(), PipelineError> {
    let payload = encode_search_payload(state, rng.state(), &objective.export_cache());
    store
        .save(state.completed_generations() as u64, &payload)
        .map_err(Into::into)
        .map(|_| ())
}

fn put_pareto_eval(e: &mut Encoder, ev: &ParetoEval) {
    e.put_f64(ev.accuracy);
    e.put_usize(ev.latencies_ms.len());
    for &lat in &ev.latencies_ms {
        e.put_f64(lat);
    }
}

fn get_pareto_eval(d: &mut Decoder<'_>) -> Result<ParetoEval, CkptError> {
    let accuracy = d.get_f64()?;
    let n = d.get_usize()?;
    let mut latencies_ms = Vec::with_capacity(n.min(d.remaining()));
    for _ in 0..n {
        latencies_ms.push(d.get_f64()?);
    }
    Ok(ParetoEval {
        accuracy,
        latencies_ms,
    })
}

fn put_pareto_individuals(e: &mut Encoder, individuals: &[ParetoIndividual]) {
    e.put_usize(individuals.len());
    for ind in individuals {
        put_arch(e, &ind.arch);
        put_pareto_eval(e, &ind.eval);
    }
}

fn get_pareto_individuals(d: &mut Decoder<'_>) -> Result<Vec<ParetoIndividual>, CkptError> {
    let n = d.get_usize()?;
    let mut individuals = Vec::with_capacity(n.min(d.remaining()));
    for _ in 0..n {
        individuals.push(ParetoIndividual {
            arch: get_arch(d)?,
            eval: get_pareto_eval(d)?,
        });
    }
    Ok(individuals)
}

fn encode_pareto_payload(state: &ParetoState, rng_state: [u64; 4]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_usize(state.generation);
    e.put_u64(state.evaluated);
    put_pareto_individuals(&mut e, &state.population);
    put_pareto_individuals(&mut e, &state.archive);
    e.put_u64_slice(&rng_state);
    e.finish()
}

fn decode_pareto_payload(payload: &[u8]) -> Result<(ParetoState, [u64; 4]), PipelineError> {
    let inner = |d: &mut Decoder<'_>| -> Result<(ParetoState, [u64; 4]), CkptError> {
        let generation = d.get_usize()?;
        let evaluated = d.get_u64()?;
        let population = get_pareto_individuals(d)?;
        let archive = get_pareto_individuals(d)?;
        let rng_state = get_rng4(d)?;
        Ok((
            ParetoState {
                generation,
                population,
                archive,
                evaluated,
            },
            rng_state,
        ))
    };
    let mut d = Decoder::new(payload);
    let decoded = inner(&mut d).map_err(|e| ckpt_err(e.to_string()))?;
    d.expect_end().map_err(|e| ckpt_err(e.to_string()))?;
    Ok(decoded)
}

/// Hash identifying a checkpointed multi-device Pareto search: the space,
/// the EA configuration, and the canonical device set the objective
/// vector is built over.
///
/// # Errors
///
/// Returns [`PipelineError::Ckpt`] if the space cannot be serialized.
pub fn pareto_config_hash(search: &ParetoSearch, devices: &[String]) -> Result<u64, PipelineError> {
    let space_json = serde_json::to_string(search.space())
        .map_err(|e| ckpt_err(format!("serializing search space: {e}")))?;
    let mut e = Encoder::new();
    e.put_str("pareto-search-v1");
    e.put_str(&space_json);
    put_evolution_config(&mut e, search.config());
    e.put_usize(devices.len());
    for device in devices {
        e.put_str(device);
    }
    Ok(fnv1a(&e.finish()))
}

/// Runs (or resumes) a multi-device Pareto search with a checkpoint after
/// the initial population and after every generation: the full
/// [`ParetoState`] (population, archive, counters) and the driving RNG's
/// state. A run killed at any point and resumed from its latest file
/// produces the exact frontier the uninterrupted run produces —
/// evaluations are deterministic, so the re-evaluated prefix is
/// bit-identical.
///
/// # Errors
///
/// Returns [`PipelineError`] on objective failures or checkpoint I/O
/// failures; resume fails loudly on a corrupt latest checkpoint or a
/// configuration mismatch (different space, EA config, or device set).
pub fn run_pareto_checkpointed(
    search: &ParetoSearch,
    objective: &mut ParetoObjective,
    rng: &mut StdRng,
    opts: &CheckpointOptions,
) -> Result<ParetoFrontier, PipelineError> {
    let generations = search.config().generations;
    let store = CheckpointStore::open(
        &opts.dir,
        Phase::Search,
        pareto_config_hash(search, objective.devices())?,
        opts.keep_last,
    )?;
    let resume = if opts.resume {
        store.load_latest()?
    } else {
        None
    };
    let _span = hsconas_telemetry::span!(
        "pareto.search.checkpointed",
        generations = generations,
        devices = objective.devices().len()
    );
    let mut state = match resume {
        Some((_, payload)) => {
            let (state, rng_state) = decode_pareto_payload(&payload)?;
            *rng = StdRng::from_state(rng_state);
            state
        }
        None => {
            let state = search.init_state(objective, rng)?;
            save_pareto_generation(&store, &state, rng)?;
            state
        }
    };
    while state.generation < generations {
        search.step_generation(&mut state, objective, rng)?;
        save_pareto_generation(&store, &state, rng)?;
    }
    Ok(search.finalize(&state, objective))
}

fn save_pareto_generation(
    store: &CheckpointStore,
    state: &ParetoState,
    rng: &StdRng,
) -> Result<(), PipelineError> {
    let payload = encode_pareto_payload(state, rng.state());
    store
        .save(state.generation as u64, &payload)
        .map_err(Into::into)
        .map(|_| ())
}

/// Pretty-prints a checkpoint file's header (the `hsconas ckpt inspect`
/// subcommand): format version, phase, cursor, config hash, payload size,
/// and checksum. Fails on a missing file, a foreign format, or a payload
/// that does not match its checksum.
///
/// # Errors
///
/// Returns a human-readable error string (CLI-facing).
pub fn inspect_checkpoint(path: &Path) -> Result<String, String> {
    let header = hsconas_ckpt::inspect(path).map_err(|e| e.to_string())?;
    let phase = header
        .phase()
        .map(|p| p.name().to_string())
        .unwrap_or_else(|| format!("unknown({})", header.phase_tag));
    Ok(format!(
        "file         : {}\n\
         format       : HSCK v{}\n\
         phase        : {phase}\n\
         cursor       : {}\n\
         config hash  : {:#018x}\n\
         payload      : {} bytes\n\
         checksum     : {:#018x} (verified)",
        path.display(),
        header.version,
        header.cursor,
        header.config_hash,
        header.payload_len,
        header.checksum,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_state() -> SearchState {
        let space = SearchSpace::tiny(4);
        let mut rng = StdRng::seed_from_u64(7);
        let individuals: Vec<Individual> = space
            .sample_n(3, &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, arch)| Individual {
                arch,
                evaluation: Evaluation {
                    score: 1.5 - i as f64,
                    accuracy: 70.0 + i as f64,
                    latency_ms: 20.0 * (i + 1) as f64,
                },
            })
            .collect();
        SearchState {
            history: vec![GenerationStats {
                generation: 0,
                individuals,
            }],
        }
    }

    #[test]
    fn pipeline_ckpt_roundtrips() {
        let ckpt = PipelineCkpt {
            tag: TAG_EA_GEN,
            trainer: Some(TrainerCheckpoint {
                params: vec![vec![1.0, -2.5], vec![0.0]],
                velocities: vec![([1, 2, 3, 4], vec![0.25; 24])],
                steps_done: 17,
                history: vec![StepRecord {
                    step: 16,
                    loss: 0.75,
                    lr: 0.05,
                }],
            }),
            cursor: Some(TrainCursor {
                step_in_call: 9,
                arch_rng: [1, 2, 3, 4],
                data_rng_state: 42,
                data_rng_spare: Some(f64::to_bits(-0.5)),
            }),
            predictor_json: Some("{\"fake\":true}".into()),
            search_rng: Some([5, 6, 7, 8]),
            stages: Vec::new(),
            ea: Some(sample_state()),
        };
        let decoded = PipelineCkpt::decode(&ckpt.encode().unwrap()).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn minimal_ckpt_roundtrips() {
        let ckpt = PipelineCkpt {
            tag: TAG_CALIBRATED,
            trainer: None,
            cursor: None,
            predictor_json: None,
            search_rng: None,
            stages: Vec::new(),
            ea: None,
        };
        let decoded = PipelineCkpt::decode(&ckpt.encode().unwrap()).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let ckpt = PipelineCkpt {
            tag: TAG_CALIBRATED,
            trainer: None,
            cursor: None,
            predictor_json: None,
            search_rng: None,
            stages: Vec::new(),
            ea: None,
        };
        let mut payload = ckpt.encode().unwrap();
        payload.push(0);
        assert!(PipelineCkpt::decode(&payload).is_err());
    }

    #[test]
    fn search_payload_roundtrips() {
        let state = sample_state();
        let memo = vec![
            (
                3u64,
                Evaluation {
                    score: 1.0,
                    accuracy: 71.0,
                    latency_ms: 33.0,
                },
            ),
            (
                9u64,
                Evaluation {
                    score: 2.0,
                    accuracy: 72.0,
                    latency_ms: 34.0,
                },
            ),
        ];
        let payload = encode_search_payload(&state, [9, 8, 7, 6], &memo);
        let (s2, rng2, memo2) = decode_search_payload(&payload).unwrap();
        assert_eq!(s2, state);
        assert_eq!(rng2, [9, 8, 7, 6]);
        assert_eq!(memo2, memo);
    }

    #[test]
    fn pareto_payload_roundtrips() {
        let space = SearchSpace::tiny(4);
        let mut rng = StdRng::seed_from_u64(3);
        let individuals: Vec<ParetoIndividual> = space
            .sample_n(3, &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, arch)| ParetoIndividual {
                arch,
                eval: ParetoEval {
                    accuracy: 70.0 + i as f64,
                    latencies_ms: vec![10.0 + i as f64, 20.0 - i as f64],
                },
            })
            .collect();
        let state = ParetoState {
            generation: 2,
            population: individuals.clone(),
            archive: individuals[..1].to_vec(),
            evaluated: 17,
        };
        let payload = encode_pareto_payload(&state, [4, 3, 2, 1]);
        let (s2, rng2) = decode_pareto_payload(&payload).unwrap();
        assert_eq!(s2, state);
        assert_eq!(rng2, [4, 3, 2, 1]);

        let mut bad = payload.clone();
        bad.push(7);
        assert!(decode_pareto_payload(&bad).is_err(), "trailing bytes");
    }

    #[test]
    fn pareto_hash_is_sensitive_to_the_device_set() {
        let search = ParetoSearch::new(SearchSpace::tiny(4), Default::default());
        let two = ["cpu".to_string(), "edge".to_string()];
        let h = pareto_config_hash(&search, &two).unwrap();
        assert_ne!(
            h,
            pareto_config_hash(&search, &two[..1]).unwrap(),
            "device set must matter"
        );
        assert_eq!(h, pareto_config_hash(&search, &two).unwrap());
    }

    #[test]
    fn config_hash_is_sensitive_to_every_knob() {
        let base = RealPipelineConfig::smoke_test();
        let h = real_config_hash(&base, 5);
        assert_ne!(h, real_config_hash(&base, 6), "seed must matter");
        let mut warm = base.clone();
        warm.warm_steps += 1;
        assert_ne!(h, real_config_hash(&warm, 5));
        let mut evo = base.clone();
        evo.evolution.generations += 1;
        assert_ne!(h, real_config_hash(&evo, 5));
        assert_eq!(h, real_config_hash(&base.clone(), 5), "hash is stable");
    }

    #[test]
    fn surrogate_hash_distinguishes_devices_and_targets() {
        let space = SearchSpace::tiny(4);
        let config = PipelineConfig::fast_test();
        let h = surrogate_config_hash(&space, &DeviceSpec::edge_xavier(), 34.0, &config).unwrap();
        let gpu = surrogate_config_hash(&space, &DeviceSpec::gpu_gv100(), 34.0, &config).unwrap();
        let target =
            surrogate_config_hash(&space, &DeviceSpec::edge_xavier(), 24.0, &config).unwrap();
        assert_ne!(h, gpu);
        assert_ne!(h, target);
    }
}
