//! End-to-end guarantees of the compile pipeline: bit-identical inference
//! against the masked supernet reference, artifact round-tripping, strict
//! rejection of damaged artifacts, and genuinely smaller specialized
//! weights.

use hsconas_graph::{artifact, compare, compile, execute, CompileOptions, GraphOp};
use hsconas_space::{Arch, ChannelScale, Gene, NetworkSkeleton, OpKind};
use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::Tensor;

/// A skeleton small enough for fast tests but with both stride-1 and
/// stride-2 searchable slots (the tiny() preset is all stride-2).
fn skeleton() -> NetworkSkeleton {
    NetworkSkeleton {
        input_resolution: 16,
        input_channels: 3,
        stem_channels: 8,
        stage_channels: [16, 32, 32, 32],
        stage_depths: [2, 2, 0, 0],
        head_channels: 64,
        num_classes: 10,
    }
}

fn gene(op: OpKind, tenths: u8) -> Gene {
    Gene::new(op, ChannelScale::from_tenths(tenths).unwrap())
}

/// Three fixed genomes covering: full width, narrow scales with a
/// fully-pruned right branch (const-folded), and both skip kinds.
fn genomes() -> Vec<Arch> {
    vec![
        // widest: no specialization beyond the structural rewrites
        Arch::widest(4),
        // narrow: layer0 keep=6 < half(16) ⇒ layer1's right branch sees
        // zero live channels and collapses to constants
        Arch::new(vec![
            gene(OpKind::Xception, 4),
            gene(OpKind::Shuffle7, 4),
            gene(OpKind::Shuffle5, 6),
            gene(OpKind::Shuffle3, 10),
        ]),
        // skip-heavy: stride-2 downsample skip and stride-1 identity skip
        Arch::new(vec![
            gene(OpKind::Skip, 10),
            gene(OpKind::Skip, 4),
            gene(OpKind::Shuffle5, 2),
            gene(OpKind::Xception, 10),
        ]),
    ]
}

fn input(seed: u64, batch: usize, res: usize) -> Tensor {
    let mut rng = SmallRng::new(seed);
    Tensor::randn([batch, 3, res, res], 1.0, &mut rng)
}

#[test]
fn compiled_graph_matches_masked_supernet_bitwise() {
    let sk = skeleton();
    let opts = CompileOptions::default();
    for (i, arch) in genomes().into_iter().enumerate() {
        let (art, stats) = compile(&sk, &arch, &opts).unwrap();
        let mut net =
            hsconas_graph::build_reference(&sk, &arch, opts.seed, opts.warmup_steps).unwrap();
        let x = input(11 + i as u64, 2, sk.input_resolution);
        let want = net.forward(&x, &arch, false).unwrap();
        let got = execute(&art.graph, &x).unwrap();
        assert_eq!(
            want.shape(),
            got.shape(),
            "genome {i}: logits shape diverged"
        );
        assert_eq!(want.data(), got.data(), "genome {i}: logits bits diverged");
        assert!(stats.fused > 0, "genome {i}: no conv+bn fusions happened");
        assert!(stats.removed > 0, "genome {i}: sweep removed nothing");
    }
}

#[test]
fn compare_reports_zero_error_at_every_boundary() {
    let sk = skeleton();
    for (i, arch) in genomes().into_iter().enumerate() {
        let (art, _) = compile(&sk, &arch, &CompileOptions::default()).unwrap();
        let x = input(23 + i as u64, 2, sk.input_resolution);
        let report = compare(&art, &x).unwrap();
        assert_eq!(report.layers.len(), 6, "stem + 4 layers + logits");
        for row in &report.layers {
            assert_eq!(
                row.max_abs_err, 0.0,
                "genome {i} boundary {} has live-prefix error",
                row.label
            );
            assert_eq!(
                row.ref_tail_max, 0.0,
                "genome {i} boundary {} dropped nonzero reference channels",
                row.label
            );
            assert!(row.physical_c <= row.logical_c);
        }
        assert_eq!(report.max_abs_err, 0.0, "genome {i}");
    }
}

#[test]
fn execution_is_repeatable() {
    let sk = skeleton();
    let arch = genomes().remove(1);
    let (art, _) = compile(&sk, &arch, &CompileOptions::default()).unwrap();
    let x = input(5, 3, sk.input_resolution);
    let a = execute(&art.graph, &x).unwrap();
    let b = execute(&art.graph, &x).unwrap();
    assert_eq!(a.data(), b.data(), "back-to-back runs diverged");
}

#[test]
fn artifact_round_trips_bitwise() {
    let sk = skeleton();
    for arch in genomes() {
        let (art, _) = compile(&sk, &arch, &CompileOptions::default()).unwrap();
        let bytes = artifact::to_bytes(&art);
        let loaded = artifact::from_bytes(&bytes).unwrap();
        assert_eq!(art.meta, loaded.meta);
        assert_eq!(art.graph, loaded.graph);
        // and a re-serialization is byte-stable
        assert_eq!(bytes, artifact::to_bytes(&loaded));
        // the loaded graph infers the same bits
        let x = input(3, 1, sk.input_resolution);
        assert_eq!(
            execute(&art.graph, &x).unwrap().data(),
            execute(&loaded.graph, &x).unwrap().data()
        );
    }
}

#[test]
fn artifact_rejects_damage_loudly() {
    let sk = skeleton();
    let arch = genomes().remove(0);
    let (art, _) = compile(&sk, &arch, &CompileOptions::default()).unwrap();
    let bytes = artifact::to_bytes(&art);

    // wrong magic
    let mut bad = bytes.clone();
    bad[0] = b'X';
    let err = artifact::from_bytes(&bad).unwrap_err().to_string();
    assert!(err.contains("magic"), "got: {err}");

    // foreign format version
    let mut bad = bytes.clone();
    bad[4..8].copy_from_slice(&99u32.to_le_bytes());
    let err = artifact::from_bytes(&bad).unwrap_err().to_string();
    assert!(err.contains("version 99"), "got: {err}");

    // truncation (header promises more payload than the file has)
    let err = artifact::from_bytes(&bytes[..bytes.len() - 7])
        .unwrap_err()
        .to_string();
    assert!(err.contains("truncated"), "got: {err}");

    // a header shorter than the envelope
    let err = artifact::from_bytes(&bytes[..10]).unwrap_err().to_string();
    assert!(err.contains("header"), "got: {err}");

    // single bit flip deep in the payload
    let mut bad = bytes.clone();
    let mid = 24 + (bytes.len() - 24) / 2;
    bad[mid] ^= 0x01;
    let err = artifact::from_bytes(&bad).unwrap_err().to_string();
    assert!(err.contains("checksum"), "got: {err}");
}

#[test]
fn specialization_shrinks_weights_and_gemms() {
    let sk = skeleton();
    let opts = CompileOptions::default();
    let (wide, _) = compile(&sk, &Arch::widest(4), &opts).unwrap();
    let narrow_arch = genomes().remove(1);
    let (narrow, stats) = compile(&sk, &narrow_arch, &opts).unwrap();
    assert!(stats.specialized > 0, "narrow genome specialized nothing");
    assert!(stats.folded > 0, "no constants were folded");
    let wide_elems = wide.graph.const_elements();
    let narrow_elems = narrow.graph.const_elements();
    assert!(
        narrow_elems < wide_elems,
        "specialized weights not smaller: {narrow_elems} vs {wide_elems}"
    );
    // at least one conv physically shrank below its slot's full width,
    // while still pinning the full-width reference GEMM shape
    let mut shrunk = 0;
    for node in &narrow.graph.nodes {
        if let GraphOp::FusedConvBn {
            params,
            ref_gemm: Some((m, k, _)),
            ..
        } = &node.op
        {
            let full_k = k / (params.kernel * params.kernel) * (params.kernel * params.kernel);
            let _ = full_k;
            if params.groups == 1
                && (params.c_out < *m || params.c_in * params.kernel * params.kernel < *k)
            {
                shrunk += 1;
            }
        }
    }
    assert!(shrunk > 0, "no conv GEMM operand physically shrank");
}
