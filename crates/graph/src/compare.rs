//! Layer-by-layer diffing of a compiled artifact against its reference
//! supernet.
//!
//! The reference forward is decomposed with `forward_stem` /
//! `forward_layer` / `forward_head` — the exact operation sequence of a
//! plain `forward` — and each boundary activation is compared with the
//! graph checkpoint of the same label. Because specialization removes
//! masked channels *physically*, a graph activation can be narrower than
//! the reference's: the live prefix is diffed elementwise, and the
//! reference's tail (the channels the graph no longer carries) is checked
//! to be exactly zero — a nonzero tail would mean specialization dropped
//! live data and is reported as error mass, not silently ignored.

use hsconas_space::Arch;
use hsconas_supernet::Supernet;
use hsconas_tensor::Tensor;

use crate::artifact::Artifact;
use crate::compile::build_reference;
use crate::exec::execute_traced;
use crate::GraphError;

/// One boundary's comparison result.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Boundary label (`"stem"`, `"layer4"`, `"logits"`).
    pub label: String,
    /// Reference (logical) channel width.
    pub logical_c: usize,
    /// Graph (physical) channel width.
    pub physical_c: usize,
    /// Max elementwise |reference − graph| over the live prefix.
    pub max_abs_err: f32,
    /// Max |reference| over channels the graph no longer carries
    /// (must be exactly 0 for a correct specialization).
    pub ref_tail_max: f32,
}

/// Full comparison result.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-boundary rows in network order.
    pub layers: Vec<LayerReport>,
    /// Max over all rows of `max(max_abs_err, ref_tail_max)`.
    pub max_abs_err: f32,
}

fn cmp_err(detail: String) -> GraphError {
    GraphError::Exec { detail }
}

fn diff(reference: &Tensor, got: &Tensor) -> Result<(f32, f32), GraphError> {
    let rs = reference.shape();
    let gs = got.shape();
    if rs.n != gs.n || rs.h != gs.h || rs.w != gs.w || gs.c > rs.c {
        return Err(cmp_err(format!(
            "boundary shapes incompatible: reference {:?} vs graph {:?}",
            rs.to_vec(),
            gs.to_vec()
        )));
    }
    let mut max_err = 0.0f32;
    let mut tail_max = 0.0f32;
    for n in 0..rs.n {
        for c in 0..rs.c {
            for h in 0..rs.h {
                for w in 0..rs.w {
                    let r = reference.at(n, c, h, w);
                    if c < gs.c {
                        max_err = max_err.max((r - got.at(n, c, h, w)).abs());
                    } else {
                        tail_max = tail_max.max(r.abs());
                    }
                }
            }
        }
    }
    Ok((max_err, tail_max))
}

/// Rebuilds the reference supernet from the artifact's provenance and
/// diffs every checkpoint on `input`.
///
/// # Errors
///
/// Returns [`GraphError`] if the provenance is invalid or either forward
/// fails.
pub fn compare(artifact: &Artifact, input: &Tensor) -> Result<CompareReport, GraphError> {
    let arch = Arch::decode(&artifact.meta.genome).map_err(|e| GraphError::Artifact {
        detail: format!("artifact genome does not decode: {e}"),
    })?;
    let mut net = build_reference(
        &artifact.meta.skeleton,
        &arch,
        artifact.meta.seed,
        artifact.meta.warmup_steps,
    )?;
    compare_against(artifact, &mut net, &arch, input)
}

/// Like [`compare`] but against a caller-supplied reference supernet
/// (must match the artifact's provenance for a meaningful result).
///
/// # Errors
///
/// Returns [`GraphError`] if either forward fails or the checkpoint
/// tables disagree.
pub fn compare_against(
    artifact: &Artifact,
    net: &mut Supernet,
    arch: &Arch,
    input: &Tensor,
) -> Result<CompareReport, GraphError> {
    let wrap = |e: hsconas_supernet::SupernetError| cmp_err(e.to_string());

    // reference boundary activations
    let mut reference: Vec<(String, Tensor)> = Vec::new();
    let mut x = net.forward_stem(input, false).map_err(wrap)?;
    reference.push(("stem".into(), x.clone()));
    for (i, gene) in arch.genes().iter().enumerate() {
        x = net.forward_layer(i, &x, *gene, false).map_err(wrap)?;
        reference.push((format!("layer{i}"), x.clone()));
    }
    let logits = net.forward_head(&x, false).map_err(wrap)?;
    reference.push(("logits".into(), logits));

    // graph checkpoint activations
    let run = execute_traced(&artifact.graph, input)?;
    if run.checkpoints.len() != reference.len() {
        return Err(cmp_err(format!(
            "graph has {} checkpoints, reference produced {}",
            run.checkpoints.len(),
            reference.len()
        )));
    }

    let mut layers = Vec::with_capacity(reference.len());
    let mut overall = 0.0f32;
    for (i, cp) in artifact.graph.checkpoints.iter().enumerate() {
        let (_, got) = &run.checkpoints[i];
        let (ref_label, ref_act) = &reference[i];
        if &cp.label != ref_label {
            return Err(cmp_err(format!(
                "checkpoint order mismatch: graph {:?} vs reference {:?}",
                cp.label, ref_label
            )));
        }
        let (max_abs_err, ref_tail_max) = diff(ref_act, got)?;
        overall = overall.max(max_abs_err).max(ref_tail_max);
        layers.push(LayerReport {
            label: cp.label.clone(),
            logical_c: cp.logical_c,
            physical_c: got.shape().c,
            max_abs_err,
            ref_tail_max,
        });
    }
    Ok(CompareReport {
        layers,
        max_abs_err: overall,
    })
}
