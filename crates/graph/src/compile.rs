//! End-to-end compilation: deterministic reference supernet → lowering →
//! patches → artifact.
//!
//! The reference build is a pure function of `(skeleton, seed,
//! warmup_steps)`: weights come from a seeded RNG and the warmup runs
//! training-mode forwards on seeded synthetic batches (populating
//! nontrivial batch-norm running statistics) along the compiled genome's
//! own path. `compare` and the bit-identity tests rebuild the identical
//! supernet from the provenance stored in the artifact.

use hsconas_space::{Arch, NetworkSkeleton};
use hsconas_supernet::Supernet;
use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::Tensor;

use crate::artifact::{Artifact, ArtifactMeta};
use crate::lower::lower;
use crate::patch::{optimize, PatchStats};
use crate::GraphError;

/// Batch size of the warmup forwards (fixed: it is part of the
/// deterministic reference definition).
pub const WARMUP_BATCH: usize = 2;

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Seed for weight initialization and warmup data.
    pub seed: u64,
    /// Training-mode forward passes before export; populates batch-norm
    /// running statistics so the compiled normalization is nontrivial.
    pub warmup_steps: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            seed: 0,
            warmup_steps: 4,
        }
    }
}

/// Builds the deterministic reference supernet for `(skeleton, seed,
/// warmup_steps)`, warming batch-norm statistics along `arch`'s path.
///
/// # Errors
///
/// Returns [`GraphError::Lower`] if the skeleton cannot be built or a
/// warmup forward fails.
pub fn build_reference(
    skeleton: &NetworkSkeleton,
    arch: &Arch,
    seed: u64,
    warmup_steps: usize,
) -> Result<Supernet, GraphError> {
    let wrap = |e: hsconas_supernet::SupernetError| GraphError::Lower {
        detail: e.to_string(),
    };
    let mut rng = SmallRng::new(seed);
    let mut net = Supernet::build(skeleton, &mut rng).map_err(wrap)?;
    let res = skeleton.input_resolution;
    for _ in 0..warmup_steps {
        let x = Tensor::randn(
            [WARMUP_BATCH, skeleton.input_channels, res, res],
            1.0,
            &mut rng,
        );
        net.forward(&x, arch, true).map_err(wrap)?;
    }
    Ok(net)
}

/// Compiles `arch` against a freshly built reference supernet.
///
/// # Errors
///
/// Returns [`GraphError`] if the reference build, lowering, or a patch
/// fails.
pub fn compile(
    skeleton: &NetworkSkeleton,
    arch: &Arch,
    opts: &CompileOptions,
) -> Result<(Artifact, PatchStats), GraphError> {
    let net = build_reference(skeleton, arch, opts.seed, opts.warmup_steps)?;
    compile_from(&net, arch, opts)
}

/// Compiles `arch` against an already-built supernet (whose provenance
/// must match `opts` for `compare` to reproduce it).
///
/// # Errors
///
/// Returns [`GraphError`] if lowering or a patch fails.
pub fn compile_from(
    net: &Supernet,
    arch: &Arch,
    opts: &CompileOptions,
) -> Result<(Artifact, PatchStats), GraphError> {
    let _span = hsconas_telemetry::span!("graph.compile");
    let (mut graph, plan) = lower(net, arch)?;
    let stats = optimize(&mut graph, &plan)?;
    let artifact = Artifact {
        graph,
        meta: ArtifactMeta {
            skeleton: net.skeleton().clone(),
            genome: arch.encode(),
            seed: opts.seed,
            warmup_steps: opts.warmup_steps,
        },
    };
    Ok((artifact, stats))
}
