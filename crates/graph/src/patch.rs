//! The optimization patch pipeline: fuse → specialize → fold → sweep.
//!
//! Each pass is a declarative rewrite of the graph in place (tract-style
//! "patches"): nodes are retyped or rewired, never moved, and a final
//! reachability sweep compacts the survivors into topological order. The
//! passes bump `graph.patch.*` counters on the telemetry registry and
//! return per-run [`PatchStats`].
//!
//! ## Bit-exactness rules the passes obey
//!
//! * **Fusion** replaces Conv → BatchNorm (→ ReLU) with a single node
//!   whose epilogue applies the identical per-channel arithmetic — BN is
//!   *not* folded into the weights, so no float is recomputed.
//! * **Specialization** physically removes channels that the genome's
//!   mask pins to zero. Dense (`groups == 1`) convolutions are
//!   input-pruned (masked input channels form an exactly-zero k-tail of
//!   the im2col GEMM; dropping zero addends preserves every bit) and
//!   row-pruned (GEMM rows are independent). Grouped convolutions are
//!   never pruned — a narrowed producer gets an explicit `PadChannels`
//!   restoring the zero channels, because their batch-norms map zero
//!   channels to *nonzero* constant planes that downstream layers consume.
//!   Every convolution keeps the `ref_gemm` recorded at lowering, so the
//!   shrunken GEMMs still dispatch to the full-width kernel variant and
//!   blocking and accumulate in the original order.
//! * **Folding** only evaluates ops whose result cannot depend on the
//!   compile host's kernel selection: elementwise/copy ops always;
//!   convolutions only on all-zero inputs (a zero GEMM is `+0` under
//!   every kernel) or when their pinned reference shape classifies onto
//!   the direct path (fixed scalar code, no runtime variant choice).

use hsconas_tensor::kernels::{classify, ShapeClass};
use hsconas_tensor::Tensor;

use crate::exec::eval_node;
use crate::ir::{BnParams, BnScale, ConstId, Graph, GraphOp, NodeShape, Outlet};
use crate::lower::{Plan, PlanKind};
use crate::GraphError;

/// What one [`optimize`] run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Conv+BN(+ReLU) chains collapsed into fused nodes.
    pub fused: usize,
    /// Structural specializations (pruned convs, padded grouped convs,
    /// collapsed branches, interleave rewrites, narrowed skips).
    pub specialized: usize,
    /// Nodes replaced by compile-time constants (plus BN divisor
    /// precomputations).
    pub folded: usize,
    /// Dead nodes removed by the final sweep.
    pub removed: usize,
}

/// Runs the full patch pipeline in place.
///
/// # Errors
///
/// Returns [`GraphError`] if a rewrite encounters a structure the plan did
/// not describe or folding fails to evaluate a node.
pub fn optimize(g: &mut Graph, plan: &Plan) -> Result<PatchStats, GraphError> {
    let fused = fuse(g);
    let specialized = specialize(g, plan)?;
    let folded = fold(g)?;
    let removed = g.retain_reachable();
    g.validate()?;
    hsconas_telemetry::counter_add("graph.patch.fuse", fused as u64);
    hsconas_telemetry::counter_add("graph.patch.specialize", specialized as u64);
    hsconas_telemetry::counter_add("graph.patch.fold", folded as u64);
    hsconas_telemetry::counter_add("graph.patch.dce", removed as u64);
    Ok(PatchStats {
        fused,
        specialized,
        folded,
        removed,
    })
}

fn consumers(g: &Graph) -> Vec<Vec<usize>> {
    let mut cons = vec![Vec::new(); g.nodes.len()];
    for (id, node) in g.nodes.iter().enumerate() {
        for outlet in &node.inputs {
            cons[outlet.node].push(id);
        }
    }
    cons
}

fn is_boundary(g: &Graph, id: usize) -> bool {
    g.output == id || g.checkpoints.iter().any(|cp| cp.node == id)
}

/// Collapses Conv → BatchNorm (→ ReLU) chains into [`GraphOp::FusedConvBn`].
pub fn fuse(g: &mut Graph) -> usize {
    let mut count = 0;
    loop {
        let cons = consumers(g);
        let mut rewrite = None;
        for id in 0..g.nodes.len() {
            let (params, weight, ref_gemm) = match &g.nodes[id].op {
                GraphOp::Conv {
                    params,
                    weight,
                    ref_gemm,
                } => (*params, *weight, *ref_gemm),
                _ => continue,
            };
            // The conv's raw output must not be observable (it changes
            // meaning once the epilogue lands on the same node).
            if is_boundary(g, id) || cons[id].len() != 1 {
                continue;
            }
            let bn_id = cons[id][0];
            let bn = match &g.nodes[bn_id].op {
                GraphOp::BatchNorm { bn } => *bn,
                _ => continue,
            };
            let relu = !is_boundary(g, bn_id)
                && cons[bn_id].len() == 1
                && matches!(g.nodes[cons[bn_id][0]].op, GraphOp::Relu);
            let tail = if relu { cons[bn_id][0] } else { bn_id };
            rewrite = Some((id, bn_id, tail, params, weight, bn, relu, ref_gemm));
            break;
        }
        let Some((id, _bn_id, tail, params, weight, bn, relu, ref_gemm)) = rewrite else {
            return count;
        };
        g.nodes[id].op = GraphOp::FusedConvBn {
            params,
            weight,
            bn,
            relu,
            ref_gemm,
        };
        g.rewire(tail, id);
        count += 1;
    }
}

/// Mutable access to the conv-like parts of a node's op.
fn conv_mut(
    op: &mut GraphOp,
) -> Option<(
    &mut hsconas_tensor::conv::Conv2dParams,
    &mut ConstId,
    Option<&mut BnParams>,
)> {
    match op {
        GraphOp::Conv { params, weight, .. } => Some((params, weight, None)),
        GraphOp::FusedConvBn {
            params, weight, bn, ..
        } => Some((params, weight, Some(bn))),
        _ => None,
    }
}

fn spec_err(detail: String) -> GraphError {
    GraphError::Specialize { detail }
}

/// Slices the leading `new_cin` input channels out of a dense conv's
/// weight and shrinks `params.c_in` to match.
fn prune_conv_input(g: &mut Graph, id: usize, new_cin: usize) -> Result<(), GraphError> {
    let (weight_id, groups, c_in) = match &g.nodes[id].op {
        GraphOp::Conv { params, weight, .. } | GraphOp::FusedConvBn { params, weight, .. } => {
            (*weight, params.groups, params.c_in)
        }
        other => return Err(spec_err(format!("cannot input-prune {}", other.name()))),
    };
    if groups != 1 {
        return Err(spec_err(format!(
            "input-pruning a grouped conv (groups {groups}) would drop live taps"
        )));
    }
    if new_cin >= c_in {
        return Ok(());
    }
    let old = &g.consts[weight_id];
    let s = old.shape();
    let tap = s.h * s.w;
    let mut data = Vec::with_capacity(s.n * new_cin * tap);
    for o in 0..s.n {
        let row = o * s.c * tap;
        data.extend_from_slice(&old.data()[row..row + new_cin * tap]);
    }
    let pruned = g.add_const(Tensor::from_vec([s.n, new_cin, s.h, s.w], data)?);
    let (params, weight, _) = conv_mut(&mut g.nodes[id].op).expect("checked conv-like above");
    params.c_in = new_cin;
    *weight = pruned;
    Ok(())
}

/// Keeps only the leading `c` channels of a `[1, C, 1, 1]` parameter.
fn prefix_param(g: &mut Graph, id: ConstId, c: usize) -> Result<ConstId, GraphError> {
    let data = g.consts[id].data()[..c].to_vec();
    Ok(g.add_const(Tensor::from_vec([1, c, 1, 1], data)?))
}

/// Slices the leading `new_cout` output rows out of a conv's weight (and
/// its fused epilogue parameters) and shrinks `params.c_out` to match.
fn prune_conv_rows(g: &mut Graph, id: usize, new_cout: usize) -> Result<(), GraphError> {
    let (weight_id, groups, c_out, bn) = match &g.nodes[id].op {
        GraphOp::Conv { params, weight, .. } => (*weight, params.groups, params.c_out, None),
        GraphOp::FusedConvBn {
            params, weight, bn, ..
        } => (*weight, params.groups, params.c_out, Some(*bn)),
        other => return Err(spec_err(format!("cannot row-prune {}", other.name()))),
    };
    if groups != 1 {
        return Err(spec_err(format!(
            "row-pruning a grouped conv (groups {groups}) would misalign its groups"
        )));
    }
    if new_cout >= c_out {
        return Ok(());
    }
    let old = &g.consts[weight_id];
    let s = old.shape();
    let row = s.c * s.h * s.w;
    let data = old.data()[..new_cout * row].to_vec();
    let pruned = g.add_const(Tensor::from_vec([new_cout, s.c, s.h, s.w], data)?);
    let new_bn = match bn {
        Some(bn) => Some(BnParams {
            gamma: prefix_param(g, bn.gamma, new_cout)?,
            beta: prefix_param(g, bn.beta, new_cout)?,
            mean: prefix_param(g, bn.mean, new_cout)?,
            scale: match bn.scale {
                BnScale::Var { var, eps } => BnScale::Var {
                    var: prefix_param(g, var, new_cout)?,
                    eps,
                },
                BnScale::Std { std } => BnScale::Std {
                    std: prefix_param(g, std, new_cout)?,
                },
            },
        }),
        None => None,
    };
    let node = &mut g.nodes[id];
    node.shape.c = new_cout;
    let (params, weight, bn_mut) = conv_mut(&mut node.op).expect("checked conv-like above");
    params.c_out = new_cout;
    *weight = pruned;
    if let (Some(bn_mut), Some(new_bn)) = (bn_mut, new_bn) {
        *bn_mut = new_bn;
    }
    Ok(())
}

/// Narrows or pads one branch entry conv to the physically available
/// input width `avail`: dense convs are input-pruned, grouped convs get a
/// `PadChannels` restoring the zeros their group structure needs.
fn adapt_entry(g: &mut Graph, conv_id: usize, avail: usize) -> Result<usize, GraphError> {
    let (groups, c_in) = match &g.nodes[conv_id].op {
        GraphOp::Conv { params, .. } | GraphOp::FusedConvBn { params, .. } => {
            (params.groups, params.c_in)
        }
        other => {
            return Err(spec_err(format!(
                "branch entry is {}, expected a conv",
                other.name()
            )))
        }
    };
    if avail >= c_in {
        return Ok(0);
    }
    if groups == 1 {
        prune_conv_input(g, conv_id, avail)?;
    } else {
        let src = g.nodes[conv_id].inputs[0];
        let (h, w) = {
            let s = g.nodes[src.node].shape;
            (s.h, s.w)
        };
        let pad = g.add(
            GraphOp::PadChannels { to: c_in },
            vec![src],
            NodeShape::new(c_in, h, w),
        );
        g.nodes[conv_id].inputs[0] = Outlet::of(pad);
    }
    Ok(1)
}

/// Physically removes masked channels, layer by layer, tracking the live
/// prefix width `p` flowing between layers. Returns the rewrite count.
pub fn specialize(g: &mut Graph, plan: &Plan) -> Result<usize, GraphError> {
    let mut count = 0;
    let mut p = match plan.layers.first() {
        Some(lp) => lp.c_in,
        None => return Ok(0),
    };
    for lp in &plan.layers {
        match &lp.kind {
            PlanKind::SkipS1 => {
                // identity, never masked: the live prefix flows through
            }
            PlanKind::SkipS2 { adapt, mask } => {
                let target = lp.keep.min(lp.c_out);
                g.nodes[*adapt].op = GraphOp::AdaptChannels { c_out: target };
                g.nodes[*adapt].shape.c = target;
                g.rewire(*mask, *adapt);
                count += 1;
                p = target;
            }
            PlanKind::Unit {
                input: _,
                slice_l,
                slice_r,
                left_convs,
                right_convs,
                concat,
                shuffle: _,
                mask,
            } => {
                let keep = lp.keep;
                // Post-shuffle (groups = 2) channel j reads branch plane
                // j/2: even j from the left, odd j from the right. keep is
                // even (ChannelScale guarantees it), so each branch
                // contributes exactly keep/2 live planes.
                let live_left = keep.div_ceil(2);
                let live_right = keep / 2;
                let entry_conv = |convs: &Vec<usize>| {
                    convs
                        .first()
                        .copied()
                        .ok_or_else(|| spec_err("branch has no entry conv".into()))
                };
                let exit_conv = |convs: &Vec<usize>| {
                    convs
                        .last()
                        .copied()
                        .ok_or_else(|| spec_err("branch has no exit conv".into()))
                };
                let (left_outlet, right_node) = if lp.stride == 1 {
                    let half = lp.c_in / 2;
                    let avail_left = p.min(half);
                    let avail_right = p.saturating_sub(half);
                    let slice_l = slice_l
                        .ok_or_else(|| spec_err("stride-1 unit lost its left slice".into()))?;
                    let slice_r = slice_r
                        .ok_or_else(|| spec_err("stride-1 unit lost its right slice".into()))?;
                    // Left passthrough: slice down to what the interleave
                    // will actually read, or bypass the slice entirely when
                    // the live input prefix already fits. The bypass must
                    // take the slice's *current* edge, not a plan node id:
                    // earlier layers' rewires retarget edges only.
                    let left_width = avail_left.min(live_left);
                    let left_outlet = if left_width == p {
                        g.nodes[slice_l].inputs[0]
                    } else {
                        g.nodes[slice_l].op = GraphOp::SliceChannels {
                            start: 0,
                            len: left_width,
                        };
                        g.nodes[slice_l].shape.c = left_width;
                        Outlet::of(slice_l)
                    };
                    if left_width < half {
                        count += 1;
                    }
                    if avail_right == 0 {
                        // The whole right half of the input is pinned to
                        // zero: feed the branch a constant so folding can
                        // collapse it into precomputed planes.
                        let shape = g.nodes[slice_r].shape;
                        let zeros = g.add_const(Tensor::zeros([1, shape.c, shape.h, shape.w]));
                        g.nodes[slice_r].op = GraphOp::Const { value: zeros };
                        g.nodes[slice_r].inputs.clear();
                        count += 1;
                    } else {
                        if avail_right < lp.c_in - half {
                            g.nodes[slice_r].op = GraphOp::SliceChannels {
                                start: half,
                                len: avail_right,
                            };
                            g.nodes[slice_r].shape.c = avail_right;
                            count += adapt_entry(g, entry_conv(right_convs)?, avail_right)?;
                            count += 1;
                        }
                    }
                    let exit = exit_conv(right_convs)?;
                    if live_right < lp.c_out / 2 {
                        prune_conv_rows(g, exit, live_right)?;
                        count += 1;
                    }
                    (left_outlet, exit)
                } else {
                    // stride 2: both branches consume the unit input
                    count += adapt_entry(g, entry_conv(left_convs)?, p)?;
                    count += adapt_entry(g, entry_conv(right_convs)?, p)?;
                    let left_exit = exit_conv(left_convs)?;
                    let right_exit = exit_conv(right_convs)?;
                    if live_left < lp.c_out / 2 {
                        prune_conv_rows(g, left_exit, live_left)?;
                        count += 1;
                    }
                    if live_right < lp.c_out / 2 {
                        prune_conv_rows(g, right_exit, live_right)?;
                        count += 1;
                    }
                    (Outlet::of(left_exit), right_exit)
                };
                g.nodes[*concat].op = GraphOp::InterleaveMasked { keep };
                g.nodes[*concat].inputs = vec![left_outlet, Outlet::of(right_node)];
                g.nodes[*concat].shape.c = keep;
                g.rewire(*mask, *concat);
                count += 1;
                p = keep;
            }
        }
    }
    // The head's pointwise conv consumes the last boundary: prune its
    // input to the surviving live prefix.
    let head_cin = match &g.nodes[plan.head_conv].op {
        GraphOp::Conv { params, .. } | GraphOp::FusedConvBn { params, .. } => params.c_in,
        other => {
            return Err(spec_err(format!(
                "plan head conv is {}, expected a conv",
                other.name()
            )))
        }
    };
    if p < head_cin {
        prune_conv_input(g, plan.head_conv, p)?;
        count += 1;
    }
    Ok(count)
}

/// Whether folding this op at compile time is guaranteed to reproduce the
/// execution-time bits on *any* host and kernel selection.
fn fold_safe(op: &GraphOp, inputs_all_zero: bool) -> bool {
    match op {
        // A zero GEMM yields exact +0 under every kernel; a pinned
        // tiny/skinny reference shape always dispatches onto the direct
        // path, which is fixed scalar code with no runtime variant.
        GraphOp::Conv { ref_gemm, .. } | GraphOp::FusedConvBn { ref_gemm, .. } => {
            inputs_all_zero
                || matches!(
                    ref_gemm.map(|(m, k, n)| classify(m, k, n)),
                    Some(ShapeClass::Tiny | ShapeClass::Skinny)
                )
        }
        GraphOp::Linear { .. } => false,
        GraphOp::Input | GraphOp::Const { .. } => false,
        // Elementwise and copy ops are plain scalar code everywhere.
        _ => true,
    }
}

/// Precomputes BN divisors and propagates constants through the graph.
pub fn fold(g: &mut Graph) -> Result<usize, GraphError> {
    let mut count = 0;

    // var + eps → std, hoisting the sqrt out of the inference loop (the
    // same f32 per channel, so this is bit-exact).
    for id in 0..g.nodes.len() {
        let bn = match &g.nodes[id].op {
            GraphOp::BatchNorm { bn } | GraphOp::FusedConvBn { bn, .. } => *bn,
            _ => continue,
        };
        let BnScale::Var { var, eps } = bn.scale else {
            continue;
        };
        let std = g.consts[var].map(|v| (v + eps).sqrt());
        let std = g.add_const(std);
        match &mut g.nodes[id].op {
            GraphOp::BatchNorm { bn } | GraphOp::FusedConvBn { bn, .. } => {
                bn.scale = BnScale::Std { std };
            }
            _ => unreachable!("matched above"),
        }
        count += 1;
    }

    // constant propagation to a fixed point
    loop {
        let mut changed = false;
        for id in 0..g.nodes.len() {
            if matches!(g.nodes[id].op, GraphOp::Input | GraphOp::Const { .. }) {
                continue;
            }
            if g.nodes[id].inputs.is_empty() {
                continue;
            }
            let const_ids: Option<Vec<ConstId>> = g.nodes[id]
                .inputs
                .iter()
                .map(|o| match g.nodes[o.node].op {
                    GraphOp::Const { value } => Some(value),
                    _ => None,
                })
                .collect();
            let Some(const_ids) = const_ids else {
                continue;
            };
            let all_zero = const_ids
                .iter()
                .all(|&c| g.consts[c].data().iter().all(|v| *v == 0.0));
            if !fold_safe(&g.nodes[id].op, all_zero) {
                continue;
            }
            let values: Vec<&Tensor> = const_ids.iter().map(|&c| &g.consts[c]).collect();
            let folded = eval_node(&g.nodes[id].op, &values, &g.consts)?;
            let value = g.add_const(folded);
            g.nodes[id].op = GraphOp::Const { value };
            g.nodes[id].inputs.clear();
            changed = true;
            count += 1;
        }
        if !changed {
            break;
        }
    }
    Ok(count)
}
