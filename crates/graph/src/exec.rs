//! Graph execution.
//!
//! The executor walks the graph in topological order, computing one tensor
//! per node and releasing activations as soon as their last consumer has
//! run. Per-node arithmetic lives in [`eval_node`], which the constant
//! folding patch shares — a folded value is *by construction* the value
//! execution would have produced.
//!
//! Exactness: every op here reproduces the corresponding live-layer
//! arithmetic elementwise (convolutions through
//! [`conv2d_forward_pinned`] with the lowering-recorded reference GEMM
//! shape, the linear head through the same tagged `x·Wᵀ` product as
//! `hsconas_nn::Linear`, batch-norm as literally `g * (x - mean) / std + b`
//! per channel), so an optimized graph's logits match the masked supernet
//! forward bit for bit.

use std::collections::HashMap;

use hsconas_supernet::masked::{adapt_channels, mask_channels};
use hsconas_tensor::conv::conv2d_forward_pinned;
use hsconas_tensor::kernels::GemmTags;
use hsconas_tensor::matmul::matmul_a_bt_tagged;
use hsconas_tensor::pool::{avg_pool, global_avg_pool};
use hsconas_tensor::Tensor;

use crate::ir::{BnParams, BnScale, Graph, GraphOp};
use crate::GraphError;

fn exec_err(detail: String) -> GraphError {
    GraphError::Exec { detail }
}

/// Applies the batch-norm epilogue (and optional ReLU) in place:
/// `y = gamma * (x - mean) / std + beta`, exactly the inference-mode
/// arithmetic of `hsconas_nn::BatchNorm2d`.
fn apply_bn(t: &mut Tensor, bn: &BnParams, consts: &[Tensor], relu: bool) {
    let s = t.shape();
    let plane = s.h * s.w;
    let gamma = &consts[bn.gamma];
    let beta = &consts[bn.beta];
    let mean = &consts[bn.mean];
    for c in 0..s.c {
        let g = gamma.at(0, c, 0, 0);
        let b = beta.at(0, c, 0, 0);
        let m = mean.at(0, c, 0, 0);
        let std = match bn.scale {
            BnScale::Var { var, eps } => (consts[var].at(0, c, 0, 0) + eps).sqrt(),
            BnScale::Std { std } => consts[std].at(0, c, 0, 0),
        };
        for n in 0..s.n {
            let start = (n * s.c + c) * plane;
            for v in &mut t.data_mut()[start..start + plane] {
                let y = g * (*v - m) / std + b;
                *v = if relu { y.max(0.0) } else { y };
            }
        }
    }
}

/// Copies channel plane `src_c` of every image in `src` to channel `dst_c`
/// of `dst` (shapes must agree in n/h/w).
fn copy_planes(dst: &mut Tensor, dst_c: usize, src: &Tensor, src_c: usize) {
    let ds = dst.shape();
    let ss = src.shape();
    let plane = ds.h * ds.w;
    for n in 0..ds.n {
        let from = (n * ss.c + src_c) * plane;
        let to = (n * ds.c + dst_c) * plane;
        let row: Vec<f32> = src.data()[from..from + plane].to_vec();
        dst.data_mut()[to..to + plane].copy_from_slice(&row);
    }
}

/// Evaluates one non-source node on already-materialized inputs.
///
/// # Errors
///
/// Returns [`GraphError`] on shape mismatches or source ops
/// (`Input`/`Const`), which only the executor itself can materialize.
pub fn eval_node(
    op: &GraphOp,
    inputs: &[&Tensor],
    consts: &[Tensor],
) -> Result<Tensor, GraphError> {
    let sole = || -> Result<&Tensor, GraphError> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| exec_err(format!("{} node has no input", op.name())))
    };
    match op {
        GraphOp::Input | GraphOp::Const { .. } => Err(exec_err(format!(
            "{} is a source node and cannot be evaluated from inputs",
            op.name()
        ))),
        GraphOp::Conv {
            params,
            weight,
            ref_gemm,
        } => Ok(conv2d_forward_pinned(
            sole()?,
            &consts[*weight],
            params,
            *ref_gemm,
        )?),
        GraphOp::FusedConvBn {
            params,
            weight,
            bn,
            relu,
            ref_gemm,
        } => {
            let mut out = conv2d_forward_pinned(sole()?, &consts[*weight], params, *ref_gemm)?;
            apply_bn(&mut out, bn, consts, *relu);
            Ok(out)
        }
        GraphOp::BatchNorm { bn } => {
            let mut out = sole()?.clone();
            apply_bn(&mut out, bn, consts, false);
            Ok(out)
        }
        GraphOp::Relu => Ok(sole()?.map(|v| v.max(0.0))),
        GraphOp::ChannelShuffle { groups } => Ok(sole()?.channel_shuffle(*groups)?),
        GraphOp::SliceChannels { start, len } => {
            let x = sole()?;
            let s = x.shape();
            if start + len > s.c {
                return Err(exec_err(format!(
                    "slice [{start}, {}) exceeds {} channels",
                    start + len,
                    s.c
                )));
            }
            let mut out = Tensor::zeros([s.n, *len, s.h, s.w]);
            for c in 0..*len {
                copy_planes(&mut out, c, x, start + c);
            }
            Ok(out)
        }
        GraphOp::Concat => Ok(Tensor::concat_channels(inputs)?),
        GraphOp::InterleaveMasked { keep } => {
            let left = sole()?;
            let right = inputs.get(1).copied();
            let s = left.shape();
            let mut out = Tensor::zeros([s.n, *keep, s.h, s.w]);
            for j in 0..*keep {
                let (src, idx) = if j % 2 == 0 {
                    (Some(left), j / 2)
                } else {
                    (right, j / 2)
                };
                if let Some(t) = src {
                    if idx < t.shape().c {
                        copy_planes(&mut out, j, t, idx);
                    }
                }
            }
            Ok(out)
        }
        GraphOp::PadChannels { to } => {
            let x = sole()?;
            if x.shape().c > *to {
                return Err(exec_err(format!(
                    "pad target {to} below physical width {}",
                    x.shape().c
                )));
            }
            Ok(adapt_channels(x, *to))
        }
        GraphOp::AvgPool {
            kernel,
            stride,
            pad,
        } => Ok(avg_pool(sole()?, *kernel, *stride, *pad)),
        GraphOp::GlobalAvgPool => Ok(global_avg_pool(sole()?)),
        GraphOp::AdaptChannels { c_out } => Ok(adapt_channels(sole()?, *c_out)),
        GraphOp::MaskChannels { keep } => {
            let mut out = sole()?.clone();
            mask_channels(&mut out, *keep);
            Ok(out)
        }
        GraphOp::Linear { weight, bias } => {
            let x = sole()?;
            let weight = &consts[*weight];
            let bias = &consts[*bias];
            let (out_features, in_features) = (weight.shape().n, weight.shape().c);
            let s = x.shape();
            if s.c != in_features || s.h != 1 || s.w != 1 {
                return Err(exec_err(format!(
                    "linear expects [{in_features}, 1, 1] input, got [{}, {}, {}]",
                    s.c, s.h, s.w
                )));
            }
            let mut out = Tensor::zeros([s.n, out_features, 1, 1]);
            matmul_a_bt_tagged(
                x.data(),
                weight.data(),
                out.data_mut(),
                s.n,
                in_features,
                out_features,
                GemmTags::b_tag(weight.pack_tag()),
            );
            for n in 0..s.n {
                for o in 0..out_features {
                    *out.at_mut(n, o, 0, 0) += bias.at(0, o, 0, 0);
                }
            }
            Ok(out)
        }
    }
}

/// Replicates a batch-1 constant across the execution batch.
fn broadcast(value: &Tensor, n: usize) -> Tensor {
    if n == 1 {
        return value.clone();
    }
    let s = value.shape();
    let image = s.c * s.h * s.w;
    let mut out = Tensor::zeros([n, s.c, s.h, s.w]);
    for i in 0..n {
        out.data_mut()[i * image..(i + 1) * image].copy_from_slice(value.data());
    }
    out
}

/// Result of a traced execution: the logits plus every checkpoint
/// activation in network order.
#[derive(Debug)]
pub struct TracedRun {
    /// The output node's tensor.
    pub output: Tensor,
    /// `(label, activation)` for each graph checkpoint, in table order.
    pub checkpoints: Vec<(String, Tensor)>,
}

/// Runs the graph on a batch, returning the output tensor.
///
/// # Errors
///
/// Returns [`GraphError`] if the input shape does not match the graph or a
/// node fails to evaluate.
pub fn execute(graph: &Graph, input: &Tensor) -> Result<Tensor, GraphError> {
    run(graph, input, false).map(|r| r.output)
}

/// Like [`execute`] but also captures every checkpoint activation (used by
/// `compare` for layer-by-layer diffing).
///
/// # Errors
///
/// Returns [`GraphError`] on the same conditions as [`execute`].
pub fn execute_traced(graph: &Graph, input: &Tensor) -> Result<TracedRun, GraphError> {
    run(graph, input, true)
}

fn run(graph: &Graph, input: &Tensor, capture: bool) -> Result<TracedRun, GraphError> {
    graph.validate()?;
    let s = input.shape();
    if s.c != graph.input_c || s.h != graph.input_h || s.w != graph.input_w {
        return Err(exec_err(format!(
            "graph expects input [{}, {}, {}], got [{}, {}, {}]",
            graph.input_c, graph.input_h, graph.input_w, s.c, s.h, s.w
        )));
    }
    let order = graph.topo_order();

    // Consumer refcounts so activations free at their last use; the output
    // and (when capturing) every checkpoint get an extra count to survive
    // the walk.
    let mut refs = vec![0usize; graph.nodes.len()];
    for &id in &order {
        for outlet in &graph.nodes[id].inputs {
            refs[outlet.node] += 1;
        }
    }
    refs[graph.output] += 1;
    if capture {
        for cp in &graph.checkpoints {
            refs[cp.node] += 1;
        }
    }

    let mut acts: Vec<Option<Tensor>> = (0..graph.nodes.len()).map(|_| None).collect();
    for &id in &order {
        let node = &graph.nodes[id];
        let _node_span = hsconas_telemetry::span!("graph.node", op = node.op.name());
        let out = match &node.op {
            GraphOp::Input => input.clone(),
            GraphOp::Const { value } => broadcast(&graph.consts[*value], s.n),
            op => {
                let ins: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|o| acts[o.node].as_ref().expect("inputs precede consumers"))
                    .collect();
                eval_node(op, &ins, &graph.consts)?
            }
        };
        for outlet in &node.inputs {
            refs[outlet.node] -= 1;
            if refs[outlet.node] == 0 {
                acts[outlet.node] = None;
            }
        }
        acts[id] = Some(out);
    }

    let mut by_node: HashMap<usize, Tensor> = HashMap::new();
    let checkpoints = if capture {
        for cp in &graph.checkpoints {
            if let std::collections::hash_map::Entry::Vacant(slot) = by_node.entry(cp.node) {
                let t = acts[cp.node]
                    .clone()
                    .ok_or_else(|| exec_err(format!("checkpoint node {} was freed", cp.node)))?;
                slot.insert(t);
            }
        }
        graph
            .checkpoints
            .iter()
            .map(|cp| (cp.label.clone(), by_node[&cp.node].clone()))
            .collect()
    } else {
        Vec::new()
    };
    let output = acts[graph.output]
        .take()
        .ok_or_else(|| exec_err("output node produced no tensor".into()))?;
    Ok(TracedRun {
        output,
        checkpoints,
    })
}
