//! The typed dataflow graph: nodes, edges, shapes, and structural helpers.
//!
//! The IR is deliberately small. A [`Graph`] is a flat `Vec` of [`Node`]s,
//! each producing exactly one tensor; edges are [`Outlet`]s (producer node
//! id plus an output slot, always 0 today but kept explicit so multi-output
//! ops can be added without a format break). Weights and other constants
//! live in a side pool (`consts`) of persistent [`Tensor`]s, which keeps
//! their pack-cache identities stable across executions — a compiled graph
//! packs each weight panel once per process, exactly like the live layers
//! it was lowered from.
//!
//! Shapes are **per-image physical** `(c, h, w)`: the batch dimension is
//! supplied at execution time and never appears in the IR, mirroring how
//! the convolution lowering runs one im2col GEMM per image regardless of
//! batch size.

use hsconas_tensor::conv::Conv2dParams;
use hsconas_tensor::Tensor;

use crate::GraphError;

/// Index into [`Graph::consts`].
pub type ConstId = usize;

/// A reference to one output of a producer node.
///
/// Every op today has a single output, so `slot` is always 0; it is stored
/// (and serialized) anyway so the artifact format does not need a breaking
/// revision if a multi-output op ever appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outlet {
    /// Producer node id.
    pub node: usize,
    /// Output slot on the producer (always 0 today).
    pub slot: usize,
}

impl Outlet {
    /// Slot-0 outlet of `node`.
    pub fn of(node: usize) -> Outlet {
        Outlet { node, slot: 0 }
    }
}

/// Per-image physical output shape of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeShape {
    /// Physical channel count (may be *smaller* than the logical width
    /// after channel specialization).
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl NodeShape {
    /// Convenience constructor.
    pub fn new(c: usize, h: usize, w: usize) -> NodeShape {
        NodeShape { c, h, w }
    }
}

/// How a batch-norm's per-channel divisor is stored.
///
/// Lowering records the raw running variance plus epsilon; the constant
/// folding patch precomputes `sqrt(var + eps)` once. Both forms evaluate
/// the *same* f32 per channel (the fold just hoists the sqrt out of the
/// inference loop), so folding is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BnScale {
    /// Divisor computed at execution: `sqrt(consts[var][c] + eps)`.
    Var {
        /// Running variance, `[1, C, 1, 1]`.
        var: ConstId,
        /// Stability epsilon.
        eps: f32,
    },
    /// Precomputed divisor `std[c]`, `[1, C, 1, 1]`.
    Std {
        /// The divisor tensor.
        std: ConstId,
    },
}

/// Per-channel affine-normalization parameters shared by [`GraphOp::BatchNorm`]
/// and [`GraphOp::FusedConvBn`]: `y = gamma * (x - mean) / scale + beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnParams {
    /// Scale `gamma`, `[1, C, 1, 1]`.
    pub gamma: ConstId,
    /// Shift `beta`, `[1, C, 1, 1]`.
    pub beta: ConstId,
    /// Running mean, `[1, C, 1, 1]`.
    pub mean: ConstId,
    /// The divisor (running variance or precomputed std).
    pub scale: BnScale,
}

/// One typed operation. Every variant produces exactly one tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphOp {
    /// The graph's single external input (`[n, input_c, input_h, input_w]`).
    Input,
    /// A compile-time constant (`consts[value]`, batch 1), broadcast to the
    /// execution batch by plane replication.
    Const {
        /// The constant tensor.
        value: ConstId,
    },
    /// 2-D convolution, no bias. `ref_gemm` pins the GEMM kernel variant
    /// and blocking to the full-width shape the supernet reference runs,
    /// so channel-specialized (smaller) convs still accumulate in the same
    /// order and stay bit-identical to the masked reference.
    Conv {
        /// Geometry (after any specialization).
        params: Conv2dParams,
        /// Weight `[c_out, c_in/groups, k, k]`.
        weight: ConstId,
        /// Full-width per-group `(m, k, n)` recorded at lowering.
        ref_gemm: Option<(usize, usize, usize)>,
    },
    /// Convolution followed by a batch-norm epilogue (and optionally ReLU)
    /// applied per output channel — *not* folded into the weights, so the
    /// arithmetic is elementwise-identical to Conv → BatchNorm → ReLU.
    FusedConvBn {
        /// Geometry (after any specialization).
        params: Conv2dParams,
        /// Weight `[c_out, c_in/groups, k, k]`.
        weight: ConstId,
        /// The epilogue's normalization parameters.
        bn: BnParams,
        /// Apply `max(0, ·)` after the normalization.
        relu: bool,
        /// Full-width per-group `(m, k, n)` recorded at lowering.
        ref_gemm: Option<(usize, usize, usize)>,
    },
    /// Inference-mode batch normalization.
    BatchNorm {
        /// Normalization parameters.
        bn: BnParams,
    },
    /// Elementwise `max(0, x)`.
    Relu,
    /// `ShuffleNet` channel shuffle.
    ChannelShuffle {
        /// Group count.
        groups: usize,
    },
    /// Channel-axis slice `[start, start + len)`.
    SliceChannels {
        /// First channel kept.
        start: usize,
        /// Channels kept.
        len: usize,
    },
    /// Channel-axis concatenation of all inputs, in order.
    Concat,
    /// The specialized replacement for concat + shuffle(2) + mask: output
    /// channel `j < keep` reads plane `j/2` of the left input (`j` even)
    /// or the right input (`j` odd), zero-filling when the source plane
    /// index is beyond that input's physical width or the right input is
    /// absent entirely (fully pruned branch).
    InterleaveMasked {
        /// Logical post-mask width (always the gene's `keep`).
        keep: usize,
    },
    /// Zero-pads the channel axis up to `to` (identity if already there).
    /// Inserted in front of grouped convolutions whose producer was
    /// physically narrowed, because grouped convs cannot be input-pruned.
    PadChannels {
        /// Target physical width.
        to: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Global average pooling to `[n, c, 1, 1]`.
    GlobalAvgPool,
    /// Copy-the-prefix channel adaptation (truncate or zero-pad) used by
    /// the stride-2 skip operator.
    AdaptChannels {
        /// Target channel count.
        c_out: usize,
    },
    /// Zeroes channels `>= keep` (the supernet's `I^l` mask). Present
    /// after lowering; specialization replaces or deletes every instance.
    MaskChannels {
        /// Channels left untouched.
        keep: usize,
    },
    /// Fully connected classifier: `y = W x + b` on `[n, c, 1, 1]`.
    Linear {
        /// Weight `[out, in, 1, 1]`.
        weight: ConstId,
        /// Bias `[1, out, 1, 1]`.
        bias: ConstId,
    },
}

impl GraphOp {
    /// Short lowercase op name for telemetry spans and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            GraphOp::Input => "input",
            GraphOp::Const { .. } => "const",
            GraphOp::Conv { .. } => "conv",
            GraphOp::FusedConvBn { .. } => "fused_conv_bn",
            GraphOp::BatchNorm { .. } => "batch_norm",
            GraphOp::Relu => "relu",
            GraphOp::ChannelShuffle { .. } => "channel_shuffle",
            GraphOp::SliceChannels { .. } => "slice_channels",
            GraphOp::Concat => "concat",
            GraphOp::InterleaveMasked { .. } => "interleave_masked",
            GraphOp::PadChannels { .. } => "pad_channels",
            GraphOp::AvgPool { .. } => "avg_pool",
            GraphOp::GlobalAvgPool => "global_avg_pool",
            GraphOp::AdaptChannels { .. } => "adapt_channels",
            GraphOp::MaskChannels { .. } => "mask_channels",
            GraphOp::Linear { .. } => "linear",
        }
    }
}

/// One node: an op, its input edges, and its physical output shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation.
    pub op: GraphOp,
    /// Input edges in positional order.
    pub inputs: Vec<Outlet>,
    /// Per-image physical output shape.
    pub shape: NodeShape,
}

/// A named activation boundary used by `compare`: after optimization the
/// node's physical width may be smaller than the logical (masked
/// supernet) width, so the logical width is carried alongside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Boundary label (`"stem"`, `"layer3"`, `"logits"`).
    pub label: String,
    /// Node whose output is the boundary activation.
    pub node: usize,
    /// Logical channel width at this boundary in the reference supernet.
    pub logical_c: usize,
}

/// The dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Nodes; after [`Graph::retain_reachable`] they are in topological
    /// order (every input id is smaller than its consumer's id).
    pub nodes: Vec<Node>,
    /// Constant pool (weights, normalization parameters, folded branches).
    pub consts: Vec<Tensor>,
    /// Expected input channels.
    pub input_c: usize,
    /// Expected input height.
    pub input_h: usize,
    /// Expected input width.
    pub input_w: usize,
    /// The node whose output is the graph result.
    pub output: usize,
    /// Named activation boundaries in network order.
    pub checkpoints: Vec<Checkpoint>,
}

impl Graph {
    /// An empty graph with the given input shape.
    pub fn new(input_c: usize, input_h: usize, input_w: usize) -> Graph {
        Graph {
            nodes: Vec::new(),
            consts: Vec::new(),
            input_c,
            input_h,
            input_w,
            output: 0,
            checkpoints: Vec::new(),
        }
    }

    /// Appends a node, returning its id.
    pub fn add(&mut self, op: GraphOp, inputs: Vec<Outlet>, shape: NodeShape) -> usize {
        self.nodes.push(Node { op, inputs, shape });
        self.nodes.len() - 1
    }

    /// Interns a constant tensor, returning its pool id.
    pub fn add_const(&mut self, value: Tensor) -> ConstId {
        self.consts.push(value);
        self.consts.len() - 1
    }

    /// Redirects every edge (and the output / checkpoint references) that
    /// points at `from` to point at `to` instead. `from` itself keeps its
    /// inputs and becomes garbage for the next dead-node sweep unless it
    /// is still referenced.
    pub fn rewire(&mut self, from: usize, to: usize) {
        for node in &mut self.nodes {
            for outlet in &mut node.inputs {
                if outlet.node == from {
                    outlet.node = to;
                }
            }
        }
        if self.output == from {
            self.output = to;
        }
        for cp in &mut self.checkpoints {
            if cp.node == from {
                cp.node = to;
            }
        }
    }

    /// Nodes reachable from the output, in topological (post-DFS) order.
    pub fn topo_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // 0 = unvisited, 1 = on stack (being expanded), 2 = done
        let mut state = vec![0u8; self.nodes.len()];
        // iterative DFS: (node, next input index to expand)
        let mut stack = vec![(self.output, 0usize)];
        state[self.output] = 1;
        while let Some(&(id, next)) = stack.last() {
            let inputs = &self.nodes[id].inputs;
            if next < inputs.len() {
                stack.last_mut().expect("stack is non-empty").1 += 1;
                let child = inputs[next].node;
                if state[child] == 0 {
                    state[child] = 1;
                    stack.push((child, 0));
                }
            } else {
                state[id] = 2;
                order.push(id);
                stack.pop();
            }
        }
        order
    }

    /// Drops unreachable nodes and unreferenced constants, compacting ids
    /// so the surviving nodes are numbered in topological order (inputs
    /// always before consumers). Returns the number of nodes removed.
    pub fn retain_reachable(&mut self) -> usize {
        let order = self.topo_order();
        let removed = self.nodes.len() - order.len();
        let mut node_map = vec![usize::MAX; self.nodes.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            node_map[old_id] = new_id;
        }
        let mut new_nodes = Vec::with_capacity(order.len());
        for &old_id in &order {
            let mut node = self.nodes[old_id].clone();
            for outlet in &mut node.inputs {
                outlet.node = node_map[outlet.node];
            }
            new_nodes.push(node);
        }
        self.nodes = new_nodes;
        self.output = node_map[self.output];
        for cp in &mut self.checkpoints {
            cp.node = node_map[cp.node];
        }

        // compact the constant pool to what the surviving nodes reference
        let mut const_map = vec![usize::MAX; self.consts.len()];
        let mut new_consts = Vec::new();
        let mut intern = |id: &mut ConstId, consts: &[Tensor]| {
            if const_map[*id] == usize::MAX {
                const_map[*id] = new_consts.len();
                new_consts.push(consts[*id].clone());
            }
            *id = const_map[*id];
        };
        for node in &mut self.nodes {
            match &mut node.op {
                GraphOp::Const { value } => intern(value, &self.consts),
                GraphOp::Conv { weight, .. } => intern(weight, &self.consts),
                GraphOp::FusedConvBn { weight, bn, .. } => {
                    intern(weight, &self.consts);
                    intern(&mut bn.gamma, &self.consts);
                    intern(&mut bn.beta, &self.consts);
                    intern(&mut bn.mean, &self.consts);
                    match &mut bn.scale {
                        BnScale::Var { var, .. } => intern(var, &self.consts),
                        BnScale::Std { std } => intern(std, &self.consts),
                    }
                }
                GraphOp::BatchNorm { bn } => {
                    intern(&mut bn.gamma, &self.consts);
                    intern(&mut bn.beta, &self.consts);
                    intern(&mut bn.mean, &self.consts);
                    match &mut bn.scale {
                        BnScale::Var { var, .. } => intern(var, &self.consts),
                        BnScale::Std { std } => intern(std, &self.consts),
                    }
                }
                GraphOp::Linear { weight, bias } => {
                    intern(weight, &self.consts);
                    intern(bias, &self.consts);
                }
                _ => {}
            }
        }
        self.consts = new_consts;
        removed
    }

    /// Structural sanity checks: in-range edges and constant references,
    /// checkpoint and output validity. Cheap; run after deserialization
    /// and after each patch pipeline in debug builds.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Malformed`] describing the first violation.
    pub fn validate(&self) -> Result<(), GraphError> {
        let malformed = |detail: String| Err(GraphError::Malformed { detail });
        if self.nodes.is_empty() {
            return malformed("graph has no nodes".into());
        }
        if self.output >= self.nodes.len() {
            return malformed(format!(
                "output node {} out of range ({} nodes)",
                self.output,
                self.nodes.len()
            ));
        }
        let check_const = |id: ConstId, what: &str, node: usize| {
            if id >= self.consts.len() {
                return malformed(format!(
                    "node {node}: {what} const {id} out of range ({} consts)",
                    self.consts.len()
                ));
            }
            Ok(())
        };
        for (id, node) in self.nodes.iter().enumerate() {
            for outlet in &node.inputs {
                if outlet.node >= self.nodes.len() {
                    return malformed(format!(
                        "node {id}: input edge to missing node {}",
                        outlet.node
                    ));
                }
                if outlet.slot != 0 {
                    return malformed(format!(
                        "node {id}: input slot {} (only slot 0 exists)",
                        outlet.slot
                    ));
                }
            }
            let bn_consts = |bn: &BnParams| -> Result<(), GraphError> {
                check_const(bn.gamma, "gamma", id)?;
                check_const(bn.beta, "beta", id)?;
                check_const(bn.mean, "mean", id)?;
                match bn.scale {
                    BnScale::Var { var, .. } => check_const(var, "var", id),
                    BnScale::Std { std } => check_const(std, "std", id),
                }
            };
            match &node.op {
                GraphOp::Const { value } => check_const(*value, "value", id)?,
                GraphOp::Conv { weight, .. } => check_const(*weight, "weight", id)?,
                GraphOp::FusedConvBn { weight, bn, .. } => {
                    check_const(*weight, "weight", id)?;
                    bn_consts(bn)?;
                }
                GraphOp::BatchNorm { bn } => bn_consts(bn)?,
                GraphOp::Linear { weight, bias } => {
                    check_const(*weight, "weight", id)?;
                    check_const(*bias, "bias", id)?;
                }
                _ => {}
            }
        }
        for cp in &self.checkpoints {
            if cp.node >= self.nodes.len() {
                return malformed(format!(
                    "checkpoint {:?} references missing node {}",
                    cp.label, cp.node
                ));
            }
        }
        Ok(())
    }

    /// Total f32 element count across the constant pool (weights plus
    /// normalization parameters) — the artifact's payload-dominating term
    /// and the quantity channel specialization shrinks.
    pub fn const_elements(&self) -> usize {
        self.consts.iter().map(Tensor::len).sum()
    }
}
