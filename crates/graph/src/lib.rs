//! # hsconas-graph
//!
//! Deployment path for searched architectures: a typed dataflow graph IR,
//! declarative optimization patches, and a standalone compile/infer
//! artifact.
//!
//! The searched `(op, c)` genome is **lowered** ([`lower`]) from the live
//! supernet into an explicit graph, **optimized** ([`optimize`]) by four
//! patches — Conv+BN+ReLU fusion, channel-mask specialization (masked
//! channels are physically removed from weights, so the deployed GEMMs
//! are genuinely smaller), constant folding, and dead-node elimination —
//! and **serialized** ([`artifact`]) into a versioned, checksummed
//! `.hsart` file that infers without any supernet machinery.
//!
//! The pipeline's contract is *bit-identity*: for any genome, executing
//! the compiled graph produces logits `==` (f32 equality) to the masked
//! supernet forward on the same host, at any thread count and under any
//! `HSCONAS_KERNEL` selection. Three mechanisms carry that guarantee:
//!
//! 1. every convolution pins its GEMM kernel variant and blocking to the
//!    full-width shape recorded at lowering (`ref_gemm`), so shrinking the
//!    operands never flips the kernel selector;
//! 2. pruning only ever removes weight columns/rows that multiply
//!    exactly-zero activations (dropping `±0` addends under a fixed
//!    accumulation order is bit-preserving);
//! 3. batch-norm is fused as an *epilogue* with the identical per-channel
//!    arithmetic, never folded into weights.
//!
//! ## Quick start
//!
//! ```no_run
//! use hsconas_graph::{compile, execute, CompileOptions};
//! use hsconas_space::{Arch, NetworkSkeleton};
//! use hsconas_tensor::rng::SmallRng;
//! use hsconas_tensor::Tensor;
//!
//! # fn main() -> Result<(), hsconas_graph::GraphError> {
//! let skeleton = NetworkSkeleton::tiny(10);
//! let arch = Arch::widest(skeleton.num_layers());
//! let (artifact, stats) = compile(&skeleton, &arch, &CompileOptions::default())?;
//! let mut rng = SmallRng::new(7);
//! let x = Tensor::randn([1, 3, 32, 32], 1.0, &mut rng);
//! let logits = execute(&artifact.graph, &x)?;
//! assert_eq!(logits.shape().c, 10);
//! println!("fused {} convs, removed {} nodes", stats.fused, stats.removed);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod compare;
pub mod compile;
pub mod exec;
pub mod ir;
pub mod lower;
pub mod patch;

pub use artifact::{Artifact, ArtifactMeta};
pub use compare::{compare, compare_against, CompareReport, LayerReport};
pub use compile::{build_reference, compile, compile_from, CompileOptions, WARMUP_BATCH};
pub use exec::{execute, execute_traced, TracedRun};
pub use ir::{BnParams, BnScale, Checkpoint, Graph, GraphOp, Node, NodeShape, Outlet};
pub use lower::{lower, LayerPlan, Plan, PlanKind};
pub use patch::{fold, fuse, optimize, specialize, PatchStats};

use hsconas_ckpt::CkptError;
use hsconas_tensor::TensorError;

/// Errors from lowering, patching, execution, or artifact handling.
#[derive(Debug)]
pub enum GraphError {
    /// The supernet/genome pair could not be lowered.
    Lower {
        /// Human-readable reason.
        detail: String,
    },
    /// A specialization rewrite met a structure the plan did not describe.
    Specialize {
        /// Human-readable reason.
        detail: String,
    },
    /// Execution failed (shape mismatch, unevaluable node).
    Exec {
        /// Human-readable reason.
        detail: String,
    },
    /// An artifact failed strict validation or I/O.
    Artifact {
        /// Human-readable reason.
        detail: String,
    },
    /// The graph's internal structure is inconsistent.
    Malformed {
        /// Human-readable reason.
        detail: String,
    },
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// Payload encoding/decoding failed.
    Ckpt(CkptError),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Lower { detail } => write!(f, "lowering failed: {detail}"),
            GraphError::Specialize { detail } => write!(f, "specialization failed: {detail}"),
            GraphError::Exec { detail } => write!(f, "graph execution failed: {detail}"),
            GraphError::Artifact { detail } => write!(f, "artifact rejected: {detail}"),
            GraphError::Malformed { detail } => write!(f, "malformed graph: {detail}"),
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
            GraphError::Ckpt(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            GraphError::Ckpt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

impl From<CkptError> for GraphError {
    fn from(e: CkptError) -> Self {
        GraphError::Ckpt(e)
    }
}
