//! The `.hsart` deployment artifact: an optimized graph, its weights, and
//! the provenance needed to rebuild the reference supernet it must match.
//!
//! ## Envelope
//!
//! ```text
//! offset  size  field
//! 0       4     magic "HSAR"
//! 4       4     format version (u32 LE), currently 1
//! 8       8     payload length (u64 LE)
//! 16      8     FNV-1a checksum of the payload (u64 LE)
//! 24      …     payload (hsconas-ckpt Encoder stream)
//! ```
//!
//! Loading is strict: wrong magic, a foreign version, a length that does
//! not match the file, a checksum mismatch, an unknown op tag, trailing
//! payload bytes, or a graph that fails structural validation all reject
//! loudly with a [`GraphError::Artifact`] naming the reason — a truncated
//! or bit-flipped artifact can never limp into inference.

use std::path::Path;

use hsconas_ckpt::{fnv1a, write_atomic_bytes, Decoder, Encoder};
use hsconas_space::NetworkSkeleton;
use hsconas_tensor::Tensor;

use crate::ir::{BnParams, BnScale, Checkpoint, Graph, GraphOp, Node, NodeShape, Outlet};
use crate::GraphError;

/// Artifact envelope magic.
pub const MAGIC: [u8; 4] = *b"HSAR";
/// Current artifact format version.
pub const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: usize = 24;

/// Provenance: everything needed to deterministically rebuild the
/// reference supernet this artifact was compiled from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// The network skeleton.
    pub skeleton: NetworkSkeleton,
    /// The genome, in [`hsconas_space::Arch::encode`] form.
    pub genome: Vec<usize>,
    /// Seed for supernet weight initialization and warmup data.
    pub seed: u64,
    /// Warmup forward passes run before export (populates BN statistics).
    pub warmup_steps: usize,
}

/// A compiled model: optimized graph plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The optimized graph (topologically ordered).
    pub graph: Graph,
    /// Provenance metadata.
    pub meta: ArtifactMeta,
}

fn art_err(detail: String) -> GraphError {
    GraphError::Artifact { detail }
}

fn put_bn(e: &mut Encoder, bn: &BnParams) {
    e.put_usize(bn.gamma);
    e.put_usize(bn.beta);
    e.put_usize(bn.mean);
    match bn.scale {
        BnScale::Var { var, eps } => {
            e.put_u8(0);
            e.put_usize(var);
            e.put_f32(eps);
        }
        BnScale::Std { std } => {
            e.put_u8(1);
            e.put_usize(std);
        }
    }
}

fn get_bn(d: &mut Decoder) -> Result<BnParams, GraphError> {
    let gamma = d.get_usize()?;
    let beta = d.get_usize()?;
    let mean = d.get_usize()?;
    let scale = match d.get_u8()? {
        0 => BnScale::Var {
            var: d.get_usize()?,
            eps: d.get_f32()?,
        },
        1 => BnScale::Std {
            std: d.get_usize()?,
        },
        tag => return Err(art_err(format!("unknown bn-scale tag {tag}"))),
    };
    Ok(BnParams {
        gamma,
        beta,
        mean,
        scale,
    })
}

fn put_conv_params(e: &mut Encoder, p: &hsconas_tensor::conv::Conv2dParams) {
    e.put_usize(p.c_in);
    e.put_usize(p.c_out);
    e.put_usize(p.kernel);
    e.put_usize(p.stride);
    e.put_usize(p.pad);
    e.put_usize(p.groups);
}

fn get_conv_params(d: &mut Decoder) -> Result<hsconas_tensor::conv::Conv2dParams, GraphError> {
    Ok(hsconas_tensor::conv::Conv2dParams {
        c_in: d.get_usize()?,
        c_out: d.get_usize()?,
        kernel: d.get_usize()?,
        stride: d.get_usize()?,
        pad: d.get_usize()?,
        groups: d.get_usize()?,
    })
}

fn put_ref_gemm(e: &mut Encoder, r: &Option<(usize, usize, usize)>) {
    match r {
        Some((m, k, n)) => {
            e.put_bool(true);
            e.put_usize(*m);
            e.put_usize(*k);
            e.put_usize(*n);
        }
        None => e.put_bool(false),
    }
}

fn get_ref_gemm(d: &mut Decoder) -> Result<Option<(usize, usize, usize)>, GraphError> {
    Ok(if d.get_bool()? {
        Some((d.get_usize()?, d.get_usize()?, d.get_usize()?))
    } else {
        None
    })
}

fn put_op(e: &mut Encoder, op: &GraphOp) {
    match op {
        GraphOp::Input => e.put_u8(0),
        GraphOp::Const { value } => {
            e.put_u8(1);
            e.put_usize(*value);
        }
        GraphOp::Conv {
            params,
            weight,
            ref_gemm,
        } => {
            e.put_u8(2);
            put_conv_params(e, params);
            e.put_usize(*weight);
            put_ref_gemm(e, ref_gemm);
        }
        GraphOp::FusedConvBn {
            params,
            weight,
            bn,
            relu,
            ref_gemm,
        } => {
            e.put_u8(3);
            put_conv_params(e, params);
            e.put_usize(*weight);
            put_bn(e, bn);
            e.put_bool(*relu);
            put_ref_gemm(e, ref_gemm);
        }
        GraphOp::BatchNorm { bn } => {
            e.put_u8(4);
            put_bn(e, bn);
        }
        GraphOp::Relu => e.put_u8(5),
        GraphOp::ChannelShuffle { groups } => {
            e.put_u8(6);
            e.put_usize(*groups);
        }
        GraphOp::SliceChannels { start, len } => {
            e.put_u8(7);
            e.put_usize(*start);
            e.put_usize(*len);
        }
        GraphOp::Concat => e.put_u8(8),
        GraphOp::InterleaveMasked { keep } => {
            e.put_u8(9);
            e.put_usize(*keep);
        }
        GraphOp::PadChannels { to } => {
            e.put_u8(10);
            e.put_usize(*to);
        }
        GraphOp::AvgPool {
            kernel,
            stride,
            pad,
        } => {
            e.put_u8(11);
            e.put_usize(*kernel);
            e.put_usize(*stride);
            e.put_usize(*pad);
        }
        GraphOp::GlobalAvgPool => e.put_u8(12),
        GraphOp::AdaptChannels { c_out } => {
            e.put_u8(13);
            e.put_usize(*c_out);
        }
        GraphOp::MaskChannels { keep } => {
            e.put_u8(14);
            e.put_usize(*keep);
        }
        GraphOp::Linear { weight, bias } => {
            e.put_u8(15);
            e.put_usize(*weight);
            e.put_usize(*bias);
        }
    }
}

fn get_op(d: &mut Decoder) -> Result<GraphOp, GraphError> {
    Ok(match d.get_u8()? {
        0 => GraphOp::Input,
        1 => GraphOp::Const {
            value: d.get_usize()?,
        },
        2 => GraphOp::Conv {
            params: get_conv_params(d)?,
            weight: d.get_usize()?,
            ref_gemm: get_ref_gemm(d)?,
        },
        3 => GraphOp::FusedConvBn {
            params: get_conv_params(d)?,
            weight: d.get_usize()?,
            bn: get_bn(d)?,
            relu: d.get_bool()?,
            ref_gemm: get_ref_gemm(d)?,
        },
        4 => GraphOp::BatchNorm { bn: get_bn(d)? },
        5 => GraphOp::Relu,
        6 => GraphOp::ChannelShuffle {
            groups: d.get_usize()?,
        },
        7 => GraphOp::SliceChannels {
            start: d.get_usize()?,
            len: d.get_usize()?,
        },
        8 => GraphOp::Concat,
        9 => GraphOp::InterleaveMasked {
            keep: d.get_usize()?,
        },
        10 => GraphOp::PadChannels { to: d.get_usize()? },
        11 => GraphOp::AvgPool {
            kernel: d.get_usize()?,
            stride: d.get_usize()?,
            pad: d.get_usize()?,
        },
        12 => GraphOp::GlobalAvgPool,
        13 => GraphOp::AdaptChannels {
            c_out: d.get_usize()?,
        },
        14 => GraphOp::MaskChannels {
            keep: d.get_usize()?,
        },
        15 => GraphOp::Linear {
            weight: d.get_usize()?,
            bias: d.get_usize()?,
        },
        tag => return Err(art_err(format!("unknown op tag {tag}"))),
    })
}

/// Serializes an artifact to its byte representation.
pub fn to_bytes(artifact: &Artifact) -> Vec<u8> {
    let mut e = Encoder::new();
    // provenance
    let sk = &artifact.meta.skeleton;
    e.put_usize(sk.input_resolution);
    e.put_usize(sk.input_channels);
    e.put_usize(sk.stem_channels);
    for &c in &sk.stage_channels {
        e.put_usize(c);
    }
    for &d in &sk.stage_depths {
        e.put_usize(d);
    }
    e.put_usize(sk.head_channels);
    e.put_usize(sk.num_classes);
    e.put_usize(artifact.meta.genome.len());
    for &gene in &artifact.meta.genome {
        e.put_usize(gene);
    }
    e.put_u64(artifact.meta.seed);
    e.put_usize(artifact.meta.warmup_steps);

    // graph
    let g = &artifact.graph;
    e.put_usize(g.input_c);
    e.put_usize(g.input_h);
    e.put_usize(g.input_w);
    e.put_usize(g.output);
    e.put_usize(g.checkpoints.len());
    for cp in &g.checkpoints {
        e.put_str(&cp.label);
        e.put_usize(cp.node);
        e.put_usize(cp.logical_c);
    }
    e.put_usize(g.consts.len());
    for t in &g.consts {
        let s = t.shape();
        e.put_usize(s.n);
        e.put_usize(s.c);
        e.put_usize(s.h);
        e.put_usize(s.w);
        e.put_f32_slice(t.data());
    }
    e.put_usize(g.nodes.len());
    for node in &g.nodes {
        put_op(&mut e, &node.op);
        e.put_usize(node.inputs.len());
        for outlet in &node.inputs {
            e.put_usize(outlet.node);
            e.put_usize(outlet.slot);
        }
        e.put_usize(node.shape.c);
        e.put_usize(node.shape.h);
        e.put_usize(node.shape.w);
    }
    let payload = e.finish();

    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

/// Parses an artifact, rejecting any malformed envelope or payload.
///
/// # Errors
///
/// Returns [`GraphError::Artifact`] naming the first defect found.
pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, GraphError> {
    if bytes.len() < HEADER_LEN {
        return Err(art_err(format!(
            "file is {} bytes, smaller than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(art_err(format!(
            "bad magic {:02x?}, expected {:02x?} (\"HSAR\")",
            &bytes[0..4],
            MAGIC
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(art_err(format!(
            "format version {version} is not supported (this build reads version {FORMAT_VERSION})"
        )));
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(art_err(format!(
            "payload is {} bytes but the header promises {payload_len} (truncated or padded file)",
            payload.len()
        )));
    }
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let actual = fnv1a(payload);
    if checksum != actual {
        return Err(art_err(format!(
            "payload checksum {actual:#018x} does not match header {checksum:#018x} (corrupted file)"
        )));
    }

    let mut d = Decoder::new(payload);
    let input_resolution = d.get_usize()?;
    let input_channels = d.get_usize()?;
    let stem_channels = d.get_usize()?;
    let mut stage_channels = [0usize; 4];
    for c in &mut stage_channels {
        *c = d.get_usize()?;
    }
    let mut stage_depths = [0usize; 4];
    for depth in &mut stage_depths {
        *depth = d.get_usize()?;
    }
    let skeleton = NetworkSkeleton {
        input_resolution,
        input_channels,
        stem_channels,
        stage_channels,
        stage_depths,
        head_channels: d.get_usize()?,
        num_classes: d.get_usize()?,
    };
    let genome_len = d.get_usize()?;
    let mut genome = Vec::with_capacity(genome_len.min(1 << 16));
    for _ in 0..genome_len {
        genome.push(d.get_usize()?);
    }
    let seed = d.get_u64()?;
    let warmup_steps = d.get_usize()?;

    let mut graph = Graph::new(d.get_usize()?, d.get_usize()?, d.get_usize()?);
    graph.output = d.get_usize()?;
    let cp_count = d.get_usize()?;
    for _ in 0..cp_count {
        graph.checkpoints.push(Checkpoint {
            label: d.get_str()?,
            node: d.get_usize()?,
            logical_c: d.get_usize()?,
        });
    }
    let const_count = d.get_usize()?;
    for i in 0..const_count {
        let (n, c, h, w) = (
            d.get_usize()?,
            d.get_usize()?,
            d.get_usize()?,
            d.get_usize()?,
        );
        let data = d.get_f32_vec()?;
        let t = Tensor::from_vec([n, c, h, w], data)
            .map_err(|e| art_err(format!("constant {i}: {e}")))?;
        graph.consts.push(t);
    }
    let node_count = d.get_usize()?;
    for id in 0..node_count {
        let op = get_op(&mut d)?;
        let input_count = d.get_usize()?;
        let mut inputs = Vec::with_capacity(input_count.min(1 << 10));
        for _ in 0..input_count {
            let node = d.get_usize()?;
            let slot = d.get_usize()?;
            if node >= id {
                return Err(art_err(format!(
                    "node {id} consumes node {node}: artifact graphs must be topologically ordered"
                )));
            }
            inputs.push(Outlet { node, slot });
        }
        let shape = NodeShape {
            c: d.get_usize()?,
            h: d.get_usize()?,
            w: d.get_usize()?,
        };
        graph.nodes.push(Node { op, inputs, shape });
    }
    d.expect_end()?;
    graph
        .validate()
        .map_err(|e| art_err(format!("structural validation failed: {e}")))?;

    Ok(Artifact {
        graph,
        meta: ArtifactMeta {
            skeleton,
            genome,
            seed,
            warmup_steps,
        },
    })
}

/// Writes the artifact atomically (temp file + rename).
///
/// # Errors
///
/// Returns [`GraphError`] on I/O failure.
pub fn save(artifact: &Artifact, path: &Path) -> Result<(), GraphError> {
    write_atomic_bytes(path, &to_bytes(artifact))?;
    Ok(())
}

/// Reads and strictly validates an artifact from disk.
///
/// # Errors
///
/// Returns [`GraphError`] on I/O failure or any envelope/payload defect.
pub fn load(path: &Path) -> Result<Artifact, GraphError> {
    let bytes =
        std::fs::read(path).map_err(|e| art_err(format!("reading {}: {e}", path.display())))?;
    from_bytes(&bytes)
}
