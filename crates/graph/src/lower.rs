//! Lowering: a supernet plus one sampled genome → a typed [`Graph`].
//!
//! The lowered graph reproduces the masked supernet forward *structurally*:
//! every layer of the selected path becomes explicit nodes (including the
//! `MaskChannels` node realizing the gene's `I^l` mask), and every
//! convolution records the full-width per-group GEMM shape it runs here as
//! `ref_gemm`, so later channel specialization can shrink the operands
//! without changing which kernel variant or blocking the GEMM dispatches
//! to — the bit-exactness contract of the whole pipeline.
//!
//! Alongside the graph a [`Plan`] side-table records which node ids play
//! which structural role in each layer (slices, branch convs, the
//! concat/shuffle/mask tail), because the optimization patches rewrite by
//! role, not by pattern matching.

use hsconas_nn::{Layer, LayerExport};
use hsconas_space::{Arch, OpKind};
use hsconas_supernet::Supernet;
use hsconas_tensor::Tensor;

use crate::ir::{BnParams, BnScale, Checkpoint, Graph, GraphOp, NodeShape, Outlet};
use crate::GraphError;

/// Structural roles of one lowered layer, consumed by the specialization
/// patch.
#[derive(Debug, Clone)]
pub enum PlanKind {
    /// Stride-1 skip: no nodes at all (identity, unmasked).
    SkipS1,
    /// Stride-2 skip: pool → adapt → mask.
    SkipS2 {
        /// The `AdaptChannels` node.
        adapt: usize,
        /// The trailing `MaskChannels` node.
        mask: usize,
    },
    /// A shuffle unit (standard or Xception, either stride).
    Unit {
        /// The node feeding the unit.
        input: usize,
        /// Stride-1 only: the left-half passthrough slice.
        slice_l: Option<usize>,
        /// Stride-1 only: the right-half branch entry slice.
        slice_r: Option<usize>,
        /// Conv node ids of the stride-2 left branch, in order.
        left_convs: Vec<usize>,
        /// Conv node ids of the right branch, in order.
        right_convs: Vec<usize>,
        /// The channel concat joining the branches.
        concat: usize,
        /// The `ChannelShuffle` after the concat.
        shuffle: usize,
        /// The trailing `MaskChannels` node.
        mask: usize,
    },
}

/// One layer's lowering record.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    /// The gene's post-mask width (`scale.apply(c_out)`, or `c_out` for a
    /// stride-1 skip, which is never masked).
    pub keep: usize,
    /// Slot input width.
    pub c_in: usize,
    /// Slot maximum output width `S^l`.
    pub c_out: usize,
    /// Slot stride.
    pub stride: usize,
    /// Structural roles.
    pub kind: PlanKind,
}

/// Side-table produced by [`lower`] and consumed by the patch pipeline.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per mixed layer, in network order.
    pub layers: Vec<LayerPlan>,
    /// The head's pointwise conv node (input-pruned during specialization).
    pub head_conv: usize,
}

fn lower_err(detail: String) -> GraphError {
    GraphError::Lower { detail }
}

/// Interns BN parameters: gamma/beta arrive as `[1,C,1,1]` tensors, the
/// running statistics as plain vectors.
fn intern_bn(
    g: &mut Graph,
    gamma: Tensor,
    beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    eps: f32,
) -> Result<BnParams, GraphError> {
    let c = gamma.shape().c;
    let mean = Tensor::from_vec([1, c, 1, 1], running_mean)?;
    let var = Tensor::from_vec([1, c, 1, 1], running_var)?;
    Ok(BnParams {
        gamma: g.add_const(gamma),
        beta: g.add_const(beta),
        mean: g.add_const(mean),
        scale: BnScale::Var {
            var: g.add_const(var),
            eps,
        },
    })
}

/// Lowers a straight-line chain of exported layers starting from node
/// `cur` with per-image shape `shape`. Conv node ids are appended to
/// `convs` in chain order. Returns the final node and shape.
fn lower_chain(
    g: &mut Graph,
    exports: Vec<LayerExport>,
    mut cur: usize,
    mut shape: NodeShape,
    convs: &mut Vec<usize>,
) -> Result<(usize, NodeShape), GraphError> {
    for export in exports {
        match export {
            LayerExport::Conv { params, weight } => {
                if params.c_in != shape.c {
                    return Err(lower_err(format!(
                        "conv expects {} input channels, chain carries {}",
                        params.c_in, shape.c
                    )));
                }
                let (oh, ow) = params.out_hw(shape.h, shape.w);
                // Full-width per-group GEMM shape: pins kernel selection
                // for any specialized (smaller) version of this conv.
                let m = params.c_out / params.groups;
                let k = (params.c_in / params.groups) * params.kernel * params.kernel;
                let n = oh * ow;
                let weight = g.add_const(weight);
                shape = NodeShape::new(params.c_out, oh, ow);
                cur = g.add(
                    GraphOp::Conv {
                        params,
                        weight,
                        ref_gemm: Some((m, k, n)),
                    },
                    vec![Outlet::of(cur)],
                    shape,
                );
                convs.push(cur);
            }
            LayerExport::BatchNorm {
                gamma,
                beta,
                running_mean,
                running_var,
                eps,
            } => {
                let bn = intern_bn(g, gamma, beta, running_mean, running_var, eps)?;
                cur = g.add(GraphOp::BatchNorm { bn }, vec![Outlet::of(cur)], shape);
            }
            LayerExport::Relu => {
                cur = g.add(GraphOp::Relu, vec![Outlet::of(cur)], shape);
            }
            LayerExport::ChannelShuffle { groups } => {
                cur = g.add(
                    GraphOp::ChannelShuffle { groups },
                    vec![Outlet::of(cur)],
                    shape,
                );
            }
            LayerExport::GlobalAvgPool => {
                shape = NodeShape::new(shape.c, 1, 1);
                cur = g.add(GraphOp::GlobalAvgPool, vec![Outlet::of(cur)], shape);
            }
            LayerExport::Linear { weight, bias } => {
                let (out_features, in_features) = (weight.shape().n, weight.shape().c);
                if shape.c != in_features || shape.h != 1 || shape.w != 1 {
                    return Err(lower_err(format!(
                        "linear expects [{in_features}, 1, 1], chain carries [{}, {}, {}]",
                        shape.c, shape.h, shape.w
                    )));
                }
                let weight = g.add_const(weight);
                let bias = g.add_const(bias);
                shape = NodeShape::new(out_features, 1, 1);
                cur = g.add(
                    GraphOp::Linear { weight, bias },
                    vec![Outlet::of(cur)],
                    shape,
                );
            }
            other => {
                return Err(lower_err(format!(
                    "unsupported layer {other:?} in a straight-line chain"
                )));
            }
        }
    }
    Ok((cur, shape))
}

/// Lowers one exported shuffle unit. Returns the trailing mask node, the
/// output shape, and the unit's [`PlanKind`].
#[allow(clippy::too_many_arguments)] // one call site; mirrors the export layout
fn lower_unit(
    g: &mut Graph,
    input: usize,
    in_shape: NodeShape,
    stride: usize,
    c_in: usize,
    c_out: usize,
    left: Vec<LayerExport>,
    right: Vec<LayerExport>,
    keep: usize,
) -> Result<(usize, NodeShape, PlanKind), GraphError> {
    if in_shape.c != c_in {
        return Err(lower_err(format!(
            "unit expects {c_in} input channels, chain carries {}",
            in_shape.c
        )));
    }
    let mut left_convs = Vec::new();
    let mut right_convs = Vec::new();
    let (left_end, left_shape, slice_l, slice_r, right_end, right_shape);
    if stride == 1 {
        let half = c_in / 2;
        let sl = g.add(
            GraphOp::SliceChannels {
                start: 0,
                len: half,
            },
            vec![Outlet::of(input)],
            NodeShape::new(half, in_shape.h, in_shape.w),
        );
        let sr = g.add(
            GraphOp::SliceChannels {
                start: half,
                len: c_in - half,
            },
            vec![Outlet::of(input)],
            NodeShape::new(c_in - half, in_shape.h, in_shape.w),
        );
        let (re, rs) = lower_chain(
            g,
            right,
            sr,
            NodeShape::new(c_in - half, in_shape.h, in_shape.w),
            &mut right_convs,
        )?;
        left_end = sl;
        left_shape = NodeShape::new(half, in_shape.h, in_shape.w);
        slice_l = Some(sl);
        slice_r = Some(sr);
        right_end = re;
        right_shape = rs;
    } else {
        let (le, ls) = lower_chain(g, left, input, in_shape, &mut left_convs)?;
        let (re, rs) = lower_chain(g, right, input, in_shape, &mut right_convs)?;
        left_end = le;
        left_shape = ls;
        slice_l = None;
        slice_r = None;
        right_end = re;
        right_shape = rs;
    }
    if left_shape.h != right_shape.h || left_shape.w != right_shape.w {
        return Err(lower_err(format!(
            "unit branch resolutions diverge: {left_shape:?} vs {right_shape:?}"
        )));
    }
    let out_c = left_shape.c + right_shape.c;
    if out_c != c_out {
        return Err(lower_err(format!(
            "unit branches produce {out_c} channels, slot expects {c_out}"
        )));
    }
    let out_shape = NodeShape::new(out_c, left_shape.h, left_shape.w);
    let concat = g.add(
        GraphOp::Concat,
        vec![Outlet::of(left_end), Outlet::of(right_end)],
        out_shape,
    );
    let shuffle = g.add(
        GraphOp::ChannelShuffle { groups: 2 },
        vec![Outlet::of(concat)],
        out_shape,
    );
    let mask = g.add(
        GraphOp::MaskChannels { keep },
        vec![Outlet::of(shuffle)],
        out_shape,
    );
    Ok((
        mask,
        out_shape,
        PlanKind::Unit {
            input,
            slice_l,
            slice_r,
            left_convs,
            right_convs,
            concat,
            shuffle,
            mask,
        },
    ))
}

/// Lowers the path selected by `arch` through `net` into a full-width
/// graph plus its [`Plan`].
///
/// # Errors
///
/// Returns [`GraphError::Lower`] if the genome does not fit the supernet
/// or an exported structure is not one the lowering understands.
pub fn lower(net: &Supernet, arch: &Arch) -> Result<(Graph, Plan), GraphError> {
    net.check_arch(arch).map_err(|e| lower_err(e.to_string()))?;
    let sk = net.skeleton().clone();
    let mut g = Graph::new(sk.input_channels, sk.input_resolution, sk.input_resolution);
    let input = g.add(
        GraphOp::Input,
        Vec::new(),
        NodeShape::new(sk.input_channels, sk.input_resolution, sk.input_resolution),
    );

    // stem
    let mut stem_exports = Vec::new();
    net.stem().export(&mut stem_exports);
    let mut stem_convs = Vec::new();
    let (mut cur, mut shape) = lower_chain(
        &mut g,
        stem_exports,
        input,
        NodeShape::new(sk.input_channels, sk.input_resolution, sk.input_resolution),
        &mut stem_convs,
    )?;
    g.checkpoints.push(Checkpoint {
        label: "stem".into(),
        node: cur,
        logical_c: shape.c,
    });

    // mixed layers
    let mut layers = Vec::with_capacity(arch.len());
    for (l, gene) in arch.genes().iter().enumerate() {
        let ml = &net.mixed_layers()[l];
        let (c_in, c_out, stride) = (ml.c_in(), ml.c_out(), ml.stride());
        let mut exports = Vec::new();
        ml.candidate(gene.op.index()).export(&mut exports);
        if exports.len() != 1 {
            return Err(lower_err(format!(
                "layer {l}: candidate exported {} structures, expected 1",
                exports.len()
            )));
        }
        let keep = if gene.op == OpKind::Skip && stride == 1 {
            c_out
        } else {
            gene.scale.apply(c_out)
        };
        let kind = match exports.remove(0) {
            LayerExport::Identity => PlanKind::SkipS1,
            LayerExport::DownsampleSkip { c_out: skip_out } => {
                let (oh, ow) = ((shape.h - 2) / 2 + 1, (shape.w - 2) / 2 + 1);
                let pool = g.add(
                    GraphOp::AvgPool {
                        kernel: 2,
                        stride: 2,
                        pad: 0,
                    },
                    vec![Outlet::of(cur)],
                    NodeShape::new(shape.c, oh, ow),
                );
                let adapt = g.add(
                    GraphOp::AdaptChannels { c_out: skip_out },
                    vec![Outlet::of(pool)],
                    NodeShape::new(skip_out, oh, ow),
                );
                let mask = g.add(
                    GraphOp::MaskChannels { keep },
                    vec![Outlet::of(adapt)],
                    NodeShape::new(skip_out, oh, ow),
                );
                cur = mask;
                shape = NodeShape::new(skip_out, oh, ow);
                PlanKind::SkipS2 { adapt, mask }
            }
            LayerExport::ShuffleUnit {
                stride: s,
                c_in: uc_in,
                c_out: uc_out,
                left,
                right,
            } => {
                let (mask, out_shape, kind) =
                    lower_unit(&mut g, cur, shape, s, uc_in, uc_out, left, right, keep)?;
                cur = mask;
                shape = out_shape;
                kind
            }
            other => {
                return Err(lower_err(format!(
                    "layer {l}: unsupported candidate export {other:?}"
                )));
            }
        };
        layers.push(LayerPlan {
            keep,
            c_in,
            c_out,
            stride,
            kind,
        });
        g.checkpoints.push(Checkpoint {
            label: format!("layer{l}"),
            node: cur,
            logical_c: c_out,
        });
    }

    // head
    let mut head_exports = Vec::new();
    net.head().export(&mut head_exports);
    let mut head_convs = Vec::new();
    let (logits, logits_shape) = lower_chain(&mut g, head_exports, cur, shape, &mut head_convs)?;
    let &head_conv = head_convs
        .first()
        .ok_or_else(|| lower_err("head exported no convolution".into()))?;
    g.output = logits;
    g.checkpoints.push(Checkpoint {
        label: "logits".into(),
        node: logits,
        logical_c: logits_shape.c,
    });
    g.validate()?;
    Ok((g, Plan { layers, head_conv }))
}
