//! Criterion benchmarks, one per paper artifact, measuring the runtime of
//! each experiment harness's core computation at reduced sampling budgets.
//!
//! Run with `cargo bench -p hsconas-bench`. These complement the
//! `src/bin/*` binaries (which regenerate the actual tables/figures): the
//! benches document how expensive each stage of the pipeline is, which is
//! itself one of the paper's claims (hardware modeling is cheap, search is
//! cheap once the supernet exists).

use criterion::{criterion_group, criterion_main, Criterion};
use hsconas_bench::{ablation, fig2, fig3, fig4, fig5, fig6, table1};
use hsconas_evo::EvolutionConfig;
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_latency::LatencyPredictor;
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Fig. 2: cost-model + simulated-measurement throughput.
fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_scatter_50_archs", |b| {
        b.iter(|| black_box(fig2::run(1, 50)))
    });
}

/// Fig. 3: latency predictor calibration and validation.
fn bench_fig3(c: &mut Criterion) {
    let config = fig3::Fig3Config {
        calibration_archs: 20,
        repeats: 2,
        validation_archs: 20,
    };
    c.bench_function("fig3_calibrate_and_validate", |b| {
        b.iter(|| black_box(fig3::run(1, &config)))
    });
    // single-prediction latency (the quantity that replaces on-device
    // measurement inside the search loop)
    let space = SearchSpace::hsconas_a();
    let mut rng = StdRng::seed_from_u64(7);
    let predictor =
        LatencyPredictor::calibrate(DeviceSpec::edge_xavier(), &space, 20, 2, &mut rng).unwrap();
    let archs = space.sample_n(64, &mut rng);
    let mut i = 0;
    c.bench_function("fig3_single_prediction", |b| {
        b.iter(|| {
            i = (i + 1) % archs.len();
            black_box(predictor.predict_us(&archs[i]).unwrap())
        })
    });
    // versus an actual simulated on-device measurement
    let device = DeviceSpec::edge_xavier();
    let nets: Vec<_> = archs
        .iter()
        .map(|a| lower_arch(space.skeleton(), a).unwrap())
        .collect();
    let mut j = 0;
    c.bench_function("fig3_on_device_measurement", |b| {
        b.iter(|| {
            j = (j + 1) % nets.len();
            black_box(device.measure_network(&nets[j], &mut rng))
        })
    });
}

/// Fig. 4: uniform-vs-dynamic scaling comparison at small budget.
fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_uniform_vs_dynamic", |b| {
        b.iter(|| black_box(fig4::run(1, 3, 9)))
    });
}

/// Fig. 5: progressive shrinking.
fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_progressive_shrinking", |b| {
        b.iter(|| black_box(fig5::run(1, 5)))
    });
}

/// Fig. 6: one EA search on the edge device.
fn bench_fig6(c: &mut Criterion) {
    let config = EvolutionConfig {
        generations: 5,
        population: 16,
        parents: 6,
        ..Default::default()
    };
    c.bench_function("fig6_evolutionary_search", |b| {
        b.iter(|| black_box(fig6::run_evolution(1, config)))
    });
}

/// Table I: baseline rows (simulating all 11 baselines on 3 devices).
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_baseline_rows", |b| {
        b.iter(|| black_box(hsconas::report::baseline_rows()))
    });
    let fast = hsconas::PipelineConfig::fast_test();
    let mut group = c.benchmark_group("table1_full");
    group.sample_size(10);
    group.bench_function("table1_fast_budget", |b| {
        b.iter(|| black_box(table1::run(1, &fast)))
    });
    group.finish();
}

/// Ablations: bias on/off and search strategies.
fn bench_ablations(c: &mut Criterion) {
    c.bench_function("ablation_bias", |b| {
        b.iter(|| black_box(ablation::bias(1, 10)))
    });
    c.bench_function("ablation_search_strategies", |b| {
        b.iter(|| black_box(ablation::search(1, 60)))
    });
}

/// Extensions: energy-constrained search and batch sweep.
fn bench_extensions(c: &mut Criterion) {
    let small = EvolutionConfig {
        generations: 4,
        population: 12,
        parents: 4,
        ..Default::default()
    };
    c.bench_function("extension_energy_search", |b| {
        b.iter(|| black_box(hsconas_bench::extension_energy::run(1, small)))
    });
    c.bench_function("extension_batch_sweep", |b| {
        b.iter(|| black_box(hsconas_bench::extension_batch::run()))
    });
    c.bench_function("ablation_proxy_guidance", |b| {
        b.iter(|| black_box(hsconas_bench::ablation_proxy::run(1, small)))
    });
}

/// Core-kernel micro-benchmarks backing the harness numbers.
fn bench_kernels(c: &mut Criterion) {
    let space = SearchSpace::hsconas_a();
    let mut rng = StdRng::seed_from_u64(3);
    let archs = space.sample_n(64, &mut rng);
    let mut i = 0;
    c.bench_function("space_sample", |b| {
        b.iter(|| black_box(space.sample(&mut rng)))
    });
    c.bench_function("space_arch_cost", |b| {
        b.iter(|| {
            i = (i + 1) % archs.len();
            black_box(hsconas_space::cost::arch_cost(space.skeleton(), &archs[i]).unwrap())
        })
    });
    c.bench_function("hwsim_lower_arch", |b| {
        b.iter(|| {
            i = (i + 1) % archs.len();
            black_box(lower_arch(space.skeleton(), &archs[i]).unwrap())
        })
    });
    let _ = Arch::widest(20);
}

/// GEMM throughput on conv-shaped problems, A/B'd across every kernel
/// variant the host supports (direct, packed scalar, packed AVX2+FMA),
/// reported both as criterion timings and as GFLOP/s (2·m·k·n FLOPs/call).
fn bench_matmul_tiled(c: &mut Criterion) {
    use hsconas_tensor::kernels::{gemm_with, Op, Variant};
    use std::time::Instant;
    let mut variants = vec![Variant::Direct, Variant::Scalar];
    if Variant::Avx2.is_available() {
        variants.push(Variant::Avx2);
    }
    // (m, k, n): output-channel panel × im2col rows × output pixels — the
    // shapes the supernet's 3x3 convolutions actually lower to.
    for (m, k, n) in [(32, 144, 576), (128, 256, 128)] {
        let mut rng = hsconas_tensor::rng::SmallRng::new(5);
        let a: Vec<f32> = (0..m * k).map(|_| rng.next_f32() - 0.5).collect();
        let b_mat: Vec<f32> = (0..k * n).map(|_| rng.next_f32() - 0.5).collect();
        let mut out = vec![0.0f32; m * n];
        for &variant in &variants {
            let name = variant.name();
            c.bench_function(&format!("matmul_{name}_{m}x{k}x{n}"), |bch| {
                bch.iter(|| {
                    gemm_with(
                        variant,
                        Op::Ab,
                        black_box(&a),
                        black_box(&b_mat),
                        black_box(&mut out),
                        m,
                        k,
                        n,
                        false,
                    );
                })
            });
            // A direct GFLOP/s figure for the PR record.
            let reps = 200;
            let start = Instant::now();
            for _ in 0..reps {
                gemm_with(
                    variant,
                    Op::Ab,
                    black_box(&a),
                    black_box(&b_mat),
                    black_box(&mut out),
                    m,
                    k,
                    n,
                    false,
                );
            }
            let secs = start.elapsed().as_secs_f64();
            let gflops = (2.0 * (m * k * n * reps) as f64) / secs / 1e9;
            println!("matmul_{name}_{m}x{k}x{n}: {gflops:.2} GFLOP/s");
        }
    }
}

/// Batch-parallel convolution (forward + backward) at 1 worker vs the
/// process default, on a batch big enough to clear the fan-out threshold.
fn bench_conv2d_batch_parallel(c: &mut Criterion) {
    use hsconas_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dParams};
    use hsconas_tensor::Tensor;
    let params = Conv2dParams {
        c_in: 16,
        c_out: 32,
        kernel: 3,
        stride: 1,
        pad: 1,
        groups: 1,
    };
    let mut rng = hsconas_tensor::rng::SmallRng::new(9);
    let input = Tensor::randn([8, 16, 24, 24], 1.0, &mut rng);
    let weight = Tensor::randn(params.weight_shape(), 0.1, &mut rng);
    let out = conv2d_forward(&input, &weight, &params).unwrap();
    let grad_out = Tensor::full(out.shape(), 1.0);
    for (label, threads) in [("1thread", 1usize), ("default", 0usize)] {
        hsconas_par::set_default_threads(threads);
        c.bench_function(&format!("conv2d_fwd_batch8_{label}"), |b| {
            b.iter(|| black_box(conv2d_forward(&input, &weight, &params).unwrap()))
        });
        c.bench_function(&format!("conv2d_bwd_batch8_{label}"), |b| {
            b.iter(|| black_box(conv2d_backward(&input, &weight, &grad_out, &params).unwrap()))
        });
    }
    hsconas_par::set_default_threads(0);
}

/// One EA generation's worth of candidate evaluations, serial vs fanned
/// out over the worker pool, reported in archs/sec.
fn bench_ea_generation_parallel(c: &mut Criterion) {
    use hsconas_evo::{Evaluation, EvoError, Objective, ParallelObjective};
    use std::time::Instant;
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let score = {
        let space = space.clone();
        move |arch: &Arch| -> Result<Evaluation, EvoError> {
            let net = lower_arch(space.skeleton(), arch).map_err(|e| EvoError::Objective {
                detail: e.to_string(),
            })?;
            let latency_ms = device.network_time_us(&net) / 1000.0;
            let cost =
                hsconas_space::cost::arch_cost(space.skeleton(), arch).map_err(EvoError::Space)?;
            let accuracy = 60.0 + 10.0 * (cost.total_flops() / 1e8).tanh();
            Ok(Evaluation {
                score: accuracy - 20.0 * (latency_ms / 30.0 - 1.0).abs(),
                accuracy,
                latency_ms,
            })
        }
    };
    let mut rng = StdRng::seed_from_u64(13);
    let population = space.sample_n(50, &mut rng);
    for (label, threads) in [("serial", 1usize), ("parallel_default", 0usize)] {
        let mut objective = ParallelObjective::new(score.clone(), threads);
        c.bench_function(&format!("ea_generation_50archs_{label}"), |b| {
            b.iter(|| black_box(objective.evaluate_batch(&population).unwrap()))
        });
        let reps = 20;
        let start = Instant::now();
        for _ in 0..reps {
            black_box(objective.evaluate_batch(&population).unwrap());
        }
        let per_sec = (population.len() * reps) as f64 / start.elapsed().as_secs_f64();
        println!("ea_generation_50archs_{label}: {per_sec:.0} archs/sec");
    }
}

/// Population accuracy-proxy evaluation against the real supernet with the
/// prefix-activation cache off vs on — the memory-planning headline. The
/// population is an EA-generation shape (an elite plus single-gene
/// mutants), evaluated in lexicographic genome order as the evo scheduler
/// would submit it. Also prints forwards/sec and the cache hit rate.
fn bench_population_eval_prefix_cache(c: &mut Criterion) {
    use hsconas_data::SyntheticDataset;
    use hsconas_supernet::{Supernet, SupernetTrainer, TrainConfig};
    use hsconas_tensor::rng::SmallRng;
    use std::time::Instant;

    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, 17);
    let mut rng = SmallRng::new(18);
    let net = Supernet::build(space.skeleton(), &mut rng).unwrap();
    let mut trainer = SupernetTrainer::new(net, TrainConfig::quick_test());
    let mut train_rng = SmallRng::new(19);
    trainer
        .train_steps(&space, &data, 10, 0.05, &mut train_rng)
        .unwrap();

    // Elite + 12 single-gene mutants, sorted lexicographically (what
    // MemoObjective's prefix-locality schedule feeds the oracle).
    let mut arch_rng = StdRng::seed_from_u64(20);
    let elite = Arch::widest(4);
    let mut population = vec![elite.clone()];
    for i in 0..12 {
        let donor = space.sample(&mut arch_rng);
        let layer = i % 4;
        let mut mutant = elite.clone();
        mutant.set_gene(layer, donor.genes()[layer]).unwrap();
        population.push(mutant);
    }
    population.sort_by_key(|a| a.encode());
    population.dedup_by_key(|a| a.encode());

    let eval_batches = 2;
    let mut group = c.benchmark_group("population_eval");
    group.sample_size(10);
    for (label, cache) in [("cache_off", false), ("cache_on", true)] {
        trainer.set_prefix_cache_enabled(cache);
        group.bench_function(&format!("population_eval_{label}"), |b| {
            b.iter(|| {
                // Each iteration is an independent population sweep.
                trainer.clear_prefix_cache();
                for arch in &population {
                    black_box(trainer.evaluate(arch, &data, eval_batches).unwrap());
                }
            })
        });
        // Headline numbers for the PR record: archs/sec and forwards/sec
        // (each evaluation runs 8 recalibration + `eval_batches` forwards).
        trainer.clear_prefix_cache();
        let reps = 10;
        let start = Instant::now();
        for _ in 0..reps {
            trainer.clear_prefix_cache();
            for arch in &population {
                black_box(trainer.evaluate(arch, &data, eval_batches).unwrap());
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let evals = (population.len() * reps) as f64;
        let forwards = evals * (8 + eval_batches) as f64;
        println!(
            "population_eval_{label}: {:.1} archs/sec, {:.1} equivalent forwards/sec",
            evals / secs,
            forwards / secs
        );
        if let Some(stats) = trainer.prefix_cache_stats() {
            println!(
                "population_eval_{label}: hit rate {:.2}, layers skipped {}",
                stats.hit_rate(),
                stats.layers_skipped
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_table1,
    bench_ablations,
    bench_extensions,
    bench_kernels,
    bench_matmul_tiled,
    bench_conv2d_batch_parallel,
    bench_ea_generation_parallel,
    bench_population_eval_prefix_cache
);
criterion_main!(benches);
