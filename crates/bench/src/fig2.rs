//! Fig. 2 reproduction: architectures with the same FLOPs or parameter
//! count differ significantly in runtime latency, so hardware-agnostic
//! metrics are inadequate latency proxies.
//!
//! The harness samples architectures uniformly, records (FLOPs, Params,
//! simulated on-device latency) triples per device, reports the
//! correlations, and — the paper's key visual — the latency *spread*
//! within narrow FLOPs bins.

use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_latency::{pearson, spearman};
use hsconas_space::cost::arch_cost;
use hsconas_space::SearchSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sampled architecture's data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Total multiply-accumulates, millions.
    pub mflops: f64,
    /// Total parameters, millions.
    pub mparams: f64,
    /// Simulated on-device latency, milliseconds.
    pub latency_ms: f64,
}

/// Per-device result.
#[derive(Debug, Clone)]
pub struct DeviceScatter {
    /// Device name.
    pub device: String,
    /// Sampled points.
    pub points: Vec<Point>,
    /// Pearson correlation of latency with FLOPs.
    pub pearson_flops: f64,
    /// Spearman rank correlation of latency with FLOPs.
    pub spearman_flops: f64,
    /// Pearson correlation of latency with parameter count.
    pub pearson_params: f64,
    /// Spearman rank correlation of latency with parameter count.
    pub spearman_params: f64,
    /// Maximum relative latency spread (max/min − 1) among architectures
    /// within ±5% FLOPs of each other — the paper's "significantly differ"
    /// observation quantified.
    pub max_iso_flops_spread: f64,
}

/// Runs the Fig. 2 experiment: `n` uniform samples per device.
pub fn run(seed: u64, n: usize) -> Vec<DeviceScatter> {
    let space = SearchSpace::hsconas_a();
    let mut rng = StdRng::seed_from_u64(seed);
    let archs = space.sample_n(n, &mut rng);
    let costs: Vec<(f64, f64)> = archs
        .iter()
        .map(|a| {
            let c = arch_cost(space.skeleton(), a).expect("arch from the space");
            (c.total_flops() / 1e6, c.total_params() / 1e6)
        })
        .collect();
    let nets: Vec<_> = archs
        .iter()
        .map(|a| lower_arch(space.skeleton(), a).expect("arch from the space"))
        .collect();

    DeviceSpec::paper_devices()
        .into_iter()
        .map(|device| {
            // The sweep fans out over the worker pool; each network gets a
            // per-index RNG stream so the numbers depend only on `seed`,
            // never on the thread count (0 = process default).
            let latencies =
                hsconas_hwsim::measure_networks_parallel(&device, &nets, 1, seed ^ 0x5ca1ab1e, 0);
            let points: Vec<Point> = latencies
                .iter()
                .zip(&costs)
                .map(|(&lat_us, &(mflops, mparams))| Point {
                    mflops,
                    mparams,
                    latency_ms: lat_us / 1000.0,
                })
                .collect();
            let lat: Vec<f64> = points.iter().map(|p| p.latency_ms).collect();
            let flops: Vec<f64> = points.iter().map(|p| p.mflops).collect();
            let params: Vec<f64> = points.iter().map(|p| p.mparams).collect();
            DeviceScatter {
                device: device.name.clone(),
                pearson_flops: pearson(&flops, &lat),
                spearman_flops: spearman(&flops, &lat),
                pearson_params: pearson(&params, &lat),
                spearman_params: spearman(&params, &lat),
                max_iso_flops_spread: iso_flops_spread(&points),
                points,
            }
        })
        .collect()
}

/// Largest relative latency spread among points whose FLOPs agree within
/// ±5%.
fn iso_flops_spread(points: &[Point]) -> f64 {
    let mut max_spread: f64 = 0.0;
    for (i, a) in points.iter().enumerate() {
        let mut lo = a.latency_ms;
        let mut hi = a.latency_ms;
        for b in &points[i + 1..] {
            if (b.mflops / a.mflops - 1.0).abs() <= 0.05 {
                lo = lo.min(b.latency_ms);
                hi = hi.max(b.latency_ms);
            }
        }
        if lo > 0.0 {
            max_spread = max_spread.max(hi / lo - 1.0);
        }
    }
    max_spread
}

/// Renders the per-device summary the way the paper's caption reads.
pub fn render(results: &[DeviceScatter]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 2 — latency vs FLOPs (left) / Params (right)\n");
    out.push_str(&format!(
        "{:<16} {:>9} {:>9} {:>10} {:>10} {:>12}\n",
        "device", "r(FLOPs)", "rho(FLOPs)", "r(Params)", "rho(Params)", "iso-FLOPs"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<16} {:>9.3} {:>9.3} {:>10.3} {:>10.3} {:>10.0}%\n",
            r.device,
            r.pearson_flops,
            r.spearman_flops,
            r.pearson_params,
            r.spearman_params,
            r.max_iso_flops_spread * 100.0
        ));
    }
    out.push_str(
        "\n(iso-FLOPs = max latency spread among archs within +/-5% FLOPs;\n \
         large values reproduce the paper's observation that equal-FLOPs\n \
         architectures differ significantly in latency)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlations_are_positive_but_imperfect() {
        let results = run(1, 120);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.points.len(), 120);
            // FLOPs correlates with latency, but far from perfectly —
            // that is the figure's whole point.
            assert!(r.pearson_flops > 0.3, "{}: r {}", r.device, r.pearson_flops);
            assert!(
                r.spearman_flops < 0.995,
                "{}: rho {} suspiciously perfect",
                r.device,
                r.spearman_flops
            );
        }
    }

    #[test]
    fn iso_flops_spread_is_substantial() {
        let results = run(2, 150);
        for r in &results {
            assert!(
                r.max_iso_flops_spread > 0.10,
                "{}: spread {} too small to support the paper's claim",
                r.device,
                r.max_iso_flops_spread
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run(3, 30);
        let b = run(3, 30);
        assert_eq!(a[0].points, b[0].points);
    }

    #[test]
    fn render_mentions_devices() {
        let text = render(&run(4, 20));
        assert!(text.contains("gpu-gv100"));
        assert!(text.contains("cpu-xeon-6136"));
        assert!(text.contains("edge-xavier"));
    }
}
