//! Fig. 6 reproduction, in two parts:
//!
//! * **top/bottom** ([`run_evolution`]) — the evolutionary search on the
//!   edge device with `T = 34 ms`: per-generation latency scatter (top)
//!   and the final latency histogram concentrating near the constraint
//!   (bottom);
//! * **left** ([`run_shrink_vs_naive`]) — supernet accuracy after
//!   progressive shrinking vs naive training at an equal step budget, on
//!   the real-training substrate (tiny space + synthetic dataset).

use hsconas::CheckpointOptions;
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_data::SyntheticDataset;
use hsconas_evo::{
    Evaluation, EvoError, EvolutionConfig, EvolutionSearch, MemoObjective, Objective, SearchResult,
    TradeoffObjective,
};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::LatencyPredictor;
use hsconas_shrink::{ProgressiveShrinking, ShrinkConfig};
use hsconas_space::{Arch, SearchSpace};
use hsconas_supernet::{Supernet, SupernetTrainer, TrainConfig};
use hsconas_tensor::rng::SmallRng;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-generation latency statistics (the Fig. 6 top scatter).
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationLatency {
    /// Generation index.
    pub generation: usize,
    /// Minimum latency in the population, ms.
    pub min_ms: f64,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Maximum latency, ms.
    pub max_ms: f64,
    /// Best objective score.
    pub best_score: f64,
}

/// The evolution part of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Evolution {
    /// The latency constraint `T`, ms.
    pub target_ms: f64,
    /// Per-generation statistics.
    pub generations: Vec<GenerationLatency>,
    /// Final-generation latencies (for the histogram).
    pub final_latencies_ms: Vec<f64>,
    /// The discovered architecture's latency, ms (paper: 34.3 vs T = 34).
    pub best_latency_ms: f64,
    /// The discovered architecture's evaluation.
    pub best: Evaluation,
}

/// Runs the EA part on the edge device (T = 34 ms, paper hyper-parameters
/// unless overridden).
pub fn run_evolution(seed: u64, config: EvolutionConfig) -> Fig6Evolution {
    run_evolution_checkpointed(seed, config, None)
}

/// [`run_evolution`] with optional per-generation checkpointing (EA
/// state + RNG stream + memo-cache contents); with `resume` set the
/// search continues from the latest checkpoint bit-identically. Use a
/// distinct directory per `(seed, config)` — the checkpoint's config
/// hash covers the space and EA hyper-parameters, not the seed.
pub fn run_evolution_checkpointed(
    seed: u64,
    config: EvolutionConfig,
    ckpt: Option<&CheckpointOptions>,
) -> Fig6Evolution {
    let target_ms = 34.0;
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let predictor =
        LatencyPredictor::calibrate(device, &space, 40, 3, &mut rng).expect("calibration");
    let mut objective = TradeoffObjective::new(
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        target_ms,
        -20.0,
    );
    let result: SearchResult = match ckpt {
        Some(opts) => {
            let mut memo = MemoObjective::new(objective);
            let mut search = EvolutionSearch::new(space, config);
            hsconas::run_search_checkpointed(&mut search, &mut memo, &mut rng, opts)
                .expect("search")
        }
        None => EvolutionSearch::new(space, config)
            .run(&mut objective, &mut rng)
            .expect("search"),
    };
    let generations = result
        .history
        .iter()
        .map(|g| {
            let lats = g.latencies_ms();
            GenerationLatency {
                generation: g.generation,
                min_ms: lats.iter().copied().fold(f64::INFINITY, f64::min),
                mean_ms: lats.iter().sum::<f64>() / lats.len() as f64,
                max_ms: lats.iter().copied().fold(0.0, f64::max),
                best_score: g.best_score(),
            }
        })
        .collect();
    Fig6Evolution {
        target_ms,
        generations,
        final_latencies_ms: result.history.last().expect("history").latencies_ms(),
        best_latency_ms: result.best_evaluation.latency_ms,
        best: result.best_evaluation,
    }
}

/// Histogram of the final generation's latencies in fixed-width bins.
pub fn histogram(latencies: &[f64], bin_ms: f64) -> Vec<(f64, usize)> {
    assert!(bin_ms > 0.0, "bin width must be positive");
    let mut bins: std::collections::BTreeMap<i64, usize> = Default::default();
    for &lat in latencies {
        *bins.entry((lat / bin_ms).floor() as i64).or_default() += 1;
    }
    bins.into_iter()
        .map(|(k, v)| (k as f64 * bin_ms, v))
        .collect()
}

/// Renders the scatter + histogram as text.
pub fn render_evolution(result: &Fig6Evolution) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 6 (top) — EA latency per generation (edge, T = {} ms)\n",
        result.target_ms
    ));
    out.push_str(&format!(
        "{:>4} {:>9} {:>9} {:>9} {:>10}\n",
        "gen", "min(ms)", "mean(ms)", "max(ms)", "best F"
    ));
    for g in &result.generations {
        out.push_str(&format!(
            "{:>4} {:>9.1} {:>9.1} {:>9.1} {:>10.2}\n",
            g.generation, g.min_ms, g.mean_ms, g.max_ms, g.best_score
        ));
    }
    out.push_str(&format!(
        "\ndiscovered arch latency: {:.1} ms (constraint {} ms)\n",
        result.best_latency_ms, result.target_ms
    ));
    out.push_str("\nFig. 6 (bottom) — final-generation latency histogram\n");
    let hist = histogram(&result.final_latencies_ms, 2.0);
    let max = hist.iter().map(|(_, c)| *c).max().unwrap_or(1);
    for (lo, count) in hist {
        out.push_str(&format!(
            "{:>5.0}-{:<5.0} {:>3} {}\n",
            lo,
            lo + 2.0,
            count,
            crate::ascii_bar(count, max, 40)
        ));
    }
    out
}

/// The shrink-vs-naive part of Fig. 6 (left).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6ShrinkVsNaive {
    /// Mean subnet accuracy after naive training (full space, all steps).
    pub naive_accuracy: f64,
    /// Mean subnet accuracy after train → shrink → fine-tune at the same
    /// total step budget.
    pub shrink_accuracy: f64,
    /// Number of subnets evaluated for each mean.
    pub eval_subnets: usize,
}

/// An objective that scores architectures by real supernet evaluation
/// accuracy (used by the quality metric during shrinking).
struct SupernetObjective<'a> {
    trainer: &'a mut SupernetTrainer,
    data: &'a SyntheticDataset,
    batches: usize,
}

impl Objective for SupernetObjective<'_> {
    fn evaluate(&mut self, arch: &Arch) -> Result<Evaluation, EvoError> {
        let acc = self
            .trainer
            .evaluate(arch, self.data, self.batches)
            .map_err(|e| EvoError::Objective {
                detail: e.to_string(),
            })?;
        Ok(Evaluation {
            score: 100.0 * acc,
            accuracy: 100.0 * acc,
            latency_ms: 0.0,
        })
    }
}

/// Runs the real-training comparison on the tiny space. `budget_steps` is
/// the total optimization budget for both arms.
pub fn run_shrink_vs_naive(seed: u64, budget_steps: usize) -> Fig6ShrinkVsNaive {
    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, seed);
    let eval_subnets = 8;
    let mut arch_rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let probe_archs: Vec<Arch> = space.sample_n(eval_subnets, &mut arch_rng);

    // Arm 1: naive — train the full space for the whole budget.
    let mut rng = SmallRng::new(seed);
    let naive_net = Supernet::build(space.skeleton(), &mut rng).expect("build");
    let mut naive = SupernetTrainer::new(naive_net, TrainConfig::quick_test());
    naive
        .train_steps(&space, &data, budget_steps, 0.05, &mut rng)
        .expect("train");

    // Arm 2: train 60% of the budget, shrink the two back layers by real
    // evaluated quality, fine-tune the rest at a reduced learning rate
    // (the paper's 100-epoch + 15-epoch × 2 pattern, scaled down).
    let mut rng2 = SmallRng::new(seed);
    let shrink_net = Supernet::build(space.skeleton(), &mut rng2).expect("build");
    let mut shrunk_trainer = SupernetTrainer::new(shrink_net, TrainConfig::quick_test());
    let warm = budget_steps * 6 / 10;
    shrunk_trainer
        .train_steps(&space, &data, warm, 0.05, &mut rng2)
        .expect("train");
    let shrink_cfg = ShrinkConfig {
        stages: vec![vec![3], vec![2]],
        samples_per_subspace: 4,
    };
    let mut current_trainer = shrunk_trainer;
    let mut quality_rng = StdRng::seed_from_u64(seed ^ 0x51ab);
    let fine_tune_steps = (budget_steps - warm) / 2;
    let result = {
        let shrinker = ProgressiveShrinking::new(shrink_cfg);
        let data_ref = &data;
        // run stages manually so we can fine-tune between them with the
        // shrunk space
        let mut current_space = space.clone();
        for stage in 0..2 {
            let mut objective = SupernetObjective {
                trainer: &mut current_trainer,
                data: data_ref,
                batches: 1,
            };
            let single = ProgressiveShrinking::new(ShrinkConfig {
                stages: vec![vec![3 - stage]],
                samples_per_subspace: 4,
            });
            let r = single
                .run(
                    current_space.clone(),
                    &mut objective,
                    &mut quality_rng,
                    |_, _| Ok(()),
                )
                .expect("shrink stage");
            current_space = r.space;
            let mut ft_rng = SmallRng::new(seed ^ (stage as u64 + 99));
            current_trainer
                .train_steps(&current_space, data_ref, fine_tune_steps, 0.01, &mut ft_rng)
                .expect("fine-tune");
        }
        let _ = shrinker;
        (current_space, current_trainer)
    };
    let (shrunk_space, mut shrunk_trainer) = result;

    // Mean accuracy over probe subnets, each arm evaluating subnets from
    // its own final space (the shrunk arm restricts back-layer ops).
    let mean_acc = |trainer: &mut SupernetTrainer, space: &SearchSpace| -> f64 {
        // Each arm's measurement sweep is an independent configuration:
        // start it from a cold prefix cache so the reported figure cannot
        // depend on what earlier shrink-quality probes cached (results are
        // byte-identical either way; this keeps sweeps observably
        // independent and bounds resident activation memory).
        trainer.clear_prefix_cache();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7777);
        let archs: Vec<Arch> = (0..eval_subnets).map(|_| space.sample(&mut rng)).collect();
        archs
            .iter()
            .map(|a| trainer.evaluate(a, &data, 2).expect("eval"))
            .sum::<f64>()
            / eval_subnets as f64
    };
    let naive_accuracy = mean_acc(&mut naive, &space);
    let shrink_accuracy = mean_acc(&mut shrunk_trainer, &shrunk_space);
    let _ = probe_archs;
    Fig6ShrinkVsNaive {
        naive_accuracy,
        shrink_accuracy,
        eval_subnets,
    }
}

/// Renders the shrink-vs-naive comparison.
pub fn render_shrink_vs_naive(result: &Fig6ShrinkVsNaive) -> String {
    format!(
        "Fig. 6 (left) — supernet accuracy, equal step budget\n\
         naive training (full space) : {:.3}\n\
         progressive shrinking       : {:.3}\n\
         ({} subnets averaged; shrinking should match or exceed naive)\n",
        result.naive_accuracy, result.shrink_accuracy, result.eval_subnets
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> EvolutionConfig {
        EvolutionConfig {
            generations: 12,
            population: 30,
            parents: 10,
            ..Default::default()
        }
    }

    #[test]
    fn evolution_concentrates_near_target() {
        let result = run_evolution(1, small_config());
        // the population must concentrate near the constraint: compare the
        // fraction of individuals within ±15% of T at start vs end
        let near = |lats: &[f64]| {
            lats.iter()
                .filter(|&&l| (l / result.target_ms - 1.0).abs() < 0.15)
                .count() as f64
                / lats.len() as f64
        };
        let first_near = {
            // reconstruct generation-0 latencies from the stats is not
            // possible; use the recorded mean distance instead
            (result.generations[0].mean_ms - result.target_ms).abs()
        };
        let final_near = near(&result.final_latencies_ms);
        assert!(
            final_near > 0.5,
            "only {final_near:.0?} of the final population within 15% of T \
             (initial mean distance {first_near:.1} ms)"
        );
        // the discovered arch approximately meets the constraint (paper:
        // 34.3 ms for T = 34 ms)
        assert!(
            (result.best_latency_ms - result.target_ms).abs() / result.target_ms < 0.25,
            "best latency {} vs target {}",
            result.best_latency_ms,
            result.target_ms
        );
    }

    #[test]
    fn histogram_counts_all_points() {
        let lats = vec![30.0, 31.0, 33.9, 34.1, 35.0, 50.0];
        let hist = histogram(&lats, 2.0);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
        assert!(hist.iter().any(|&(lo, c)| lo == 34.0 && c == 2));
    }

    #[test]
    fn render_evolution_shows_constraint() {
        let text = render_evolution(&run_evolution(2, small_config()));
        assert!(text.contains("T = 34 ms"));
        assert!(text.contains("discovered arch latency"));
    }

    #[test]
    #[ignore = "slow real-training experiment; run explicitly"]
    fn shrink_vs_naive_runs() {
        let result = run_shrink_vs_naive(3, 60);
        assert!(result.naive_accuracy >= 0.0 && result.naive_accuracy <= 1.0);
        assert!(result.shrink_accuracy >= 0.0 && result.shrink_accuracy <= 1.0);
    }
}
