//! # hsconas-bench
//!
//! The experiment harness: one module per paper artifact (figure or
//! table), each exposing a typed `run` function and a `render` function
//! that prints the same rows/series the paper reports. The `src/bin`
//! binaries are thin wrappers; the Criterion benches in `benches/` measure
//! the runtime of each harness's core computation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2 — latency vs FLOPs / Params decorrelation |
//! | [`fig3`] | Fig. 3 — latency-model RMSE and correlation |
//! | [`fig4`] | Fig. 4 — uniform vs dynamic channel scaling |
//! | [`fig5`] | Fig. 5 — progressive space shrinking |
//! | [`fig6`] | Fig. 6 — EA scatter / histogram and shrink-vs-naive training |
//! | [`table1`] | Table I — full comparison |
//! | [`ablation`] | Design-choice ablations (bias term, search algorithm, shrinking) |
//! | [`extension_energy`] | Future-work extension: energy-constrained search |
//! | [`ablation_proxy`] | Hardware-aware vs FLOPs-proxy search guidance |
//! | [`extension_batch`] | Batch-size utilization sweep (the paper's batch choices) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod ablation_proxy;
pub mod extension_batch;
pub mod extension_energy;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod plot;
pub mod table1;

/// Parses the optional `--checkpoint DIR [--resume] [--keep-last K]`
/// arguments shared by the long-running experiment binaries; `None` when
/// `--checkpoint` is absent (run without persistence).
pub fn ckpt_from_args() -> Option<hsconas::CheckpointOptions> {
    let args: Vec<String> = std::env::args().collect();
    let dir = args.windows(2).find(|w| w[0] == "--checkpoint")?[1].clone();
    let mut opts =
        hsconas::CheckpointOptions::new(dir).resume(args.iter().any(|a| a == "--resume"));
    if let Some(keep) = args
        .windows(2)
        .find(|w| w[0] == "--keep-last")
        .and_then(|w| w[1].parse().ok())
    {
        opts = opts.keep_last(keep);
    }
    Some(opts)
}

/// Parses an optional `--seed N` command-line argument, defaulting to the
/// fixed seed every experiment binary uses for reproducibility.
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(2021)
}

/// Parses an optional `--threads N` command-line argument and installs it
/// as the process-wide worker-pool default
/// ([`hsconas_par::set_default_threads`]). Without the flag — or with
/// `--threads 0` — the pool sizes itself to the hardware
/// (`std::thread::available_parallelism`). Returns the resolved count.
///
/// Every parallel site merges results in work-item order, so the flag
/// changes wall-clock time only, never an experiment's numbers.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let requested = args
        .windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(0);
    hsconas_par::set_default_threads(requested);
    hsconas_par::default_threads()
}

/// Parses an optional `--telemetry PATH` command-line argument and, when
/// present, installs a JSONL event sink logging the run to `PATH`. The
/// returned guard flushes the metrics registry and closes the log on drop,
/// so bind it for the binary's full lifetime (`let _telemetry = ...`).
///
/// Returns `None` when the flag is absent. When the flag is given but the
/// build lacks the `telemetry` feature, a warning is printed and the run
/// continues unlogged — observability never fails an experiment.
pub fn telemetry_from_args() -> Option<hsconas_telemetry::FlushGuard> {
    let args: Vec<String> = std::env::args().collect();
    let path = args.windows(2).find(|w| w[0] == "--telemetry")?[1].clone();
    match hsconas_telemetry::init_jsonl(&path) {
        Ok(guard) => Some(guard),
        Err(e) => {
            eprintln!("warning: --telemetry disabled: {e}");
            None
        }
    }
}

/// Renders a simple ASCII histogram line (used by the Fig. 6 bottom
/// reproduction).
pub fn ascii_bar(count: usize, max: usize, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let filled = (count * width).div_ceil(max.max(1)).min(width);
    "#".repeat(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_bar_scales() {
        assert_eq!(ascii_bar(10, 10, 10), "##########");
        assert_eq!(ascii_bar(5, 10, 10), "#####");
        assert_eq!(ascii_bar(0, 10, 10), "");
        assert_eq!(ascii_bar(1, 100, 10), "#");
        assert_eq!(ascii_bar(3, 0, 10), "");
    }
}
