//! Ablation: hardware-aware vs hardware-agnostic search guidance — the
//! paper's *core* thesis, isolated.
//!
//! Two identical EA runs on the edge device differ only in the latency
//! signal inside Eq. 1:
//!
//! * **hardware-aware** — the calibrated Eq. 2–3 predictor;
//! * **FLOPs proxy** — latency estimated as `k · FLOPs`, with `k` fitted
//!   on the same calibration measurements (the best a hardware-agnostic
//!   metric can do).
//!
//! Both winners are then measured on the *actual* simulated device. The
//! FLOPs-guided search systematically misjudges which architectures are
//! fast (Fig. 2's decorrelation), so its winner misses the constraint
//! and/or sacrifices more accuracy.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_evo::{EvolutionConfig, EvolutionSearch, TradeoffObjective};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_latency::LatencyPredictor;
use hsconas_space::cost::arch_cost;
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One arm's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyPoint {
    /// Arm label.
    pub label: String,
    /// Top-1 surrogate error of the winner, percent.
    pub top1_error: f64,
    /// The latency the guiding signal *believed*, ms.
    pub believed_latency_ms: f64,
    /// The winner's actual simulated device latency, ms.
    pub actual_latency_ms: f64,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct ProxyResult {
    /// Hardware-aware and FLOPs-proxy arms.
    pub points: Vec<ProxyPoint>,
    /// The latency constraint, ms.
    pub target_ms: f64,
}

/// Runs both arms on the edge device (T = 34 ms).
pub fn run(seed: u64, config: EvolutionConfig) -> ProxyResult {
    let target_ms = 34.0;
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let mut rng = StdRng::seed_from_u64(seed);

    // Fit the FLOPs proxy on the same measurements the predictor uses:
    // k = mean(measured latency / FLOPs) over calibration samples.
    let mut k_sum = 0.0;
    let m = 40;
    for _ in 0..m {
        let arch = space.sample(&mut rng);
        let net = lower_arch(space.skeleton(), &arch).expect("valid");
        let measured_ms = device.measure_network_mean(&net, 3, &mut rng) / 1000.0;
        let flops = arch_cost(space.skeleton(), &arch)
            .expect("valid")
            .total_flops();
        k_sum += measured_ms / flops;
    }
    let k = k_sum / m as f64;

    let mut points = Vec::new();
    // Arm 1: hardware-aware (Eq. 2-3).
    {
        let mut cal_rng = StdRng::seed_from_u64(seed);
        let predictor = LatencyPredictor::calibrate(device.clone(), &space, 40, 3, &mut cal_rng)
            .expect("calibration");
        let oracle2 = oracle.clone();
        let mut objective = TradeoffObjective::new(
            move |arch: &Arch| oracle2.accuracy(arch).map_err(|e| e.to_string()),
            move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
            target_ms,
            -20.0,
        );
        let mut search_rng = StdRng::seed_from_u64(seed + 1);
        let result = EvolutionSearch::new(space.clone(), config)
            .run(&mut objective, &mut search_rng)
            .expect("search");
        let net = lower_arch(space.skeleton(), &result.best_arch).expect("valid");
        points.push(ProxyPoint {
            label: "hardware-aware".into(),
            top1_error: oracle.top1_error(&result.best_arch).expect("valid"),
            believed_latency_ms: result.best_evaluation.latency_ms,
            actual_latency_ms: device.network_time_us(&net) / 1000.0,
        });
    }
    // Arm 2: FLOPs proxy.
    {
        let skeleton = space.skeleton().clone();
        let oracle2 = oracle.clone();
        let mut objective = TradeoffObjective::new(
            move |arch: &Arch| oracle2.accuracy(arch).map_err(|e| e.to_string()),
            move |arch: &Arch| {
                let flops = arch_cost(&skeleton, arch)
                    .map_err(|e| e.to_string())?
                    .total_flops();
                Ok(k * flops)
            },
            target_ms,
            -20.0,
        );
        let mut search_rng = StdRng::seed_from_u64(seed + 1);
        let result = EvolutionSearch::new(space.clone(), config)
            .run(&mut objective, &mut search_rng)
            .expect("search");
        let net = lower_arch(space.skeleton(), &result.best_arch).expect("valid");
        points.push(ProxyPoint {
            label: "flops-proxy".into(),
            top1_error: oracle.top1_error(&result.best_arch).expect("valid"),
            believed_latency_ms: result.best_evaluation.latency_ms,
            actual_latency_ms: device.network_time_us(&net) / 1000.0,
        });
    }
    ProxyResult { points, target_ms }
}

/// Renders the comparison.
pub fn render(result: &ProxyResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — hardware-aware vs FLOPs-proxy guidance (edge, T = {} ms)\n",
        result.target_ms
    ));
    out.push_str(&format!(
        "{:<16} {:>8} {:>14} {:>13} {:>10}\n",
        "guidance", "top-1", "believed(ms)", "actual(ms)", "miss"
    ));
    for p in &result.points {
        out.push_str(&format!(
            "{:<16} {:>8.1} {:>14.1} {:>13.1} {:>9.0}%\n",
            p.label,
            p.top1_error,
            p.believed_latency_ms,
            p.actual_latency_ms,
            (p.actual_latency_ms / p.believed_latency_ms - 1.0) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EvolutionConfig {
        EvolutionConfig {
            generations: 8,
            population: 24,
            parents: 8,
            ..Default::default()
        }
    }

    #[test]
    fn hardware_aware_believes_correctly_proxy_does_not() {
        let result = run(1, small());
        let by = |l: &str| result.points.iter().find(|p| p.label == l).unwrap();
        let aware = by("hardware-aware");
        let proxy = by("flops-proxy");
        let aware_miss = (aware.actual_latency_ms / aware.believed_latency_ms - 1.0).abs();
        let proxy_miss = (proxy.actual_latency_ms / proxy.believed_latency_ms - 1.0).abs();
        assert!(aware_miss < 0.05, "hardware-aware miss {aware_miss}");
        assert!(
            proxy_miss > aware_miss,
            "proxy should misjudge more: {proxy_miss} vs {aware_miss}"
        );
    }

    #[test]
    fn hardware_aware_lands_closer_to_the_constraint() {
        let result = run(2, small());
        let by = |l: &str| result.points.iter().find(|p| p.label == l).unwrap();
        let aware_gap = (by("hardware-aware").actual_latency_ms - result.target_ms).abs();
        let proxy_gap = (by("flops-proxy").actual_latency_ms - result.target_ms).abs();
        assert!(
            aware_gap <= proxy_gap + 1.0,
            "aware {aware_gap} vs proxy {proxy_gap}"
        );
    }

    #[test]
    fn render_shows_miss_column() {
        let text = render(&run(3, small()));
        assert!(text.contains("miss"));
        assert!(text.contains("flops-proxy"));
    }
}
