//! Extension experiment (the paper's stated future work): searching under
//! a **power/energy constraint** in addition to latency.
//!
//! Protocol: on the edge device, run three searches with the paper's EA —
//! latency-only (Eq. 1), energy-only, and joint latency+energy (the
//! multi-constraint objective) — then report each winner's latency,
//! energy, and accuracy. The joint search should find an architecture
//! meeting *both* budgets at a small accuracy cost.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_evo::{
    Constraint, EvolutionConfig, EvolutionSearch, MultiConstraintObjective, Objective,
};
use hsconas_hwsim::{lower_arch, DeviceSpec, PowerModel};
use hsconas_latency::LatencyPredictor;
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One search arm's result.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyPoint {
    /// Arm label.
    pub label: String,
    /// Top-1 surrogate error, percent.
    pub top1_error: f64,
    /// Simulated latency, ms.
    pub latency_ms: f64,
    /// Simulated energy per inference, mJ.
    pub energy_mj: f64,
}

/// The extension experiment result.
#[derive(Debug, Clone)]
pub struct EnergyResult {
    /// The three arms: latency-only, energy-only, joint.
    pub points: Vec<EnergyPoint>,
    /// Latency budget, ms.
    pub latency_target_ms: f64,
    /// Energy budget, mJ.
    pub energy_target_mj: f64,
}

fn measure(space: &SearchSpace, arch: &Arch, device: &DeviceSpec) -> (f64, f64) {
    let net = lower_arch(space.skeleton(), arch).expect("valid arch");
    let pm = PowerModel::for_device(device);
    (
        device.network_time_us(&net) / 1000.0,
        pm.network_energy_mj(device, &net),
    )
}

/// Runs the three arms on the edge device.
pub fn run(seed: u64, config: EvolutionConfig) -> EnergyResult {
    let latency_target_ms = 34.0;
    let energy_target_mj = 110.0;
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());

    let make_latency_metric = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let predictor = LatencyPredictor::calibrate(device.clone(), &space, 40, 3, &mut rng)
            .expect("calibration");
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string())
    };
    let make_energy_metric = || {
        let space = space.clone();
        let device = device.clone();
        let pm = PowerModel::for_device(&device);
        move |arch: &Arch| {
            let net = lower_arch(space.skeleton(), arch).map_err(|e| e.to_string())?;
            Ok(pm.network_energy_mj(&device, &net))
        }
    };
    let acc = {
        let oracle = oracle.clone();
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string())
    };

    let mut points = Vec::new();
    let arms: Vec<(&str, Vec<Constraint>)> = vec![
        (
            "latency-only",
            vec![Constraint::new(
                "latency_ms",
                make_latency_metric(seed),
                latency_target_ms,
                -20.0,
            )
            .expect("valid constraint")],
        ),
        (
            "energy-only",
            vec![
                Constraint::new("energy_mj", make_energy_metric(), energy_target_mj, -20.0)
                    .expect("valid constraint"),
            ],
        ),
        (
            "latency+energy",
            vec![
                Constraint::new(
                    "latency_ms",
                    make_latency_metric(seed),
                    latency_target_ms,
                    -20.0,
                )
                .expect("valid constraint"),
                Constraint::new("energy_mj", make_energy_metric(), energy_target_mj, -20.0)
                    .expect("valid constraint"),
            ],
        ),
    ];
    for (label, constraints) in arms {
        let mut objective = MultiConstraintObjective::new(acc.clone(), constraints);
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let result = EvolutionSearch::new(space.clone(), config)
            .run(&mut objective, &mut rng)
            .expect("search");
        let _ = objective.evaluate(&result.best_arch);
        let (latency_ms, energy_mj) = measure(&space, &result.best_arch, &device);
        points.push(EnergyPoint {
            label: label.into(),
            top1_error: oracle.top1_error(&result.best_arch).expect("valid"),
            latency_ms,
            energy_mj,
        });
    }
    EnergyResult {
        points,
        latency_target_ms,
        energy_target_mj,
    }
}

/// Renders the comparison.
pub fn render(result: &EnergyResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Extension — energy-constrained search (edge, T = {} ms, E = {} mJ)\n",
        result.latency_target_ms, result.energy_target_mj
    ));
    out.push_str(&format!(
        "{:<16} {:>8} {:>9} {:>11}\n",
        "objective", "top-1", "lat(ms)", "energy(mJ)"
    ));
    for p in &result.points {
        out.push_str(&format!(
            "{:<16} {:>8.1} {:>9.1} {:>11.0}\n",
            p.label, p.top1_error, p.latency_ms, p.energy_mj
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EvolutionConfig {
        EvolutionConfig {
            generations: 8,
            population: 24,
            parents: 8,
            ..Default::default()
        }
    }

    #[test]
    fn joint_search_respects_both_budgets() {
        let result = run(1, small());
        let joint = result
            .points
            .iter()
            .find(|p| p.label == "latency+energy")
            .unwrap();
        assert!(
            joint.latency_ms <= result.latency_target_ms * 1.25,
            "joint latency {}",
            joint.latency_ms
        );
        assert!(
            joint.energy_mj <= result.energy_target_mj * 1.25,
            "joint energy {}",
            joint.energy_mj
        );
    }

    #[test]
    fn single_constraint_arms_track_their_own_metric() {
        let result = run(2, small());
        let by = |l: &str| result.points.iter().find(|p| p.label == l).unwrap();
        let lat_only = by("latency-only");
        assert!(
            (lat_only.latency_ms - result.latency_target_ms).abs() / result.latency_target_ms < 0.3,
            "latency-only arm at {} ms",
            lat_only.latency_ms
        );
    }

    #[test]
    fn render_lists_three_arms() {
        let text = render(&run(3, small()));
        assert!(text.contains("latency-only"));
        assert!(text.contains("energy-only"));
        assert!(text.contains("latency+energy"));
    }
}
