//! Ablation: how close do the search strategies get to the exhaustive
//! optimum on a restricted (enumerable) slice of the space?
//!
//! Usage: `cargo run --release -p hsconas-bench --bin ablation_optimality [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{ablation, seed_from_args, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let result = ablation::optimality(seed, 2, 1000);
    print!("{}", ablation::render_optimality(&result));
}
