//! Regenerates Fig. 6 (top and bottom): EA latency scatter per generation
//! and the final latency histogram near the 34 ms edge constraint.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin fig6_evolution [--seed N] [--threads N] [--telemetry RUN.jsonl] [--checkpoint DIR [--resume] [--keep-last K]]`

use hsconas_bench::{ckpt_from_args, fig6, seed_from_args, telemetry_from_args, threads_from_args};
use hsconas_evo::EvolutionConfig;

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    let ckpt = ckpt_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    // the paper's EA hyper-parameters
    let result = fig6::run_evolution_checkpointed(seed, EvolutionConfig::default(), ckpt.as_ref());
    print!("{}", fig6::render_evolution(&result));
}
