//! Regenerates Table I: the full comparison of baselines and searched
//! HSCoNets across GPU / CPU / Edge, with paper-vs-simulated deltas and a
//! check of the paper's headline claims.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin table1_comparison [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas::PipelineConfig;
use hsconas_bench::{seed_from_args, table1, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let result = table1::run(seed, &PipelineConfig::default());
    print!("{}", table1::render(&result));
    let failures = table1::check_headline_claims(&result);
    if failures.is_empty() {
        println!("\nheadline claims: all hold");
    } else {
        println!("\nheadline claims: FAILED");
        for f in failures {
            println!("  - {f}");
        }
    }
}
