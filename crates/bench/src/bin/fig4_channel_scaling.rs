//! Regenerates Fig. 4: conventional vs dynamic channel scaling.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin fig4_channel_scaling [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{fig4, seed_from_args, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let result = fig4::run(seed, 20, 50);
    print!("{}", fig4::render(&result));
}
