//! Extension (paper future work): search under latency AND energy budgets
//! on the edge device, comparing single-constraint and joint objectives.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin extension_energy [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{extension_energy, seed_from_args, telemetry_from_args, threads_from_args};
use hsconas_evo::EvolutionConfig;

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let result = extension_energy::run(seed, EvolutionConfig::default());
    print!("{}", extension_energy::render(&result));
}
