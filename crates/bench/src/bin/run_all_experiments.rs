//! Runs every experiment in sequence — the one-command regeneration of
//! EXPERIMENTS.md's numbers. Heavier searches use the paper budgets, so
//! expect a few minutes in release mode.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin run_all_experiments [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas::PipelineConfig;
use hsconas_bench::*;
use hsconas_evo::EvolutionConfig;

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let divider = "=".repeat(72);

    println!("{divider}\nFIG 2\n{divider}");
    print!("{}", fig2::render(&fig2::run(seed, 512)));

    println!("{divider}\nFIG 3\n{divider}");
    print!(
        "{}",
        fig3::render(&fig3::run(seed, &fig3::Fig3Config::default()))
    );

    println!("{divider}\nFIG 4\n{divider}");
    print!("{}", fig4::render(&fig4::run(seed, 20, 50)));

    println!("{divider}\nFIG 5\n{divider}");
    print!("{}", fig5::render(&fig5::run(seed, 100)));

    println!("{divider}\nFIG 6 (top/bottom)\n{divider}");
    print!(
        "{}",
        fig6::render_evolution(&fig6::run_evolution(seed, EvolutionConfig::default()))
    );

    println!("{divider}\nFIG 6 (left)\n{divider}");
    print!(
        "{}",
        fig6::render_shrink_vs_naive(&fig6::run_shrink_vs_naive(seed, 300))
    );

    println!("{divider}\nTABLE I\n{divider}");
    print!(
        "{}",
        table1::render(&table1::run(seed, &PipelineConfig::default()))
    );

    println!("{divider}\nABLATIONS\n{divider}");
    print!("{}", ablation::render_bias(&ablation::bias(seed, 200)));
    println!();
    print!("{}", ablation::render_search(&ablation::search(seed, 1000)));
    println!();
    print!(
        "{}",
        ablation::render_shrink(&ablation::shrink(seed, 100, EvolutionConfig::default()))
    );
    println!();
    print!(
        "{}",
        ablation::render_optimality(&ablation::optimality(seed, 2, 1000))
    );
    println!();
    print!(
        "{}",
        ablation_proxy::render(&ablation_proxy::run(seed, EvolutionConfig::default()))
    );

    println!("{divider}\nEXTENSIONS\n{divider}");
    print!(
        "{}",
        extension_energy::render(&extension_energy::run(seed, EvolutionConfig::default()))
    );
    println!();
    print!("{}", extension_batch::render(&extension_batch::run()));
}
