//! Regenerates Fig. 3: latency-model fit (Eq. 2-3) per device.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin fig3_latency_model [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{fig3, plot, seed_from_args, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let results = fig3::run(seed, &fig3::Fig3Config::default());
    print!("{}", fig3::render(&results));
    for r in &results {
        println!();
        print!(
            "{}",
            plot::parity_plot(
                &r.points,
                60,
                14,
                &format!("{}: measured(ms, y) vs estimated(ms, x)", r.device)
            )
        );
    }
}
