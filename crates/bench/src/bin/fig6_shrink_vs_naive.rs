//! Regenerates Fig. 6 (left): supernet accuracy with progressive shrinking
//! vs naive training at an equal step budget, on the real-training
//! substrate (tiny space + synthetic dataset).
//!
//! Usage: `cargo run --release -p hsconas-bench --bin fig6_shrink_vs_naive [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{fig6, seed_from_args, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let result = fig6::run_shrink_vs_naive(seed, 300);
    print!("{}", fig6::render_shrink_vs_naive(&result));
}
