//! Ablation: EA in the progressively shrunk space vs the full space.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin ablation_shrink [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{ablation, seed_from_args, telemetry_from_args, threads_from_args};
use hsconas_evo::EvolutionConfig;

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let result = ablation::shrink(seed, 100, EvolutionConfig::default());
    print!("{}", ablation::render_shrink(&result));
}
