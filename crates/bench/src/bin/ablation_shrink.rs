//! Ablation: EA in the progressively shrunk space vs the full space.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin ablation_shrink [--seed N]`

use hsconas_bench::{ablation, seed_from_args};
use hsconas_evo::EvolutionConfig;

fn main() {
    let seed = seed_from_args();
    let result = ablation::shrink(seed, 100, EvolutionConfig::default());
    print!("{}", ablation::render_shrink(&result));
}
