//! Ablation: hardware-aware (Eq. 2-3) vs hardware-agnostic (FLOPs proxy)
//! latency guidance inside the search — the paper's core thesis isolated.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin ablation_proxy [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{ablation_proxy, seed_from_args, telemetry_from_args, threads_from_args};
use hsconas_evo::EvolutionConfig;

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let result = ablation_proxy::run(seed, EvolutionConfig::default());
    print!("{}", ablation_proxy::render(&result));
}
