//! Ablation: the latency-model bias term B (Eq. 3) on vs off.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin ablation_bias [--seed N]`

use hsconas_bench::{ablation, seed_from_args};

fn main() {
    let seed = seed_from_args();
    print!("{}", ablation::render_bias(&ablation::bias(seed, 200)));
}
