//! Ablation: the latency-model bias term B (Eq. 3) on vs off.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin ablation_bias [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{ablation, seed_from_args, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    print!("{}", ablation::render_bias(&ablation::bias(seed, 200)));
}
