//! Machine-readable performance snapshot of the memory-planned evaluation
//! path, for `scripts/bench_snapshot.sh` to stamp with the git revision.
//!
//! Measures, on one process with a fixed seed:
//!
//! * **population_eval** — archs/sec and equivalent forwards/sec for an
//!   EA-generation-shaped population evaluated against a trained tiny
//!   supernet, prefix cache off vs on, plus the cache hit rate;
//! * **alloc** — heap allocations per steady-state eval forward (counting
//!   global allocator; the arena makes this O(1));
//! * **search** — end-to-end fixed-seed EA search throughput on the
//!   surrogate pipeline (archs/sec), the number the paper's search-cost
//!   claim rests on;
//! * **telemetry** — per-phase wall time and allocation counts derived
//!   from an in-memory telemetry sink capturing the phases above, plus the
//!   measured overhead ratio of running with that sink installed
//!   (`schema_version` 1; older snapshot fields are unchanged);
//! * **kernels** — the GEMM kernel variant the runtime selector picked on
//!   this host, per-variant dispatch counts over the whole run, raw
//!   GFLOP/s per (shape class, variant) for conv-shaped GEMMs, a
//!   GFLOP/s-vs-band-count sweep for the packed variants (`--threads N`
//!   caps the sweep; host parallelism is recorded so single-core hosts
//!   are interpretable), and packed-weight-cache counters with the
//!   steady-state population-eval hit rate;
//! * **graph** — deployment pipeline numbers for a fixed mixed genome:
//!   compile time, patch counts, artifact byte size, and min-of-N
//!   single-image latency for the specialized graph vs the masked
//!   supernet forward it is bit-identical to;
//! * **pareto** — multi-device co-exploration numbers: frontier size /
//!   evaluations for a fixed-seed NSGA-II run over the three paper
//!   devices, plus the bench-table fast path — rows, probe hit rate, and
//!   the table-hit vs live-eval speedup (with bit-identity asserted) the
//!   serve `--bench-table` path banks on;
//! * **fleet** (only with `--fleet N`) — the same mixed serving workload
//!   driven against one in-process daemon and against a router fronting
//!   N in-process workers: requests/sec plus p50/p99 latency per request
//!   type, and the router's routed/retried/failed counters.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin bench_snapshot`
//! (prints one JSON object to stdout). Requires the default `telemetry`
//! feature.

use hsconas_bench::seed_from_args;
use hsconas_data::SyntheticDataset;
use hsconas_evo::{EvolutionConfig, EvolutionSearch, MemoObjective, ParallelObjective};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_space::{Arch, SearchSpace};
use hsconas_supernet::{Supernet, SupernetTrainer, TrainConfig};
use hsconas_telemetry::{span, MemorySink, RunReport};
use hsconas_tensor::rng::SmallRng;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter is the only addition.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// EA-generation-shaped population: an elite plus single-gene mutants,
/// sorted lexicographically as the evo scheduler would submit them.
fn sibling_population(space: &SearchSpace, seed: u64) -> Vec<Arch> {
    let mut arch_rng = StdRng::seed_from_u64(seed);
    let elite = Arch::widest(4);
    let mut population = vec![elite.clone()];
    for i in 0..12 {
        let donor = space.sample(&mut arch_rng);
        let layer = i % 4;
        let mut mutant = elite.clone();
        mutant.set_gene(layer, donor.genes()[layer]).unwrap();
        population.push(mutant);
    }
    population.sort_by_key(|a| a.encode());
    population.dedup_by_key(|a| a.encode());
    population
}

fn main() {
    let seed = seed_from_args();
    // `--threads N` caps the band counts the kernels sweep measures; the
    // eval phases below stay pinned to one worker regardless, so the
    // arena-warmth and cache numbers keep their fixed methodology.
    let args: Vec<String> = std::env::args().collect();
    let sweep_max: usize = args
        .windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(8);
    // `--fleet N` adds the single-daemon vs N-shard serving comparison.
    let fleet_workers: usize = args
        .windows(2)
        .find(|w| w[0] == "--fleet")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(0);
    hsconas_par::set_default_threads(1);

    // --- population evaluation, cache off vs on -------------------------
    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, seed);
    let mut rng = SmallRng::new(seed);
    let net = Supernet::build(space.skeleton(), &mut rng).expect("build");
    let mut trainer = SupernetTrainer::new(net, TrainConfig::quick_test());
    let mut train_rng = SmallRng::new(seed ^ 1);
    trainer
        .train_steps(&space, &data, 10, 0.05, &mut train_rng)
        .expect("train");
    let population = sibling_population(&space, seed ^ 2);
    let eval_batches = 2usize;
    let reps = 10usize;

    // --- telemetry overhead: sink installed vs not, interleaved ---------
    // One steady-state population pass is the unit of work; min-of-N on
    // alternating rounds cancels thermal / scheduler drift. Measured
    // *before* the main sink is installed so the snapshot's headline
    // numbers carry at most this (gated < 2%) overhead.
    trainer.set_prefix_cache_enabled(true);
    trainer.clear_prefix_cache();
    let pass = |trainer: &mut SupernetTrainer| {
        for arch in &population {
            black_box(trainer.evaluate(arch, &data, eval_batches).expect("eval"));
        }
    };
    pass(&mut trainer); // warm-up
    let mut min_off = f64::INFINITY;
    let mut min_on = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        pass(&mut trainer);
        min_off = min_off.min(start.elapsed().as_secs_f64());
        let probe_sink = MemorySink::install();
        let start = Instant::now();
        pass(&mut trainer);
        min_on = min_on.min(start.elapsed().as_secs_f64());
        probe_sink.uninstall();
    }
    let overhead_ratio = min_on / min_off;

    // The main sink captures phase spans for the rest of the run; the
    // alloc probe lets spans record allocation deltas.
    hsconas_telemetry::set_alloc_probe(|| ALLOCS.load(Ordering::Relaxed));
    let sink = MemorySink::install();

    let mut sweep = |cache: bool| -> (f64, f64, f64) {
        trainer.set_prefix_cache_enabled(cache);
        trainer.clear_prefix_cache();
        // warm-up (also warms the thread-local arena)
        for arch in &population {
            black_box(trainer.evaluate(arch, &data, eval_batches).expect("eval"));
        }
        trainer.clear_prefix_cache();
        let start = Instant::now();
        for _ in 0..reps {
            trainer.clear_prefix_cache();
            for arch in &population {
                black_box(trainer.evaluate(arch, &data, eval_batches).expect("eval"));
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let evals = (population.len() * reps) as f64;
        let forwards = evals * (8 + eval_batches) as f64;
        let hit_rate = trainer
            .prefix_cache_stats()
            .map(|s| s.hit_rate())
            .unwrap_or(0.0);
        (evals / secs, forwards / secs, hit_rate)
    };
    // Packed-weight-cache deltas across the measured sweeps: the earlier
    // warm-ups populated the cache, so these passes are the steady state
    // the ≥90 % hit-rate budget is about.
    let pack_before = hsconas_tensor::kernels::cache::stats();
    let (archs_off, forwards_off, _) = {
        let _span = span!("bench.population_eval_cache_off");
        sweep(false)
    };
    let (archs_on, forwards_on, hit_rate) = {
        let _span = span!("bench.population_eval_cache_on");
        sweep(true)
    };
    let pack_after = hsconas_tensor::kernels::cache::stats();
    let pack_hits = pack_after.hits - pack_before.hits;
    let pack_lookups = pack_hits
        + (pack_after.misses - pack_before.misses)
        + (pack_after.invalidations - pack_before.invalidations);
    let steady_state_hit_rate = if pack_lookups == 0 {
        0.0
    } else {
        pack_hits as f64 / pack_lookups as f64
    };

    // --- allocations per steady-state forward ---------------------------
    let allocs_per_forward = {
        let _span = span!("bench.alloc");
        let input = hsconas_tensor::Tensor::randn([8, 3, 32, 32], 1.0, &mut rng);
        let widest = Arch::widest(4);
        let net = trainer.supernet_mut();
        net.forward(&input, &widest, false).expect("warm");
        net.forward(&input, &widest, false).expect("warm");
        let before = ALLOCS.load(Ordering::Relaxed);
        net.forward(&input, &widest, false).expect("measure");
        ALLOCS.load(Ordering::Relaxed) - before
    };

    // --- end-to-end fixed-seed EA search (surrogate pipeline) -----------
    let big_space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let score = {
        let space = big_space.clone();
        move |arch: &Arch| {
            let net = lower_arch(space.skeleton(), arch).map_err(|e| {
                hsconas_evo::EvoError::Objective {
                    detail: e.to_string(),
                }
            })?;
            let latency_ms = device.network_time_us(&net) / 1000.0;
            let cost = hsconas_space::cost::arch_cost(space.skeleton(), arch)
                .map_err(hsconas_evo::EvoError::Space)?;
            let accuracy = 60.0 + 10.0 * (cost.total_flops() / 1e8).tanh();
            Ok(hsconas_evo::Evaluation {
                score: accuracy - 20.0 * (latency_ms / 34.0 - 1.0).abs(),
                accuracy,
                latency_ms,
            })
        }
    };
    let config = EvolutionConfig {
        generations: 6,
        population: 20,
        parents: 8,
        ..Default::default()
    };
    let mut objective = MemoObjective::new(ParallelObjective::new(score, 1));
    let mut search_rng = StdRng::seed_from_u64(seed);
    let search_span = span!("bench.search");
    let start = Instant::now();
    let result = EvolutionSearch::new(big_space, config)
        .run(&mut objective, &mut search_rng)
        .expect("search");
    let search_secs = start.elapsed().as_secs_f64();
    search_span.close();
    let search_evals = objective.stats().hits + objective.stats().misses;

    // --- telemetry-derived per-phase summary ----------------------------
    hsconas_telemetry::flush_metrics();
    let report = RunReport::from_events(&sink.take());
    sink.uninstall();
    let phases: Vec<(String, Value)> = report
        .span_aggs
        .iter()
        .filter(|a| !a.path.contains('/')) // top-level bench.* phases only
        .map(|a| {
            let mut fields = vec![
                ("count".to_string(), Value::U64(a.count)),
                ("total_ms".to_string(), Value::F64(a.total_us as f64 / 1e3)),
            ];
            if let Some(allocs) = a.allocs {
                fields.push(("allocs".to_string(), Value::U64(allocs)));
            }
            (a.path.clone(), Value::Object(fields))
        })
        .collect();

    let obj = |fields: Vec<(&str, Value)>| {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };

    // --- GEMM kernel variants: GFLOP/s per shape class ------------------
    // Conv-shaped problems covering the selector's shape classes; every
    // variant the host supports is measured on each so the snapshot records
    // both the speedup and which variant the selector actually picks. The
    // packed variants additionally sweep explicit band counts 1..sweep_max
    // (the GFLOP/s-vs-threads curve); `host_parallelism` is recorded so a
    // flat curve on a single-core container reads as expected, not broken.
    let kernels = {
        use hsconas_tensor::kernels::{
            classify, dispatch_counts, gemm_with, gemm_with_threads, Op, Variant,
        };
        let mut variants = vec![Variant::Direct, Variant::Scalar];
        if Variant::Avx2.is_available() {
            variants.push(Variant::Avx2);
        }
        let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&t| t <= sweep_max.max(1))
            .collect();
        // The fourth shape is the "large" one the band split is for:
        // enough macro-rows for 8 bands and several ms of arithmetic.
        let shapes = [
            (32, 144, 576),
            (128, 256, 128),
            (64, 1024, 256),
            (256, 512, 512),
        ];
        let mut shape_objs: Vec<(String, Value)> = Vec::new();
        for (m, k, n) in shapes {
            let mut srng = SmallRng::new(seed ^ 7);
            let a: Vec<f32> = (0..m * k).map(|_| srng.next_f32() - 0.5).collect();
            let b: Vec<f32> = (0..k * n).map(|_| srng.next_f32() - 0.5).collect();
            let mut c = vec![0.0f32; m * n];
            let flops = 2.0 * (m * k * n) as f64;
            let reps = ((5e8 / flops) as usize).clamp(10, 2000);
            // `threads: None` = the auto policy (what `gemm` callers get);
            // `Some(t)` = an explicit band count.
            let time_one = |variant: Variant, threads: Option<usize>, c: &mut [f32]| -> f64 {
                let run = |c: &mut [f32]| match threads {
                    None => gemm_with(variant, Op::Ab, &a, &b, c, m, k, n, false),
                    Some(t) => {
                        gemm_with_threads(variant, t, Op::Ab, &a, &b, c, m, k, n, false);
                    }
                };
                for _ in 0..3 {
                    run(c);
                }
                let start = Instant::now();
                for _ in 0..reps {
                    run(black_box(c));
                }
                let gflops = flops * reps as f64 / start.elapsed().as_secs_f64() / 1e9;
                (gflops * 100.0).round() / 100.0
            };
            let mut fields: Vec<(String, Value)> = vec![(
                "class".to_string(),
                Value::Str(classify(m, k, n).name().to_string()),
            )];
            for &variant in &variants {
                fields.push((
                    format!("gflops_{}", variant.name()),
                    Value::F64(time_one(variant, None, &mut c)),
                ));
                if variant == Variant::Direct {
                    continue; // the direct loops never fork
                }
                for &t in &thread_counts {
                    fields.push((
                        format!("gflops_{}_t{}", variant.name(), t),
                        Value::F64(time_one(variant, Some(t), &mut c)),
                    ));
                }
            }
            shape_objs.push((format!("{m}x{k}x{n}"), Value::Object(fields)));
        }
        let counts = dispatch_counts();
        let bands = hsconas_tensor::kernels::parallel_counts();
        obj(vec![
            (
                "selected",
                Value::Str(
                    hsconas_tensor::kernels::selected_variant()
                        .name()
                        .to_string(),
                ),
            ),
            (
                "host_parallelism",
                Value::U64(
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1) as u64,
                ),
            ),
            (
                "thread_sweep",
                Value::Array(
                    thread_counts
                        .iter()
                        .map(|&t| Value::U64(t as u64))
                        .collect(),
                ),
            ),
            (
                "dispatch",
                obj(vec![
                    ("direct", Value::U64(counts.direct)),
                    ("scalar", Value::U64(counts.scalar)),
                    ("avx2", Value::U64(counts.avx2)),
                ]),
            ),
            (
                "bands",
                obj(vec![
                    ("serial", Value::U64(bands.serial)),
                    ("parallel", Value::U64(bands.parallel)),
                ]),
            ),
            (
                "pack_cache",
                obj(vec![
                    ("hits", Value::U64(pack_after.hits)),
                    ("misses", Value::U64(pack_after.misses)),
                    ("evictions", Value::U64(pack_after.evictions)),
                    ("invalidations", Value::U64(pack_after.invalidations)),
                    ("entries", Value::U64(pack_after.entries as u64)),
                    ("bytes", Value::U64(pack_after.bytes as u64)),
                    (
                        "steady_state_hit_rate",
                        Value::F64((steady_state_hit_rate * 1e4).round() / 1e4),
                    ),
                ]),
            ),
            ("shapes", Value::Object(shape_objs)),
        ])
    };
    // --- graph deployment: optimized artifact vs masked supernet --------
    // Compile a mixed genome (narrow + grouped + skip layers so every
    // patch fires), then race single-image inference through the
    // specialized graph against the masked supernet forward it is
    // bit-identical to. Min-of-N cancels scheduler noise; the artifact
    // byte size is the on-disk deployment cost.
    let graph_block = {
        use hsconas_graph::{artifact, compile, execute, CompileOptions};
        use hsconas_space::{ChannelScale, Gene, NetworkSkeleton, OpKind};
        let sk = NetworkSkeleton::tiny(10);
        let genome = Arch::new(vec![
            Gene::new(
                OpKind::Xception,
                ChannelScale::from_tenths(4).expect("scale"),
            ),
            Gene::new(
                OpKind::Shuffle3,
                ChannelScale::from_tenths(4).expect("scale"),
            ),
            Gene::new(
                OpKind::Shuffle5,
                ChannelScale::from_tenths(6).expect("scale"),
            ),
            Gene::new(OpKind::Skip, ChannelScale::from_tenths(10).expect("scale")),
        ]);
        let opts = CompileOptions::default();
        let start = Instant::now();
        let (art, stats) = compile(&sk, &genome, &opts).expect("graph compile");
        let compile_ms = start.elapsed().as_secs_f64() * 1e3;
        let artifact_bytes = artifact::to_bytes(&art).len();
        let mut reference =
            hsconas_graph::build_reference(&sk, &genome, opts.seed, opts.warmup_steps)
                .expect("reference supernet");
        let res = sk.input_resolution;
        let mut grng = SmallRng::new(seed ^ 11);
        let x = hsconas_tensor::Tensor::randn([1, sk.input_channels, res, res], 1.0, &mut grng);
        let time_min = |run: &mut dyn FnMut()| -> f64 {
            for _ in 0..3 {
                run();
            }
            let mut best = f64::INFINITY;
            for _ in 0..30 {
                let start = Instant::now();
                run();
                best = best.min(start.elapsed().as_secs_f64() * 1e3);
            }
            (best * 1e4).round() / 1e4
        };
        let graph_ms = time_min(&mut || {
            black_box(execute(&art.graph, &x).expect("graph execute"));
        });
        let reference_ms = time_min(&mut || {
            black_box(reference.forward(&x, &genome, false).expect("reference"));
        });
        obj(vec![
            ("arch", Value::Str(genome.to_string())),
            ("nodes", Value::U64(art.graph.nodes.len() as u64)),
            (
                "weight_floats",
                Value::U64(art.graph.const_elements() as u64),
            ),
            ("artifact_bytes", Value::U64(artifact_bytes as u64)),
            ("compile_ms", Value::F64((compile_ms * 1e2).round() / 1e2)),
            (
                "patches",
                obj(vec![
                    ("fused", Value::U64(stats.fused as u64)),
                    ("specialized", Value::U64(stats.specialized as u64)),
                    ("folded", Value::U64(stats.folded as u64)),
                    ("removed", Value::U64(stats.removed as u64)),
                ]),
            ),
            ("infer_ms_graph", Value::F64(graph_ms)),
            ("infer_ms_reference", Value::F64(reference_ms)),
            (
                "speedup",
                Value::F64((reference_ms / graph_ms * 1e3).round() / 1e3),
            ),
        ])
    };

    // --- fleet serving throughput (opt-in via --fleet N) ----------------
    let fleet_block = if fleet_workers > 0 {
        Some(fleet_bench(fleet_workers))
    } else {
        None
    };

    let mut snapshot = obj(vec![
        ("seed", Value::U64(seed)),
        (
            "population_eval",
            obj(vec![
                ("population", Value::U64(population.len() as u64)),
                ("eval_batches", Value::U64(eval_batches as u64)),
                ("reps", Value::U64(reps as u64)),
                ("archs_per_sec_cache_off", Value::F64(archs_off)),
                ("archs_per_sec_cache_on", Value::F64(archs_on)),
                ("forwards_per_sec_cache_off", Value::F64(forwards_off)),
                ("forwards_per_sec_cache_on", Value::F64(forwards_on)),
                ("speedup", Value::F64(archs_on / archs_off)),
                ("cache_hit_rate", Value::F64(hit_rate)),
            ]),
        ),
        (
            "alloc",
            obj(vec![(
                "allocations_per_forward",
                Value::U64(allocs_per_forward),
            )]),
        ),
        (
            "search",
            obj(vec![
                ("generations", Value::U64(6)),
                ("population", Value::U64(20)),
                (
                    "archs_per_sec",
                    Value::F64(search_evals as f64 / search_secs),
                ),
                ("best_score", Value::F64(result.best_evaluation.score)),
            ]),
        ),
        (
            "telemetry",
            obj(vec![
                (
                    "schema_version",
                    Value::U64(hsconas_telemetry::SCHEMA_VERSION),
                ),
                ("overhead_ratio", Value::F64(overhead_ratio)),
                ("phases", Value::Object(phases)),
            ]),
        ),
        ("kernels", kernels),
        ("graph", graph_block),
        ("pareto", pareto_bench(seed)),
    ]);
    if let (Value::Object(fields), Some(fleet)) = (&mut snapshot, fleet_block) {
        fields.push(("fleet".to_string(), fleet));
    }
    println!("{}", serde_json::to_string_pretty(&snapshot).expect("json"));
}

/// The `pareto` snapshot block: a fixed-seed in-process NSGA-II run over
/// the three paper devices through the serve warm state (frontier size,
/// evaluations, wall time), plus the bench-table fast path — rows built
/// via the same `measure` path as `hsconas bench-table`, the hit rate
/// over a half-covered probe mix, and min-of-N table-hit vs live-eval
/// latency with bit-identity asserted before timing.
fn pareto_bench(seed: u64) -> Value {
    use hsconas_evo::{
        tradeoff_score, MemoObjective, Objective, ParallelObjective, ParetoObjective, ParetoSearch,
    };
    use hsconas_serve::router::arch_route_key;
    use hsconas_serve::{BenchTable, ServeOptions, TableDevice, TableEntry, WarmState};

    let obj = |fields: Vec<(&str, Value)>| {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };

    let state = WarmState::new(ServeOptions::default());
    let mut devices: Vec<_> = ["gpu", "cpu", "edge"]
        .iter()
        .map(|name| state.device(name).expect("warm device"))
        .collect();
    devices.sort_by(|a, b| a.name.cmp(&b.name));
    let target_ms = 34.0;
    let space = devices[0].space.clone();

    // Multi-device frontier over the live evaluators, exactly as the
    // serve `pareto` request wires them (memoized, pool width 1).
    let per_device: Vec<(String, Box<dyn Objective>)> = devices
        .iter()
        .map(|device| {
            let ctx = device.eval_context(target_ms);
            let objective = MemoObjective::with_shared_cache(
                ParallelObjective::new(device.evaluator(&ctx), 1),
                ctx.cache.clone(),
            );
            (
                device.name.clone(),
                Box::new(objective) as Box<dyn Objective>,
            )
        })
        .collect();
    let config = EvolutionConfig {
        generations: 4,
        population: 12,
        parents: 6,
        ..Default::default()
    };
    let mut objective = ParetoObjective::new(per_device).expect("pareto objective");
    let start = Instant::now();
    let frontier = ParetoSearch::new(space.clone(), config)
        .run(&mut objective, &mut StdRng::seed_from_u64(seed))
        .expect("pareto search");
    let search_secs = start.elapsed().as_secs_f64();

    // Bench table over a sampled subspace, through the same `measure`
    // path the offline `hsconas bench-table` job uses.
    let columns: Vec<TableDevice> = devices
        .iter()
        .map(|device| {
            let (_, bias_us) = device.predictor_stats();
            TableDevice {
                name: device.name.clone(),
                lut_generation: device.lut_generation(),
                bias_us,
            }
        })
        .collect();
    let samples = 32usize;
    let mut table = BenchTable::new(seed, samples as u64, columns);
    let covered = space.sample_n(samples, &mut StdRng::seed_from_u64(seed ^ 3));
    for arch in &covered {
        let fingerprint = arch_route_key(&arch.encode());
        if table.get(fingerprint).is_some() {
            continue;
        }
        let mut accuracy = 0.0;
        let mut latencies_ms = Vec::with_capacity(devices.len());
        for (i, device) in devices.iter().enumerate() {
            let (acc, lat) = device.measure(arch).expect("measure");
            if i == 0 {
                accuracy = acc;
            }
            latencies_ms.push(lat);
        }
        table.insert(
            fingerprint,
            TableEntry {
                accuracy,
                latencies_ms,
            },
        );
    }

    // Hit rate over a probe mix: every covered arch plus as many fresh
    // ones (expected rate ~0.5 — the point is that misses are counted,
    // not that coverage is total).
    let fresh = space.sample_n(samples, &mut StdRng::seed_from_u64(seed ^ 9));
    let mut hits = 0usize;
    let mut probes = 0usize;
    for arch in covered.iter().chain(&fresh) {
        probes += 1;
        if table.get(arch_route_key(&arch.encode())).is_some() {
            hits += 1;
        }
    }
    let hit_rate = hits as f64 / probes as f64;

    // Table-hit vs live-eval latency for one covered arch. The fast path
    // is a hash lookup plus an Eq. 1 recompute; the live path runs the
    // oracle and predictor. Bit-identity is asserted before timing, so
    // the speedup never comes from answering a different question.
    let probe = covered[0].clone();
    let fingerprint = arch_route_key(&probe.encode());
    let ctx = devices[0].eval_context(target_ms);
    let evaluator = devices[0].evaluator(&ctx);
    let live = evaluator(&probe).expect("live eval");
    let entry = table.get(fingerprint).expect("covered row");
    let beta = hsconas_serve::state::BETA;
    let table_score = tradeoff_score(entry.accuracy, entry.latencies_ms[0], target_ms, beta);
    assert_eq!(
        live.score.to_bits(),
        table_score.to_bits(),
        "table-hit score must be bit-identical to live evaluation"
    );
    assert_eq!(live.latency_ms.to_bits(), entry.latencies_ms[0].to_bits());

    let time_min = |run: &mut dyn FnMut() -> f64| -> f64 {
        let reps = 64;
        for _ in 0..reps {
            black_box(run());
        }
        let mut best = f64::INFINITY;
        for _ in 0..20 {
            let start = Instant::now();
            for _ in 0..reps {
                black_box(run());
            }
            best = best.min(start.elapsed().as_secs_f64() / reps as f64);
        }
        best
    };
    let live_secs = time_min(&mut || evaluator(&probe).expect("live eval").score);
    let hit_secs = time_min(&mut || {
        let entry = table.get(fingerprint).expect("covered row");
        tradeoff_score(entry.accuracy, entry.latencies_ms[0], target_ms, beta)
    });

    obj(vec![
        (
            "devices",
            Value::Array(
                frontier
                    .devices
                    .iter()
                    .map(|d| Value::Str(d.clone()))
                    .collect(),
            ),
        ),
        ("frontier_size", Value::U64(frontier.points.len() as u64)),
        ("generations", Value::U64(frontier.generations as u64)),
        ("evaluated", Value::U64(frontier.evaluated)),
        ("search_ms", Value::F64((search_secs * 1e5).round() / 1e2)),
        (
            "bench_table",
            obj(vec![
                ("rows", Value::U64(table.len() as u64)),
                ("probes", Value::U64(probes as u64)),
                ("hits", Value::U64(hits as u64)),
                ("probe_hit_rate", Value::F64((hit_rate * 1e4).round() / 1e4)),
                ("live_eval_us", Value::F64((live_secs * 1e8).round() / 1e2)),
                ("table_hit_us", Value::F64((hit_secs * 1e8).round() / 1e2)),
                (
                    "speedup",
                    Value::F64((live_secs / hit_secs * 1e2).round() / 1e2),
                ),
            ]),
        ),
    ])
}

/// One topology's share of the `--fleet` comparison: requests/sec over
/// the mixed workload plus per-request-type latency samples.
struct ServingOutcome {
    requests_per_sec: f64,
    latency_ms: Vec<(String, Vec<f64>)>,
}

/// Drives the fixed mixed workload (predict/score/infer/search) over one
/// connection to `addr` and times every request client-side.
fn serving_workload(addr: &str) -> ServingOutcome {
    use hsconas_serve::proto::Command;
    use hsconas_serve::Client;

    let wide: Vec<usize> = (0..20).flat_map(|_| [0usize, 9]).collect();
    let tiny: Vec<usize> = (0..4).flat_map(|_| [0usize, 9]).collect();
    let predict = |arch: &[usize]| Command::PredictLatency {
        device: "edge".to_string(),
        arch: arch.to_vec(),
    };
    let score = |target_ms: f64| Command::Score {
        device: "edge".to_string(),
        target_ms,
        arch: wide.clone(),
    };
    // Distinct score targets and infer seeds defeat the eval memo, so
    // both topologies do real work on every request; the identical fixed
    // sequence keeps the comparison apples-to-apples.
    let mut requests: Vec<(&str, Command)> = Vec::new();
    for i in 0..40 {
        requests.push(("predict_latency", predict(&wide)));
        requests.push(("score", score(1_000.0 + i as f64)));
    }
    for i in 0..20u64 {
        requests.push((
            "infer",
            Command::Infer {
                arch: tiny.clone(),
                input_seed: i,
                batch: 1,
            },
        ));
    }
    for seed in 0..3u64 {
        requests.push((
            "search",
            Command::Search {
                device: "edge".to_string(),
                target_ms: 34.0,
                seed,
            },
        ));
    }

    let mut client = Client::connect(addr).expect("connect serving bench");
    client
        .set_timeout(Some(std::time::Duration::from_secs(600)))
        .ok();
    // Warm every request path once so first-touch calibration and graph
    // compilation don't land in the percentiles.
    for cmd in [
        predict(&wide),
        score(999.0),
        Command::Infer {
            arch: tiny.clone(),
            input_seed: 999,
            batch: 1,
        },
    ] {
        assert!(client.call(cmd).expect("warm call").is_ok());
    }

    let mut latency_ms: Vec<(String, Vec<f64>)> = Vec::new();
    let start = Instant::now();
    for (kind, cmd) in requests {
        let t0 = Instant::now();
        let response = client.call(cmd).expect("bench call");
        assert!(response.is_ok(), "bench request failed: {response:?}");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        match latency_ms.iter_mut().find(|(k, _)| k == kind) {
            Some((_, samples)) => samples.push(ms),
            None => latency_ms.push((kind.to_string(), vec![ms])),
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let total: usize = latency_ms.iter().map(|(_, s)| s.len()).sum();
    ServingOutcome {
        requests_per_sec: total as f64 / secs,
        latency_ms,
    }
}

/// Nearest-rank percentile over an unsorted sample set.
fn percentile_ms(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    (sorted[idx] * 1e3).round() / 1e3
}

/// The `fleet` snapshot block: the same mixed workload against one
/// in-process daemon and against a router fronting `workers` in-process
/// daemons, so nightly runs record the routing overhead and the shard
/// scaling side by side.
fn fleet_bench(workers: usize) -> Value {
    use hsconas_serve::{Json, Router, RouterOptions, ServeOptions, Server};

    let serve_options = || ServeOptions {
        preload: vec!["edge".to_string()],
        ..Default::default()
    };
    let outcome_obj = |outcome: &ServingOutcome| -> Vec<(String, Value)> {
        let mut fields = vec![(
            "requests_per_sec".to_string(),
            Value::F64((outcome.requests_per_sec * 1e2).round() / 1e2),
        )];
        let latency: Vec<(String, Value)> = outcome
            .latency_ms
            .iter()
            .map(|(kind, samples)| {
                (
                    kind.clone(),
                    Value::Object(vec![
                        ("count".to_string(), Value::U64(samples.len() as u64)),
                        (
                            "p50_ms".to_string(),
                            Value::F64(percentile_ms(samples, 0.5)),
                        ),
                        (
                            "p99_ms".to_string(),
                            Value::F64(percentile_ms(samples, 0.99)),
                        ),
                    ]),
                )
            })
            .collect();
        fields.push(("latency_ms".to_string(), Value::Object(latency)));
        fields
    };

    // Single daemon baseline.
    let server = Server::bind(serve_options()).expect("bind single daemon");
    let single_addr = server.local_addr().to_string();
    let single_thread = std::thread::spawn(move || server.run());
    let single = serving_workload(&single_addr);
    hsconas_serve::Client::connect(&single_addr)
        .and_then(|mut c| c.shutdown())
        .expect("drain single daemon");
    single_thread
        .join()
        .expect("join single daemon")
        .expect("single daemon run");

    // Router + N in-process workers (drained by the router on shutdown).
    let mut worker_threads = Vec::new();
    let mut shard_addrs = Vec::new();
    for _ in 0..workers {
        let worker = Server::bind(serve_options()).expect("bind worker");
        shard_addrs.push(worker.local_addr().to_string());
        worker_threads.push(std::thread::spawn(move || worker.run()));
    }
    let router = Router::bind(RouterOptions {
        shards: shard_addrs,
        ..Default::default()
    })
    .expect("bind router");
    let router_addr = router.local_addr().to_string();
    let router_thread = std::thread::spawn(move || router.run());
    let sharded = serving_workload(&router_addr);
    let mut status_client =
        hsconas_serve::Client::connect(&router_addr).expect("connect for fleet status");
    let status = status_client.status().expect("fleet status");
    let router_counter = |name: &str| -> u64 {
        status
            .result
            .as_ref()
            .and_then(|r| r.get("router"))
            .and_then(|r| r.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let (routed, retried, failed) = (
        router_counter("routed"),
        router_counter("retried"),
        router_counter("failed"),
    );
    status_client.shutdown().expect("drain fleet");
    router_thread
        .join()
        .expect("join router")
        .expect("router run");
    for thread in worker_threads {
        thread.join().expect("join worker").expect("worker run");
    }

    let mut sharded_fields = outcome_obj(&sharded);
    sharded_fields.push(("routed".to_string(), Value::U64(routed)));
    sharded_fields.push(("retried".to_string(), Value::U64(retried)));
    sharded_fields.push(("failed".to_string(), Value::U64(failed)));
    Value::Object(vec![
        ("workers".to_string(), Value::U64(workers as u64)),
        ("single".to_string(), Value::Object(outcome_obj(&single))),
        ("sharded".to_string(), Value::Object(sharded_fields)),
    ])
}
