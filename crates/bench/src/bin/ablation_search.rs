//! Ablation: EA vs random search vs greedy local search at an equal
//! evaluation budget (1000 architecture evaluations, the paper's EA
//! budget of 20 generations x 50 population).
//!
//! Usage: `cargo run --release -p hsconas-bench --bin ablation_search [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{ablation, seed_from_args, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    print!("{}", ablation::render_search(&ablation::search(seed, 1000)));
}
