//! Extension: per-image latency vs batch size on each simulated device —
//! the justification for the paper's batch-size choices (32/1/16).
//!
//! Usage: `cargo run --release -p hsconas-bench --bin extension_batch [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{extension_batch, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    print!("{}", extension_batch::render(&extension_batch::run()));
}
