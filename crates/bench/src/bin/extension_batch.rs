//! Extension: per-image latency vs batch size on each simulated device —
//! the justification for the paper's batch-size choices (32/1/16).
//!
//! Usage: `cargo run --release -p hsconas-bench --bin extension_batch`

use hsconas_bench::extension_batch;

fn main() {
    print!("{}", extension_batch::render(&extension_batch::run()));
}
