//! Extension: per-image latency vs batch size on each simulated device —
//! the justification for the paper's batch-size choices (32/1/16).
//!
//! Usage: `cargo run --release -p hsconas-bench --bin extension_batch [--threads N]`

use hsconas_bench::{extension_batch, threads_from_args};

fn main() {
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    print!("{}", extension_batch::render(&extension_batch::run()));
}
