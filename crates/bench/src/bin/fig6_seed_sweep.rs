//! Seed sweep for the Fig. 6 (left) shrink-vs-naive comparison: the
//! margin is noise-prone at tiny scale, so report several seeds.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin fig6_seed_sweep [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{fig6, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    println!("seed   naive  shrink  winner");
    let mut shrink_wins = 0;
    let seeds = [1u64, 2, 3, 5, 8, 2021];
    for &seed in &seeds {
        let r = fig6::run_shrink_vs_naive(seed, 300);
        let winner = if r.shrink_accuracy >= r.naive_accuracy {
            shrink_wins += 1;
            "shrink"
        } else {
            "naive"
        };
        println!(
            "{seed:<6} {:.3}  {:.3}   {winner}",
            r.naive_accuracy, r.shrink_accuracy
        );
    }
    println!("\nshrink wins {shrink_wins}/{} seeds", seeds.len());
}
