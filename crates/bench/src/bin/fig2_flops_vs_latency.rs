//! Regenerates Fig. 2: latency vs FLOPs / Params decorrelation.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin fig2_flops_vs_latency [--seed N] [--threads N] [--telemetry RUN.jsonl]`

use hsconas_bench::{fig2, plot, seed_from_args, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let results = fig2::run(seed, 512);
    print!("{}", fig2::render(&results));
    for r in &results {
        let flops: Vec<(f64, f64)> = r.points.iter().map(|p| (p.mflops, p.latency_ms)).collect();
        let params: Vec<(f64, f64)> = r.points.iter().map(|p| (p.mparams, p.latency_ms)).collect();
        println!();
        print!(
            "{}",
            plot::scatter(
                &flops,
                60,
                14,
                &format!("{}: latency(ms) vs MFLOPs", r.device)
            )
        );
        print!(
            "{}",
            plot::scatter(
                &params,
                60,
                14,
                &format!("{}: latency(ms) vs MParams", r.device)
            )
        );
    }
    // emit the raw scatter for external plotting
    println!("\n# device,mflops,mparams,latency_ms");
    for r in &results {
        for p in r.points.iter().take(20) {
            println!(
                "{},{:.1},{:.2},{:.2}",
                r.device, p.mflops, p.mparams, p.latency_ms
            );
        }
        println!("# ... ({} points total for {})", r.points.len(), r.device);
    }
}
