//! Regenerates Fig. 5: the progressive space-shrinking trajectory.
//!
//! Usage: `cargo run --release -p hsconas-bench --bin fig5_space_shrinking [--seed N] [--threads N] [--telemetry RUN.jsonl] [--checkpoint DIR [--resume] [--keep-last K]]`

use hsconas_bench::{ckpt_from_args, fig5, seed_from_args, telemetry_from_args, threads_from_args};

fn main() {
    let _telemetry = telemetry_from_args();
    let seed = seed_from_args();
    let threads = threads_from_args();
    let ckpt = ckpt_from_args();
    eprintln!("worker pool: {threads} threads (override with --threads N)");
    let result = fig5::run_checkpointed(seed, 100, ckpt.as_ref());
    print!("{}", fig5::render(&result));
}
