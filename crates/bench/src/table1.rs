//! Table I reproduction harness: thin wrapper over
//! [`hsconas::table_one`] adding the paper-vs-simulated comparison columns
//! used by EXPERIMENTS.md.

use hsconas::{PipelineConfig, TableRow};
use hsconas_baselines::zoo;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The harness result: the reproduced table plus baseline deltas against
/// the paper's published latencies.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// All reproduced rows (11 baselines + 6 HSCoNets).
    pub rows: Vec<TableRow>,
    /// Per-baseline relative latency error vs the paper's testbed numbers,
    /// `[GPU, CPU, Edge]`, as fractions.
    pub baseline_latency_error: Vec<(String, [f64; 3])>,
}

/// Runs the full reproduction with the given pipeline configuration.
pub fn run(seed: u64, config: &PipelineConfig) -> Table1Result {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = hsconas::table_one(config, &mut rng).expect("table generation");
    let baselines = zoo::all_baselines();
    let baseline_latency_error = baselines
        .iter()
        .map(|model| {
            let row = rows
                .iter()
                .find(|r| r.name == model.name)
                .expect("baseline row present");
            let mut err = [0.0; 3];
            for (i, e) in err.iter_mut().enumerate() {
                *e = row.latency_ms[i] / model.paper_latency_ms[i] - 1.0;
            }
            (model.name.clone(), err)
        })
        .collect();
    Table1Result {
        rows,
        baseline_latency_error,
    }
}

/// Renders the table plus the paper-vs-simulated deltas.
pub fn render(result: &Table1Result) -> String {
    let mut out = hsconas::render_table(&result.rows);
    out.push_str("\nBaseline latency: simulated vs paper testbed (relative error)\n");
    for (name, err) in &result.baseline_latency_error {
        out.push_str(&format!(
            "{:<26} GPU {:>+6.0}%  CPU {:>+6.0}%  Edge {:>+6.0}%\n",
            name,
            err[0] * 100.0,
            err[1] * 100.0,
            err[2] * 100.0
        ));
    }
    out
}

/// Checks the paper's headline qualitative claims on a generated table;
/// returns human-readable failures (empty = all claims hold).
pub fn check_headline_claims(result: &Table1Result) -> Vec<String> {
    let mut failures = Vec::new();
    let find = |name: &str| result.rows.iter().find(|r| r.name == name);
    let (Some(gpu_a), Some(cpu_b), Some(proxyless_gpu), Some(darts)) = (
        find("HSCoNet-GPU-A"),
        find("HSCoNet-CPU-B"),
        find("ProxylessNAS-GPU"),
        find("DARTS"),
    ) else {
        return vec!["missing expected rows".into()];
    };
    // Claim 1: HSCoNet-GPU-A comparable accuracy to ProxylessNAS-GPU but
    // faster on GPU (paper: ×1.3).
    if gpu_a.top1_error > proxyless_gpu.top1_error + 1.0 {
        failures.push(format!(
            "GPU-A error {} not comparable to ProxylessNAS-GPU {}",
            gpu_a.top1_error, proxyless_gpu.top1_error
        ));
    }
    if gpu_a.latency_ms[0] >= proxyless_gpu.latency_ms[0] {
        failures.push(format!(
            "GPU-A ({} ms) not faster than ProxylessNAS-GPU ({} ms) on GPU",
            gpu_a.latency_ms[0], proxyless_gpu.latency_ms[0]
        ));
    }
    // Claim 2: HSCoNet-CPU-B has the lowest top-1 error among all rows and
    // a large CPU speedup over DARTS (paper: ×3.1).
    // In the paper CPU-B leads GPU-B by only 0.1 points, which is inside
    // search noise at reduced budgets; require it near the minimum rather
    // than exactly at it.
    let min_err = result
        .rows
        .iter()
        .map(|r| r.top1_error)
        .fold(f64::INFINITY, f64::min);
    if cpu_b.top1_error > min_err + 2.0 {
        failures.push(format!(
            "CPU-B error {} not near the table minimum {}",
            cpu_b.top1_error, min_err
        ));
    }
    let speedup = darts.latency_ms[1] / cpu_b.latency_ms[1];
    if speedup < 2.0 {
        failures.push(format!("CPU-B speedup over DARTS only x{speedup:.2}"));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_complete_table() {
        let result = run(5, &PipelineConfig::fast_test());
        assert_eq!(result.rows.len(), 17);
        assert_eq!(result.baseline_latency_error.len(), 11);
    }

    #[test]
    fn render_includes_deltas() {
        let result = run(6, &PipelineConfig::fast_test());
        let text = render(&result);
        assert!(text.contains("relative error"));
        assert!(text.contains("HSCoNet-Edge-B"));
    }

    #[test]
    fn headline_claims_hold_on_fast_budget() {
        // Even the reduced-budget search should keep the coarse claims.
        let result = run(2021, &PipelineConfig::fast_test());
        let failures = check_headline_claims(&result);
        assert!(failures.is_empty(), "failed claims: {failures:?}");
    }
}
