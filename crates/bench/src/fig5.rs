//! Fig. 5 reproduction: the progressive space-shrinking pipeline — the
//! initial space `A`, the first shrink `A_ss^1st` (layers 20→17), and the
//! second shrink `A_ss^2nd` (layers 16→13), each stage cutting the space
//! size by roughly three orders of magnitude while evaluating only
//! `5 × 4` subspaces instead of `5⁴`.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_evo::TradeoffObjective;
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::LatencyPredictor;
use hsconas_shrink::{ProgressiveShrinking, ShrinkConfig, ShrinkResult};
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Fig. 5 result: the shrink record plus the space-size trajectory.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// `log10 |A|` of the initial space.
    pub initial_log10: f64,
    /// The shrink record (stages, per-layer decisions, sizes).
    pub shrink: ShrinkResult,
    /// Subspaces evaluated by the progressive method (`5 × 4` per stage).
    pub subspaces_evaluated: usize,
    /// Subspaces a joint four-layer evaluation would need (`5⁴` per stage).
    pub subspaces_joint: usize,
}

/// Runs progressive shrinking on the edge device with the paper's
/// schedule; `samples_per_subspace` tunes runtime (paper: 100).
pub fn run(seed: u64, samples_per_subspace: usize) -> Fig5Result {
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let predictor =
        LatencyPredictor::calibrate(device, &space, 40, 3, &mut rng).expect("calibration");
    let mut objective = TradeoffObjective::new(
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        34.0,
        -20.0,
    );
    let config = ShrinkConfig {
        samples_per_subspace,
        ..Default::default()
    };
    let initial_log10 = space.log10_size();
    let shrink = ProgressiveShrinking::new(config.clone())
        .run(space, &mut objective, &mut rng, |_, _| Ok(()))
        .expect("shrinking");
    let per_stage_layers = config.stages.iter().map(|s| s.len()).collect::<Vec<_>>();
    let subspaces_evaluated = per_stage_layers.iter().map(|l| 5 * l).sum();
    let subspaces_joint = per_stage_layers.iter().map(|l| 5usize.pow(*l as u32)).sum();
    Fig5Result {
        initial_log10,
        shrink,
        subspaces_evaluated,
        subspaces_joint,
    }
}

/// Renders the shrink trajectory and per-layer decisions.
pub fn render(result: &Fig5Result) -> String {
    let mut out = String::new();
    out.push_str("Fig. 5 — progressive space shrinking\n");
    out.push_str(&format!(
        "initial space      : 10^{:.2} architectures\n",
        result.initial_log10
    ));
    for stage in &result.shrink.stages {
        out.push_str(&format!(
            "after stage {} (A_ss^{}): 10^{:.2}  (-{:.2} orders)\n",
            stage.stage + 1,
            if stage.stage == 0 { "1st" } else { "2nd" },
            stage.log10_size_after,
            stage.orders_removed()
        ));
        for d in &stage.decisions {
            let quality_list = d
                .qualities
                .iter()
                .map(|(op, q)| format!("{op}:{q:.2}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "  layer {:>2} -> {:<12} ({quality_list})\n",
                d.layer + 1,
                d.chosen.to_string()
            ));
        }
    }
    out.push_str(&format!(
        "subspace evaluations: {} (progressive) vs {} (joint per-stage)\n",
        result.subspaces_evaluated, result.subspaces_joint
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_stage_removes_about_three_orders() {
        let result = run(1, 15);
        assert_eq!(result.shrink.stages.len(), 2);
        for stage in &result.shrink.stages {
            let orders = stage.orders_removed();
            assert!(
                (2.5..=3.0).contains(&orders),
                "stage {} removed {orders} orders (expected ~2.8)",
                stage.stage
            );
        }
    }

    #[test]
    fn evaluation_count_matches_paper_complexity_claim() {
        let result = run(2, 5);
        assert_eq!(result.subspaces_evaluated, 2 * 5 * 4);
        assert_eq!(result.subspaces_joint, 2 * 625);
    }

    #[test]
    fn final_space_has_eight_fixed_layers() {
        let result = run(3, 10);
        assert_eq!(result.shrink.space.fixed_layers().len(), 8);
        // layers 12..=19 fixed (the paper's 13th..20th)
        for l in 12..20 {
            assert_eq!(result.shrink.space.allowed_ops(l).len(), 1, "layer {l}");
        }
        for l in 0..12 {
            assert_eq!(result.shrink.space.allowed_ops(l).len(), 5, "layer {l}");
        }
    }

    #[test]
    fn render_shows_trajectory() {
        let text = render(&run(4, 5));
        assert!(text.contains("A_ss^1st"));
        assert!(text.contains("A_ss^2nd"));
        assert!(text.contains("subspace evaluations"));
    }
}
