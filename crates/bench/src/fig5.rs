//! Fig. 5 reproduction: the progressive space-shrinking pipeline — the
//! initial space `A`, the first shrink `A_ss^1st` (layers 20→17), and the
//! second shrink `A_ss^2nd` (layers 16→13), each stage cutting the space
//! size by roughly three orders of magnitude while evaluating only
//! `5 × 4` subspaces instead of `5⁴`.

use hsconas::checkpoint::{PipelineCkpt, CUR_CALIBRATED, CUR_SHRINK_BASE};
use hsconas::CheckpointOptions;
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_ckpt::{fnv1a, CheckpointStore, Phase};
use hsconas_evo::TradeoffObjective;
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::{LatencyPredictor, PredictorSnapshot};
use hsconas_shrink::{ProgressiveShrinking, ShrinkConfig, ShrinkResult, StageRecord};
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Fig. 5 result: the shrink record plus the space-size trajectory.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// `log10 |A|` of the initial space.
    pub initial_log10: f64,
    /// The shrink record (stages, per-layer decisions, sizes).
    pub shrink: ShrinkResult,
    /// Subspaces evaluated by the progressive method (`5 × 4` per stage).
    pub subspaces_evaluated: usize,
    /// Subspaces a joint four-layer evaluation would need (`5⁴` per stage).
    pub subspaces_joint: usize,
}

/// Runs progressive shrinking on the edge device with the paper's
/// schedule; `samples_per_subspace` tunes runtime (paper: 100).
pub fn run(seed: u64, samples_per_subspace: usize) -> Fig5Result {
    run_checkpointed(seed, samples_per_subspace, None)
}

/// [`run`] with optional crash-safe checkpointing: a checkpoint lands
/// after calibration and after every completed shrinking stage; with
/// `resume` set the trajectory continues from the latest one
/// bit-identically (the restricted space is rebuilt by replaying the
/// checkpointed per-layer decisions and the RNG stream is restored).
pub fn run_checkpointed(
    seed: u64,
    samples_per_subspace: usize,
    ckpt: Option<&CheckpointOptions>,
) -> Fig5Result {
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let mut rng = StdRng::seed_from_u64(seed);
    // The space/device/schedule are fixed in code, so the config hash
    // only needs the two free knobs.
    let config_hash = fnv1a(format!("fig5-v1:{samples_per_subspace}:{seed}").as_bytes());
    let store = ckpt.map(|opts| {
        CheckpointStore::open(&opts.dir, Phase::Shrink, config_hash, opts.keep_last)
            .expect("checkpoint dir")
    });
    let resume: Option<PipelineCkpt> = match (&store, ckpt) {
        (Some(store), Some(opts)) if opts.resume => store
            .load_latest()
            .expect("load checkpoint")
            .map(|(_, payload)| PipelineCkpt::decode(&payload).expect("decode checkpoint")),
        _ => None,
    };
    if let Some(state) = resume.as_ref().and_then(|r| r.search_rng) {
        rng = StdRng::from_state(state);
    }
    let predictor = match resume.as_ref().and_then(|r| r.predictor_json.as_deref()) {
        Some(json) => {
            let snapshot: PredictorSnapshot =
                serde_json::from_str(json).expect("predictor snapshot");
            LatencyPredictor::from_snapshot(device, &space, snapshot).expect("predictor restore")
        }
        None => LatencyPredictor::calibrate(device, &space, 40, 3, &mut rng).expect("calibration"),
    };
    let predictor_json = store
        .as_ref()
        .map(|_| serde_json::to_string(&predictor.export()).expect("serialize snapshot"));
    if let Some(store) = &store {
        if resume.is_none() {
            let payload = PipelineCkpt {
                tag: hsconas::checkpoint::TAG_CALIBRATED,
                trainer: None,
                cursor: None,
                predictor_json: predictor_json.clone(),
                search_rng: Some(rng.state()),
                stages: Vec::new(),
                ea: None,
            }
            .encode()
            .expect("encode checkpoint");
            store
                .save(CUR_CALIBRATED, &payload)
                .expect("save checkpoint");
        }
    }
    let mut objective = TradeoffObjective::new(
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        34.0,
        -20.0,
    );
    let config = ShrinkConfig {
        samples_per_subspace,
        ..Default::default()
    };
    let initial_log10 = space.log10_size();
    let mut completed: Vec<StageRecord> = resume.map_or_else(Vec::new, |r| r.stages);
    let mut current = space.clone();
    for record in &completed {
        for decision in &record.decisions {
            current = current
                .restrict_op(decision.layer, decision.chosen)
                .expect("replay shrink decision");
        }
    }
    for (stage_idx, layers) in config.stages.iter().enumerate().skip(completed.len()) {
        let result = ProgressiveShrinking::new(ShrinkConfig {
            stages: vec![layers.clone()],
            samples_per_subspace,
        })
        .run(current.clone(), &mut objective, &mut rng, |_, _| Ok(()))
        .expect("shrinking");
        current = result.space;
        let mut record = result
            .stages
            .into_iter()
            .next()
            .expect("single-stage shrink yields one record");
        record.stage = stage_idx;
        completed.push(record);
        if let Some(store) = &store {
            let payload = PipelineCkpt {
                tag: hsconas::checkpoint::TAG_SHRINK_STAGE,
                trainer: None,
                cursor: None,
                predictor_json: predictor_json.clone(),
                search_rng: Some(rng.state()),
                stages: completed.clone(),
                ea: None,
            }
            .encode()
            .expect("encode checkpoint");
            store
                .save(CUR_SHRINK_BASE + stage_idx as u64 + 1, &payload)
                .expect("save checkpoint");
        }
    }
    let shrink = ShrinkResult {
        space: current,
        stages: completed,
    };
    let per_stage_layers = config.stages.iter().map(|s| s.len()).collect::<Vec<_>>();
    let subspaces_evaluated = per_stage_layers.iter().map(|l| 5 * l).sum();
    let subspaces_joint = per_stage_layers.iter().map(|l| 5usize.pow(*l as u32)).sum();
    Fig5Result {
        initial_log10,
        shrink,
        subspaces_evaluated,
        subspaces_joint,
    }
}

/// Renders the shrink trajectory and per-layer decisions.
pub fn render(result: &Fig5Result) -> String {
    let mut out = String::new();
    out.push_str("Fig. 5 — progressive space shrinking\n");
    out.push_str(&format!(
        "initial space      : 10^{:.2} architectures\n",
        result.initial_log10
    ));
    for stage in &result.shrink.stages {
        out.push_str(&format!(
            "after stage {} (A_ss^{}): 10^{:.2}  (-{:.2} orders)\n",
            stage.stage + 1,
            if stage.stage == 0 { "1st" } else { "2nd" },
            stage.log10_size_after,
            stage.orders_removed()
        ));
        for d in &stage.decisions {
            let quality_list = d
                .qualities
                .iter()
                .map(|(op, q)| format!("{op}:{q:.2}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "  layer {:>2} -> {:<12} ({quality_list})\n",
                d.layer + 1,
                d.chosen.to_string()
            ));
        }
    }
    out.push_str(&format!(
        "subspace evaluations: {} (progressive) vs {} (joint per-stage)\n",
        result.subspaces_evaluated, result.subspaces_joint
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_stage_removes_about_three_orders() {
        let result = run(1, 15);
        assert_eq!(result.shrink.stages.len(), 2);
        for stage in &result.shrink.stages {
            let orders = stage.orders_removed();
            assert!(
                (2.5..=3.0).contains(&orders),
                "stage {} removed {orders} orders (expected ~2.8)",
                stage.stage
            );
        }
    }

    #[test]
    fn evaluation_count_matches_paper_complexity_claim() {
        let result = run(2, 5);
        assert_eq!(result.subspaces_evaluated, 2 * 5 * 4);
        assert_eq!(result.subspaces_joint, 2 * 625);
    }

    #[test]
    fn final_space_has_eight_fixed_layers() {
        let result = run(3, 10);
        assert_eq!(result.shrink.space.fixed_layers().len(), 8);
        // layers 12..=19 fixed (the paper's 13th..20th)
        for l in 12..20 {
            assert_eq!(result.shrink.space.allowed_ops(l).len(), 1, "layer {l}");
        }
        for l in 0..12 {
            assert_eq!(result.shrink.space.allowed_ops(l).len(), 5, "layer {l}");
        }
    }

    #[test]
    fn render_shows_trajectory() {
        let text = render(&run(4, 5));
        assert!(text.contains("A_ss^1st"));
        assert!(text.contains("A_ss^2nd"));
        assert!(text.contains("subspace evaluations"));
    }
}
