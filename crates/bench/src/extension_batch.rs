//! Batch-size utilization sweep — the experiment behind the paper's
//! §III-A footnote that batch sizes of 32 / 1 / 16 are used for GPU /
//! CPU / Edge "since small batch size will lead to resource
//! under-utilization".
//!
//! For each device, measure per-image latency of a reference network at
//! batch sizes 1..64: throughput devices (GPU, Edge) amortize their fixed
//! and launch overheads with batching, while the CPU (already saturated
//! at batch 1) gains little.

use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_space::{Arch, SearchSpace};

/// Per-device batch sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSweep {
    /// Device name.
    pub device: String,
    /// The device's paper batch size.
    pub paper_batch: usize,
    /// `(batch, per-image latency ms)` points.
    pub points: Vec<(usize, f64)>,
}

impl BatchSweep {
    /// Per-image latency at a given batch (`None` if not swept).
    pub fn per_image_ms(&self, batch: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(b, _)| *b == batch)
            .map(|(_, l)| *l)
    }
}

/// Runs the sweep over batch sizes 1, 2, 4, ..., 64 on the widest
/// layout-A network.
pub fn run() -> Vec<BatchSweep> {
    let space = SearchSpace::hsconas_a();
    let net = lower_arch(space.skeleton(), &Arch::widest(20)).expect("widest arch");
    DeviceSpec::paper_devices()
        .into_iter()
        .map(|base| {
            let points = [1usize, 2, 4, 8, 16, 32, 64]
                .iter()
                .map(|&batch| {
                    let mut device = base.clone();
                    device.batch = batch;
                    let total_ms = device.network_time_us(&net) / 1000.0;
                    (batch, total_ms / batch as f64)
                })
                .collect();
            BatchSweep {
                device: base.name.clone(),
                paper_batch: base.batch,
                points,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(results: &[BatchSweep]) -> String {
    let mut out = String::new();
    out.push_str("Extension — per-image latency (ms) vs batch size\n");
    out.push_str(&format!("{:<16}", "device"));
    for &b in &[1usize, 2, 4, 8, 16, 32, 64] {
        out.push_str(&format!("{b:>8}"));
    }
    out.push_str("   paper\n");
    for r in results {
        out.push_str(&format!("{:<16}", r.device));
        for (_, per_image) in &r.points {
            out.push_str(&format!("{per_image:>8.2}"));
        }
        out.push_str(&format!("{:>8}\n", r.paper_batch));
    }
    out.push_str(
        "\n(falling rows = batching amortizes overheads; the paper's batch\n \
         choices sit where each curve has flattened)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_amortizes_on_gpu_and_edge() {
        let results = run();
        let by = |name: &str| results.iter().find(|r| r.device.contains(name)).unwrap();
        for dev in ["gpu", "edge"] {
            let sweep = by(dev);
            let at1 = sweep.per_image_ms(1).unwrap();
            let at_paper = sweep.per_image_ms(sweep.paper_batch).unwrap();
            assert!(
                at_paper < at1 / 2.0,
                "{dev}: batch-1 {at1} vs paper-batch {at_paper}"
            );
        }
    }

    #[test]
    fn per_image_latency_is_monotone_nonincreasing_early() {
        for sweep in run() {
            let per_image: Vec<f64> = sweep.points.iter().map(|(_, l)| *l).collect();
            // overheads can only amortize, so per-image latency never rises
            // until compute saturates; check the first few steps
            for pair in per_image.windows(2).take(3) {
                assert!(
                    pair[1] <= pair[0] * 1.001,
                    "{}: {:?}",
                    sweep.device,
                    per_image
                );
            }
        }
    }

    #[test]
    fn paper_batches_sit_past_the_knee() {
        // at the paper's batch, the marginal gain of doubling again must
        // be small (< 35%) — the curve has flattened
        for sweep in run() {
            if sweep.paper_batch >= 32 {
                continue; // 64 is the last swept point; skip boundary
            }
            let at_paper = sweep.per_image_ms(sweep.paper_batch).unwrap();
            let doubled = sweep.per_image_ms(sweep.paper_batch * 2).unwrap();
            assert!(
                doubled > at_paper * 0.5,
                "{}: doubling batch still halves per-image latency",
                sweep.device
            );
        }
    }

    #[test]
    fn render_is_complete() {
        let text = render(&run());
        assert!(text.contains("gpu-gv100"));
        assert!(text.contains("paper"));
    }
}
