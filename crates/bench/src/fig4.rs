//! Fig. 4 reproduction: conventional (uniform, post-hoc) channel scaling
//! vs the paper's dynamic per-layer channel scaling.
//!
//! Protocol: on one target device with latency constraint `T`,
//!
//! * **conventional** — first search operators only (channel scale pinned
//!   to 1.0), then sweep a single uniform scaling factor `c ∈ C` across
//!   all layers and keep the best objective;
//! * **dynamic** — the full HSCoNAS search over `(op, c)` jointly.
//!
//! Dynamic scaling should reach a better accuracy/latency trade-off,
//! which is the figure's argument for channel-level exploration.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_evo::{EvolutionConfig, EvolutionSearch, Objective, TradeoffObjective};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::LatencyPredictor;
use hsconas_space::{Arch, ChannelScale, Gene, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Label ("uniform c=0.6" or "dynamic").
    pub label: String,
    /// Top-1 surrogate error, percent.
    pub top1_error: f64,
    /// Predicted latency, milliseconds.
    pub latency_ms: f64,
    /// Objective score F(arch, T).
    pub score: f64,
}

/// The full Fig. 4 result.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Uniform-scaling sweep, one point per factor.
    pub uniform: Vec<ScalingPoint>,
    /// Best uniform point by objective.
    pub best_uniform: ScalingPoint,
    /// The dynamic (joint) search result.
    pub dynamic: ScalingPoint,
    /// Latency target used.
    pub target_ms: f64,
}

fn evaluate(
    objective: &mut dyn Objective,
    oracle: &SurrogateAccuracy,
    arch: &Arch,
    label: String,
) -> ScalingPoint {
    let eval = objective.evaluate(arch).expect("valid arch");
    ScalingPoint {
        label,
        top1_error: oracle.top1_error(arch).expect("valid arch"),
        latency_ms: eval.latency_ms,
        score: eval.score,
    }
}

/// Runs the comparison on the edge device with the paper's 34 ms target.
pub fn run(seed: u64, generations: usize, population: usize) -> Fig4Result {
    let target_ms = 34.0;
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let predictor =
        LatencyPredictor::calibrate(device, &space, 40, 3, &mut rng).expect("calibration");
    let oracle_for_obj = oracle.clone();
    let mut objective = TradeoffObjective::new(
        move |arch: &Arch| oracle_for_obj.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        target_ms,
        -20.0,
    );
    let config = EvolutionConfig {
        generations,
        population,
        parents: (population / 3).max(2),
        ..Default::default()
    };

    // Conventional: operator-only search at full width...
    let op_only = {
        let mut s = space.clone();
        for l in 0..s.num_layers() {
            s = s
                .restrict_scales(l, &[ChannelScale::FULL])
                .expect("full scale is a candidate");
        }
        s
    };
    let op_result = EvolutionSearch::new(op_only, config)
        .run(&mut objective, &mut rng)
        .expect("operator-only search");
    // ...then a uniform scaling sweep on the found operator assignment.
    let mut uniform = Vec::new();
    for factor in ChannelScale::all() {
        let mut arch = op_result.best_arch.clone();
        for l in 0..arch.len() {
            let op = arch.genes()[l].op;
            arch.set_gene(l, Gene::new(op, factor)).expect("in range");
        }
        uniform.push(evaluate(
            &mut objective,
            &oracle,
            &arch,
            format!("uniform c={factor}"),
        ));
    }
    let best_uniform = uniform
        .iter()
        .max_by(|a, b| a.score.partial_cmp(&b.score).expect("comparable"))
        .expect("ten factors")
        .clone();

    // Dynamic: joint (op, c) search in the full space.
    let dyn_result = EvolutionSearch::new(space, config)
        .run(&mut objective, &mut rng)
        .expect("dynamic search");
    let dynamic = evaluate(
        &mut objective,
        &oracle,
        &dyn_result.best_arch,
        "dynamic".into(),
    );

    Fig4Result {
        uniform,
        best_uniform,
        dynamic,
        target_ms,
    }
}

/// Renders the sweep plus the headline comparison.
pub fn render(result: &Fig4Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 4 — conventional vs dynamic channel scaling (edge, T = {} ms)\n",
        result.target_ms
    ));
    out.push_str(&format!(
        "{:<18} {:>8} {:>9} {:>8}\n",
        "config", "top-1", "lat(ms)", "F"
    ));
    for p in &result.uniform {
        out.push_str(&format!(
            "{:<18} {:>8.1} {:>9.1} {:>8.2}\n",
            p.label, p.top1_error, p.latency_ms, p.score
        ));
    }
    out.push_str(&format!(
        "{:<18} {:>8.1} {:>9.1} {:>8.2}   <- best uniform\n",
        result.best_uniform.label,
        result.best_uniform.top1_error,
        result.best_uniform.latency_ms,
        result.best_uniform.score
    ));
    out.push_str(&format!(
        "{:<18} {:>8.1} {:>9.1} {:>8.2}   <- dynamic (HSCoNAS)\n",
        result.dynamic.label,
        result.dynamic.top1_error,
        result.dynamic.latency_ms,
        result.dynamic.score
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_beats_best_uniform() {
        // The dynamic search needs enough budget to dominate the uniform
        // sweep reliably; at 15x40 it can lose by a hair on unlucky seeds.
        let result = run(1, 25, 60);
        assert!(
            result.dynamic.score >= result.best_uniform.score,
            "dynamic {} should match or beat uniform {}",
            result.dynamic.score,
            result.best_uniform.score
        );
        assert_eq!(result.uniform.len(), 10);
    }

    #[test]
    fn uniform_sweep_monotone_in_latency() {
        let result = run(2, 4, 12);
        for pair in result.uniform.windows(2) {
            assert!(
                pair[0].latency_ms <= pair[1].latency_ms + 1e-9,
                "uniform latency must rise with the factor"
            );
        }
    }

    #[test]
    fn render_labels_both_lines() {
        let text = render(&run(3, 3, 9));
        assert!(text.contains("best uniform"));
        assert!(text.contains("dynamic (HSCoNAS)"));
    }
}
