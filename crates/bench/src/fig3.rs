//! Fig. 3 reproduction: the LUT + bias latency model (Eq. 2–3) tracks
//! on-device measurements closely. The paper reports RMSE of 0.1 / 0.5 /
//! 1.7 ms for CPU / GPU / Edge; we report the same statistic per simulated
//! device, plus the scatter points behind the figure.

use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_latency::LatencyPredictor;
use hsconas_space::SearchSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment parameters (the paper's protocol: calibrate on M archs,
/// validate on fresh samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Config {
    /// Calibration architectures (`M` in Eq. 3).
    pub calibration_archs: usize,
    /// Measurement repeats per architecture.
    pub repeats: usize,
    /// Held-out validation architectures.
    pub validation_archs: usize,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            calibration_archs: 100,
            repeats: 5,
            validation_archs: 200,
        }
    }
}

/// Per-device result.
#[derive(Debug, Clone)]
pub struct DeviceFit {
    /// Device name.
    pub device: String,
    /// Calibrated bias `B`, milliseconds.
    pub bias_ms: f64,
    /// (predicted, measured) latency pairs, milliseconds.
    pub points: Vec<(f64, f64)>,
    /// RMSE on held-out architectures, milliseconds.
    pub rmse_ms: f64,
    /// Pearson correlation on held-out architectures.
    pub pearson: f64,
}

/// Runs the Fig. 3 experiment on all three devices.
///
/// Calibration and validation measurements both fan out over the shared
/// worker pool with per-index RNG streams, so results depend only on
/// `seed` — not on the thread count.
pub fn run(seed: u64, config: &Fig3Config) -> Vec<DeviceFit> {
    let space = SearchSpace::hsconas_a();
    DeviceSpec::paper_devices()
        .into_iter()
        .map(|device| {
            let predictor = LatencyPredictor::calibrate_parallel(
                device.clone(),
                &space,
                config.calibration_archs,
                config.repeats,
                seed,
                0,
            )
            .expect("calibration over a valid space");
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7a11_da7e);
            let archs = space.sample_n(config.validation_archs, &mut rng);
            let nets: Vec<_> = archs
                .iter()
                .map(|a| lower_arch(space.skeleton(), a).expect("valid arch"))
                .collect();
            let measured_us = hsconas_hwsim::measure_networks_parallel(
                &device,
                &nets,
                config.repeats,
                seed ^ 0x0dd_ba11,
                0,
            );
            let points: Vec<(f64, f64)> = archs
                .iter()
                .zip(&measured_us)
                .map(|(arch, &m_us)| {
                    let predicted = predictor.predict_ms(arch).expect("valid arch");
                    (predicted, m_us / 1000.0)
                })
                .collect();
            let predicted: Vec<f64> = points.iter().map(|p| p.0).collect();
            let measured: Vec<f64> = points.iter().map(|p| p.1).collect();
            DeviceFit {
                device: device.name.clone(),
                bias_ms: predictor.bias_us() / 1000.0,
                rmse_ms: hsconas_latency::rmse(&predicted, &measured),
                pearson: hsconas_latency::pearson(&predicted, &measured),
                points,
            }
        })
        .collect()
}

/// Renders the per-device fit summary (the figure's caption numbers).
pub fn render(results: &[DeviceFit]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 3 — estimated vs on-device latency (Eq. 2-3)\n");
    out.push_str(&format!(
        "{:<16} {:>9} {:>10} {:>9}\n",
        "device", "bias(ms)", "RMSE(ms)", "Pearson"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<16} {:>9.2} {:>10.3} {:>9.4}\n",
            r.device, r.bias_ms, r.rmse_ms, r.pearson
        ));
    }
    out.push_str("\npaper reference: RMSE 0.5 (GPU), 0.1 (CPU), 1.7 (Edge) ms\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig3Config {
        Fig3Config {
            calibration_archs: 20,
            repeats: 3,
            validation_archs: 40,
        }
    }

    #[test]
    fn rmse_is_small_fraction_of_latency() {
        for fit in run(1, &small()) {
            let mean_lat: f64 =
                fit.points.iter().map(|p| p.1).sum::<f64>() / fit.points.len() as f64;
            assert!(
                fit.rmse_ms < 0.05 * mean_lat,
                "{}: rmse {} vs mean {}",
                fit.device,
                fit.rmse_ms,
                mean_lat
            );
            assert!(fit.pearson > 0.95, "{}: r {}", fit.device, fit.pearson);
            assert!(fit.bias_ms > 0.0);
        }
    }

    #[test]
    fn rmse_ordering_matches_noise_ordering() {
        // Edge has the noisiest measurements, CPU the relatively largest
        // structural bias — but RMSE should scale with device noise level
        // times latency scale: Edge > CPU on absolute RMSE, as the paper
        // also reports (1.7 vs 0.1 ms).
        let fits = run(2, &small());
        let by_name = |n: &str| fits.iter().find(|f| f.device.contains(n)).unwrap();
        assert!(by_name("edge").rmse_ms > by_name("cpu").rmse_ms);
    }

    #[test]
    fn deterministic() {
        let a = run(3, &small());
        let b = run(3, &small());
        assert_eq!(a[0].points, b[0].points);
    }

    #[test]
    fn render_shows_reference() {
        let text = render(&run(4, &small()));
        assert!(text.contains("paper reference"));
        assert!(text.contains("RMSE"));
    }
}
