//! Minimal ASCII plotting for the figure reproductions: scatter plots
//! rendered into fixed-size character grids, so every figure binary can
//! show the same visual the paper prints, directly in the terminal.

/// Renders a scatter plot of `points` into a `width × height` character
/// grid with axis ranges derived from the data. Multiple points in one
/// cell escalate the glyph (`·` → `o` → `#`).
pub fn scatter(points: &[(f64, f64)], width: usize, height: usize, title: &str) -> String {
    assert!(width >= 8 && height >= 4, "plot area too small");
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if points.is_empty() {
        out.push_str("(no points)\n");
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // avoid degenerate ranges
    if x_max - x_min < 1e-12 {
        x_max = x_min + 1.0;
    }
    if y_max - y_min < 1e-12 {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![0u32; width]; height];
    for &(x, y) in points {
        let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
        let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] += 1;
    }
    for (i, row) in grid.iter().enumerate() {
        // y-axis labels on first, middle, last rows
        let label = if i == 0 {
            format!("{y_max:8.1} |")
        } else if i == height - 1 {
            format!("{y_min:8.1} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        for &count in row {
            out.push(match count {
                0 => ' ',
                1 => '.',
                2..=3 => 'o',
                _ => '#',
            });
        }
        out.push('\n');
    }
    out.push_str(&format!("         +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "          {:<width$.1}{:>rest$.1}\n",
        x_min,
        x_max,
        width = width / 2,
        rest = width - width / 2
    ));
    out
}

/// Renders predicted-vs-measured points with a `y = x` reference line
/// (the Fig. 3 panel layout).
pub fn parity_plot(points: &[(f64, f64)], width: usize, height: usize, title: &str) -> String {
    // overlay the diagonal by adding synthetic reference points
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        lo = lo.min(x.min(y));
        hi = hi.max(x.max(y));
    }
    if !lo.is_finite() || !hi.is_finite() {
        return scatter(points, width, height, title);
    }
    let mut txt = scatter(points, width, height, title);
    txt.push_str(&format!(
        "(ideal fit is the diagonal from {lo:.1} to {hi:.1}; tight clustering = low RMSE)\n"
    ));
    txt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_dimensions() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i * i) as f64)).collect();
        let text = scatter(&pts, 40, 10, "test plot");
        let lines: Vec<&str> = text.lines().collect();
        // title + height rows + axis + labels
        assert_eq!(lines.len(), 1 + 10 + 2);
        assert!(lines[0].contains("test plot"));
        assert!(text.contains('.') || text.contains('o'));
    }

    #[test]
    fn extremes_land_in_corners() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0)];
        let text = scatter(&pts, 20, 6, "corners");
        let lines: Vec<&str> = text.lines().collect();
        // top row ends with the max point, bottom row starts with the min
        assert!(lines[1].trim_end().ends_with('.'), "{text}");
        assert!(lines[6].contains('.'), "{text}");
    }

    #[test]
    fn empty_input_is_graceful() {
        let text = scatter(&[], 20, 6, "empty");
        assert!(text.contains("no points"));
    }

    #[test]
    fn dense_cells_escalate_glyphs() {
        let pts = vec![(0.5, 0.5); 10];
        let text = scatter(&pts, 10, 5, "dense");
        assert!(text.contains('#'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_panics() {
        scatter(&[(0.0, 0.0)], 2, 2, "x");
    }

    #[test]
    fn parity_mentions_diagonal() {
        let pts = vec![(1.0, 1.1), (2.0, 2.05)];
        let text = parity_plot(&pts, 20, 6, "fit");
        assert!(text.contains("diagonal"));
    }
}
