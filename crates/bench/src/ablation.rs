//! Design-choice ablations called out in DESIGN.md:
//!
//! * [`bias`] — the Eq. 3 bias term on vs off (how much of Fig. 3's
//!   accuracy comes from `B`);
//! * [`search`] — EA vs random search vs greedy local search at an equal
//!   evaluation budget;
//! * [`shrink`] — EA in the shrunk space vs the full space at an equal
//!   evaluation budget.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_evo::{
    aging_evolution, AgingConfig, EvolutionConfig, EvolutionSearch, Objective, TradeoffObjective,
};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_latency::{rmse, LatencyPredictor};
use hsconas_shrink::{ProgressiveShrinking, ShrinkConfig};
use hsconas_space::{Arch, Gene, SearchSpace};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Bias-term ablation result for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasAblation {
    /// Device name.
    pub device: String,
    /// RMSE with the calibrated bias, ms.
    pub rmse_with_bias_ms: f64,
    /// RMSE with `B = 0`, ms.
    pub rmse_without_bias_ms: f64,
}

/// Runs the bias ablation: validates Eq. 2 with and without Eq. 3 on
/// held-out architectures.
pub fn bias(seed: u64, validation_archs: usize) -> Vec<BiasAblation> {
    let space = SearchSpace::hsconas_a();
    DeviceSpec::paper_devices()
        .into_iter()
        .map(|device| {
            let mut rng = StdRng::seed_from_u64(seed);
            let with = LatencyPredictor::calibrate(device.clone(), &space, 40, 3, &mut rng)
                .expect("calibration");
            let without = LatencyPredictor::without_bias(device.clone(), &space);
            let mut pred_with = Vec::new();
            let mut pred_without = Vec::new();
            let mut measured = Vec::new();
            for _ in 0..validation_archs {
                let arch = space.sample(&mut rng);
                pred_with.push(with.predict_ms(&arch).expect("valid"));
                pred_without.push(without.predict_ms(&arch).expect("valid"));
                let net = lower_arch(space.skeleton(), &arch).expect("valid");
                measured.push(device.measure_network_mean(&net, 3, &mut rng) / 1000.0);
            }
            BiasAblation {
                device: device.name.clone(),
                rmse_with_bias_ms: rmse(&pred_with, &measured),
                rmse_without_bias_ms: rmse(&pred_without, &measured),
            }
        })
        .collect()
}

/// Renders the bias ablation.
pub fn render_bias(results: &[BiasAblation]) -> String {
    let mut out = String::new();
    out.push_str("Ablation — latency-model bias term B (Eq. 3)\n");
    out.push_str(&format!(
        "{:<16} {:>14} {:>14} {:>8}\n",
        "device", "RMSE with B", "RMSE w/o B", "ratio"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<16} {:>12.3}ms {:>12.3}ms {:>7.0}x\n",
            r.device,
            r.rmse_with_bias_ms,
            r.rmse_without_bias_ms,
            r.rmse_without_bias_ms / r.rmse_with_bias_ms.max(1e-9)
        ));
    }
    out
}

/// Search-algorithm ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchAblation {
    /// Strategy name.
    pub strategy: String,
    /// Best objective value found.
    pub best_score: f64,
    /// Architectures evaluated.
    pub evaluations: usize,
}

fn edge_objective(seed: u64) -> (SearchSpace, impl Objective) {
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let predictor =
        LatencyPredictor::calibrate(device, &space, 40, 3, &mut rng).expect("calibration");
    let objective = TradeoffObjective::new(
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        34.0,
        -20.0,
    );
    (space, objective)
}

/// Runs EA vs random search vs greedy local search under an equal
/// architecture-evaluation budget.
pub fn search(seed: u64, budget: usize) -> Vec<SearchAblation> {
    let mut results = Vec::new();

    // EA sized so generations × population ≈ budget.
    {
        let (space, mut objective) = edge_objective(seed);
        let population = 20.min(budget);
        let generations = (budget / population).max(1);
        let config = EvolutionConfig {
            generations,
            population,
            parents: (population / 3).max(2),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let result = EvolutionSearch::new(space, config)
            .run(&mut objective, &mut rng)
            .expect("ea");
        results.push(SearchAblation {
            strategy: "evolutionary".into(),
            best_score: result.best_evaluation.score,
            evaluations: budget,
        });
    }

    // Random search.
    {
        let (space, mut objective) = edge_objective(seed);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let best = (0..budget)
            .map(|_| {
                let arch = space.sample(&mut rng);
                objective.evaluate(&arch).expect("valid").score
            })
            .fold(f64::NEG_INFINITY, f64::max);
        results.push(SearchAblation {
            strategy: "random".into(),
            best_score: best,
            evaluations: budget,
        });
    }

    // Aging (regularized) evolution, Real et al. 2019 — the paper's cited
    // evidence for EA over RL.
    {
        let (space, mut objective) = edge_objective(seed);
        let population = 20.min(budget);
        let config = AgingConfig {
            population,
            tournament: (population / 4).max(2),
            cycles: budget.saturating_sub(population),
        };
        let mut rng = StdRng::seed_from_u64(seed + 4);
        let result = aging_evolution(&space, config, &mut objective, &mut rng).expect("aging");
        results.push(SearchAblation {
            strategy: "aging-evolution".into(),
            best_score: result.best_evaluation.score,
            evaluations: result.evaluations,
        });
    }

    // Greedy local search: random start, then single-gene hill climbing.
    {
        let (space, mut objective) = edge_objective(seed);
        let mut rng = StdRng::seed_from_u64(seed + 3);
        let mut current = space.sample(&mut rng);
        let mut current_score = objective.evaluate(&current).expect("valid").score;
        let mut used = 1;
        while used < budget {
            let layer = rng.gen_range(0..current.len());
            let ops = space.allowed_ops(layer);
            let scales = space.allowed_scales(layer);
            let gene = Gene::new(
                ops[rng.gen_range(0..ops.len())],
                scales[rng.gen_range(0..scales.len())],
            );
            let mut candidate = current.clone();
            candidate.set_gene(layer, gene).expect("in range");
            let score = objective.evaluate(&candidate).expect("valid").score;
            used += 1;
            if score > current_score {
                current = candidate;
                current_score = score;
            }
        }
        results.push(SearchAblation {
            strategy: "local".into(),
            best_score: current_score,
            evaluations: budget,
        });
    }
    results
}

/// Renders the search ablation.
pub fn render_search(results: &[SearchAblation]) -> String {
    let mut out = String::new();
    out.push_str("Ablation — search strategy at equal evaluation budget\n");
    out.push_str(&format!(
        "{:<14} {:>8} {:>12}\n",
        "strategy", "best F", "evals"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<14} {:>8.2} {:>12}\n",
            r.strategy, r.best_score, r.evaluations
        ));
    }
    out
}

/// Optimality ablation result: search vs exhaustive ground truth on a
/// restricted space small enough to enumerate.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalityAblation {
    /// The true optimum's objective value (exhaustive enumeration).
    pub optimum: f64,
    /// Architectures in the enumerated space.
    pub space_size: usize,
    /// Best objective per strategy at the given budget.
    pub strategies: Vec<SearchAblation>,
}

/// Pins all but `free_layers` layers of the edge objective's space to a
/// sampled template, enumerates the remainder exhaustively, and measures
/// how close EA / aging / random get at `budget` evaluations.
pub fn optimality(seed: u64, free_layers: usize, budget: usize) -> OptimalityAblation {
    assert!(
        (1..=3).contains(&free_layers),
        "enumeration is only tractable for 1-3 free layers"
    );
    let (full_space, mut objective) = edge_objective(seed);
    // pin layers free_layers.. to a fixed template
    let mut rng = StdRng::seed_from_u64(seed + 20);
    let template = full_space.sample(&mut rng);
    let mut space = full_space;
    for l in free_layers..template.len() {
        let g = template.genes()[l];
        space = space
            .restrict_op(l, g.op)
            .expect("template op is a candidate")
            .restrict_scales(l, &[g.scale])
            .expect("template scale is a candidate");
    }
    let all = hsconas_space::enumerate(&space, 200_000).expect("restricted space enumerates");
    let optimum = all
        .iter()
        .map(|a| objective.evaluate(a).expect("valid").score)
        .fold(f64::NEG_INFINITY, f64::max);

    let mut strategies = Vec::new();
    {
        let population = 20.min(budget);
        let config = EvolutionConfig {
            generations: (budget / population).max(1),
            population,
            parents: (population / 3).max(2),
            ..Default::default()
        };
        let mut ea_rng = StdRng::seed_from_u64(seed + 21);
        let result = EvolutionSearch::new(space.clone(), config)
            .run(&mut objective, &mut ea_rng)
            .expect("ea");
        strategies.push(SearchAblation {
            strategy: "evolutionary".into(),
            best_score: result.best_evaluation.score,
            evaluations: budget,
        });
    }
    {
        let population = 20.min(budget);
        let config = AgingConfig {
            population,
            tournament: (population / 4).max(2),
            cycles: budget.saturating_sub(population),
        };
        let mut ag_rng = StdRng::seed_from_u64(seed + 22);
        let result = aging_evolution(&space, config, &mut objective, &mut ag_rng).expect("aging");
        strategies.push(SearchAblation {
            strategy: "aging-evolution".into(),
            best_score: result.best_evaluation.score,
            evaluations: result.evaluations,
        });
    }
    {
        let mut rs_rng = StdRng::seed_from_u64(seed + 23);
        let best = (0..budget)
            .map(|_| {
                let arch = space.sample(&mut rs_rng);
                objective.evaluate(&arch).expect("valid").score
            })
            .fold(f64::NEG_INFINITY, f64::max);
        strategies.push(SearchAblation {
            strategy: "random".into(),
            best_score: best,
            evaluations: budget,
        });
    }
    OptimalityAblation {
        optimum,
        space_size: all.len(),
        strategies,
    }
}

/// Renders the optimality ablation.
pub fn render_optimality(result: &OptimalityAblation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — search vs exhaustive optimum ({} architectures)\n",
        result.space_size
    ));
    out.push_str(&format!(
        "{:<16} {:>10} {:>12}\n",
        "strategy", "best F", "gap to opt"
    ));
    out.push_str(&format!(
        "{:<16} {:>10.3} {:>12}\n",
        "exhaustive", result.optimum, "--"
    ));
    for s in &result.strategies {
        out.push_str(&format!(
            "{:<16} {:>10.3} {:>12.3}\n",
            s.strategy,
            s.best_score,
            result.optimum - s.best_score
        ));
    }
    out
}

/// Shrinking ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkAblation {
    /// Best objective when searching the progressively shrunk space.
    pub with_shrink: f64,
    /// Best objective when searching the full space with the same EA
    /// budget.
    pub without_shrink: f64,
    /// Extra evaluations spent on shrinking itself.
    pub shrink_evaluations: usize,
}

/// Runs the shrinking ablation.
pub fn shrink(seed: u64, samples_per_subspace: usize, ea: EvolutionConfig) -> ShrinkAblation {
    // with shrinking
    let with_shrink = {
        let (space, mut objective) = edge_objective(seed);
        let mut rng = StdRng::seed_from_u64(seed + 10);
        let result = ProgressiveShrinking::new(ShrinkConfig {
            samples_per_subspace,
            ..Default::default()
        })
        .run(space, &mut objective, &mut rng, |_, _| Ok(()))
        .expect("shrink");
        EvolutionSearch::new(result.space, ea)
            .run(&mut objective, &mut rng)
            .expect("ea")
            .best_evaluation
            .score
    };
    let without_shrink = {
        let (space, mut objective) = edge_objective(seed);
        let mut rng = StdRng::seed_from_u64(seed + 10);
        EvolutionSearch::new(space, ea)
            .run(&mut objective, &mut rng)
            .expect("ea")
            .best_evaluation
            .score
    };
    ShrinkAblation {
        with_shrink,
        without_shrink,
        shrink_evaluations: samples_per_subspace * 5 * 8,
    }
}

/// Renders the shrinking ablation.
pub fn render_shrink(result: &ShrinkAblation) -> String {
    format!(
        "Ablation — progressive space shrinking\n\
         EA in shrunk space : best F = {:.2} (plus {} shrink evals)\n\
         EA in full space   : best F = {:.2}\n",
        result.with_shrink, result.shrink_evaluations, result.without_shrink
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_term_improves_rmse_by_an_order() {
        for r in bias(1, 30) {
            assert!(
                r.rmse_without_bias_ms > 3.0 * r.rmse_with_bias_ms,
                "{}: {} vs {}",
                r.device,
                r.rmse_without_bias_ms,
                r.rmse_with_bias_ms
            );
        }
    }

    #[test]
    fn ea_beats_random_at_equal_budget() {
        let results = search(2, 200);
        let by = |name: &str| results.iter().find(|r| r.strategy == name).unwrap();
        assert!(
            by("evolutionary").best_score >= by("random").best_score,
            "EA {} vs random {}",
            by("evolutionary").best_score,
            by("random").best_score
        );
        assert!(
            by("aging-evolution").best_score >= by("random").best_score,
            "aging {} vs random {}",
            by("aging-evolution").best_score,
            by("random").best_score
        );
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn searches_approach_the_exhaustive_optimum() {
        // 2 free layers → 2500 archs; budget 400 evaluations.
        let result = optimality(3, 2, 400);
        assert_eq!(result.space_size, 2500);
        for s in &result.strategies {
            let gap = result.optimum - s.best_score;
            assert!(gap >= -1e-9, "{} beat the exhaustive optimum?!", s.strategy);
            // the objective scale is ~70 points, so 1.5 is a ~2% gap
            assert!(
                gap < 1.5,
                "{} gap to optimum {gap} too large at this budget",
                s.strategy
            );
        }
        let text = render_optimality(&result);
        assert!(text.contains("exhaustive"));
    }

    #[test]
    fn shrink_ablation_runs_and_reports() {
        let ea = EvolutionConfig {
            generations: 4,
            population: 12,
            parents: 4,
            ..Default::default()
        };
        let result = shrink(3, 8, ea);
        assert!(result.with_shrink.is_finite());
        assert!(result.without_shrink.is_finite());
        let text = render_shrink(&result);
        assert!(text.contains("shrunk space"));
    }

    #[test]
    fn renders_are_nonempty() {
        assert!(render_bias(&bias(4, 10)).contains("Eq. 3"));
        assert!(render_search(&search(5, 60)).contains("strategy"));
    }
}
