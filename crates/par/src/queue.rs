//! A bounded MPMC work queue with explicit backpressure and closeable
//! drain semantics.
//!
//! This is the admission-control primitive behind `hsconas-serve`: producers
//! (connection handlers) *never block* — [`BoundedQueue::try_push`] either
//! admits the item or returns it immediately so the caller can answer
//! "overloaded" — while consumers (evaluation workers) block on
//! [`BoundedQueue::pop`] and drain the queue to empty after
//! [`BoundedQueue::close`]. The contract the serve layer's soak test relies
//! on: **every item that was accepted by `try_push` is eventually returned
//! by a `pop`**, even when the queue is closed mid-flight; items rejected at
//! admission are handed back to the producer, so nothing is ever silently
//! dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks without poisoning semantics (matching the workspace's parking_lot
/// idiom; a panicking queue user must not wedge every other thread).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why [`BoundedQueue::try_push`] refused an item. The item itself is
/// handed back so the producer can report the rejection.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; retry later or shed the load.
    Full(T),
    /// The queue was closed; no further items are admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently pending.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        lock(&self.state).items.is_empty()
    }

    /// Non-blocking admission: enqueues `item` unless the queue is full or
    /// closed, in which case the item is handed back in the error.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = lock(&self.state);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`). Closed-but-nonempty queues
    /// keep yielding items: consumers always finish accepted work.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`pop`](Self::pop), but after securing the first item greedily
    /// takes up to `max - 1` more items that are already pending *and*
    /// satisfy `compatible` with the first, without blocking. This is the
    /// micro-batching primitive: a consumer turns whatever load has piled
    /// up behind one item into a single batch, but never waits for a batch
    /// to fill. Incompatible items keep their queue positions and order.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn pop_batch<F>(&self, max: usize, compatible: F) -> Option<Vec<T>>
    where
        F: Fn(&T, &T) -> bool,
    {
        assert!(max > 0, "batch size must be positive");
        let mut state = lock(&self.state);
        let first = loop {
            if let Some(item) = state.items.pop_front() {
                break item;
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        };
        let mut batch = Vec::with_capacity(max.min(state.items.len() + 1));
        batch.push(first);
        let mut index = 0;
        while batch.len() < max && index < state.items.len() {
            if compatible(&batch[0], &state.items[index]) {
                let item = state.items.remove(index).expect("index in range");
                batch.push(item);
            } else {
                index += 1;
            }
        }
        Some(batch)
    }

    /// Closes the queue: future pushes are refused, and consumers drain the
    /// remaining items before their `pop` returns `None`.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_hands_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        // draining one slot re-opens admission
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn closed_queue_refuses_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert!(q.is_closed());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays terminated");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn pop_batch_takes_compatible_only() {
        let q = BoundedQueue::new(8);
        for v in [10, 11, 20, 12, 21] {
            q.try_push(v).unwrap();
        }
        // compatible = same decade
        let batch = q.pop_batch(4, |a, b| a / 10 == b / 10).unwrap();
        assert_eq!(batch, vec![10, 11, 12]);
        // incompatible items kept their order
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(21));
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = BoundedQueue::new(8);
        for v in 0..6 {
            q.try_push(v).unwrap();
        }
        let batch = q.pop_batch(3, |_, _| true).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_batch_never_waits_for_fill() {
        let q = BoundedQueue::new(8);
        q.try_push(7).unwrap();
        let batch = q.pop_batch(5, |_, _| true).unwrap();
        assert_eq!(batch, vec![7]);
    }

    #[test]
    fn every_accepted_item_is_delivered_under_contention() {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(16));
        let mut producers = Vec::new();
        let accepted = Arc::new(Mutex::new(Vec::new()));
        for p in 0..4u64 {
            let q = q.clone();
            let accepted = accepted.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let item = p * 1000 + i;
                    loop {
                        match q.try_push(item) {
                            Ok(_) => {
                                lock(&accepted).push(item);
                                break;
                            }
                            Err(PushError::Full(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => panic!("closed during test"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut delivered: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        delivered.sort_unstable();
        let mut expected = lock(&accepted).clone();
        expected.sort_unstable();
        assert_eq!(delivered, expected, "accepted == delivered, exactly once");
    }
}
