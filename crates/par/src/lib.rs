//! Shared scoped worker-pool utilities for the NAS hot paths.
//!
//! Every parallel site in the workspace (EA population evaluation,
//! subspace-quality sampling, latency-LUT calibration sweeps, convolution
//! batch loops) follows the same discipline:
//!
//! 1. work items are **generated serially** (so seeded RNG streams are
//!    untouched by the thread count),
//! 2. items are dispatched to scoped workers via an atomic index,
//! 3. results are **merged in item-index order**.
//!
//! Per-item work must be a pure function of the item itself; under that
//! contract every output is bit-identical to the serial loop regardless of
//! `--threads`. This module generalizes what used to be a private harness
//! in `hwsim::parallel` so every crate shares one implementation.
//!
//! The process-wide default thread count is configurable (the experiment
//! binaries' `--threads N` flag lands in [`set_default_threads`]); `0` or
//! an unset default resolves to [`available_threads`].
//!
//! Workers adopt the dispatching thread's `hsconas-telemetry` span scope,
//! so spans entered inside pool work roll up under the caller's span path
//! in run reports. This is observation-only: it touches no RNG, no work
//! ordering, and no results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;

pub use queue::{BoundedQueue, PushError};

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count; 0 means "auto" (use
/// [`available_threads`]).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set on threads spawned by this module's worker pools; never reset
    /// (pool threads are scoped and die with the dispatching call).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the calling thread is a worker spawned by one of this
/// module's pools. Nested parallel sites (e.g. the intra-GEMM band
/// fan-out inside a batch-parallel convolution) consult this to stay
/// serial instead of oversubscribing the machine with pools-inside-pools.
///
/// Inline execution (`threads == 1`, or a single work item) runs on the
/// dispatching thread and does *not* set the flag: a serial outer loop
/// leaves inner sites free to go wide.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

fn mark_worker() {
    IN_WORKER.with(|w| w.set(true));
}

/// Number of hardware threads reported by the OS (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets the process-wide default worker count used when a call site passes
/// `threads == 0`. Passing `0` restores "auto" (hardware parallelism).
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The resolved default worker count: the value installed by
/// [`set_default_threads`], or the hardware parallelism when unset.
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => available_threads(),
        n => n,
    }
}

/// Resolves a per-call `threads` request (`0` = default) against the
/// amount of work available.
fn resolve_threads(threads: usize, work_items: usize) -> usize {
    let requested = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    requested.max(1).min(work_items.max(1))
}

/// Maps `f` over `items` on a scoped worker pool and returns the results
/// in item order.
///
/// `f` receives `(index, &item)`. With `threads == 0` the process default
/// applies; `threads == 1` (or a single item) runs inline with no pool.
/// Results are merged in index order, so for a deterministic `f` the
/// output is identical across thread counts.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    // Workers adopt the dispatching thread's telemetry span scope so their
    // spans roll up under the caller (observation-only; no effect on work
    // order or results).
    let scope_token = hsconas_telemetry::current_scope();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                mark_worker();
                let _telemetry_scope = hsconas_telemetry::enter_scope(&scope_token);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    results.lock()[i] = Some(r);
                }
            });
        }
    })
    .expect("worker pool panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

/// Index-space variant of [`par_map`]: runs `f(0..n)` on the pool and
/// returns results in index order.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_map_indices<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, threads, |_, &i| f(i))
}

/// Consumes `items` (typically disjoint `&mut` sub-slices of one buffer)
/// and maps each through `f` on the pool, returning results in item
/// order. Use this when workers must write into pre-partitioned output
/// memory — e.g. one batch image each — and may also produce a value
/// (e.g. a per-sample gradient partial) to merge deterministically.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_map_owned<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = resolve_threads(threads, items.len());
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let scope_token = hsconas_telemetry::current_scope();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                mark_worker();
                let _telemetry_scope = hsconas_telemetry::enter_scope(&scope_token);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let item = slots[i].lock().take().expect("slot taken once");
                    let r = f(i, item);
                    results.lock()[i] = Some(r);
                }
            });
        }
    })
    .expect("worker pool panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

/// [`par_map_owned`] without results — applies `f` to each owned item.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_for_each<T, F>(items: Vec<T>, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    par_map_owned(items, threads, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial = par_map(&items, 1, |i, &x| i * 1000 + x * x);
        let parallel = par_map(&items, 8, |i, &x| i * 1000 + x * x);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 3 * 1000 + 9);
    }

    #[test]
    fn par_map_indices_matches_direct() {
        assert_eq!(par_map_indices(5, 4, |i| i * 2), vec![0, 2, 4, 6, 8]);
        assert!(par_map_indices(0, 4, |i| i).is_empty());
    }

    #[test]
    fn par_for_each_writes_disjoint_chunks() {
        let mut buf = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = buf.chunks_mut(8).collect();
        par_for_each(chunks, 8, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 8 + j) as u64;
            }
        });
        let want: Vec<u64> = (0..64).collect();
        assert_eq!(buf, want);
    }

    #[test]
    fn zero_threads_resolves_to_default() {
        set_default_threads(2);
        assert_eq!(default_threads(), 2);
        let out = par_map_indices(10, 0, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = par_map(&[] as &[usize], 4, |_, &x| x);
        assert!(out.is_empty());
        par_for_each(Vec::<usize>::new(), 4, |_, _| {});
    }

    #[test]
    fn in_worker_flag_marks_pool_threads_only() {
        assert!(!in_worker(), "dispatching thread is not a worker");
        let flags = par_map_indices(4, 4, |_| in_worker());
        assert!(flags.iter().all(|&f| f), "pool threads must be flagged");
        // Inline execution (threads == 1) stays unflagged.
        let inline = par_map_indices(4, 1, |_| in_worker());
        assert!(inline.iter().all(|&f| !f));
        assert!(!in_worker(), "flag must not leak back to the dispatcher");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map_indices(4, 2, |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
