//! Standard training augmentations: random horizontal flip and random
//! crop with zero padding (the "standard data augmentations" of §IV-A,
//! scaled to the synthetic dataset).

use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::Tensor;

/// Horizontally flips every image in the batch with probability 0.5
/// (independently per image).
pub fn random_flip(batch: &Tensor, rng: &mut SmallRng) -> Tensor {
    let s = batch.shape();
    let mut out = batch.clone();
    for n in 0..s.n {
        if rng.next_f32() < 0.5 {
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        *out.at_mut(n, c, h, w) = batch.at(n, c, h, s.w - 1 - w);
                    }
                }
            }
        }
    }
    out
}

/// Randomly crops each image back to its original size after padding all
/// sides with `pad` zeros (independent offsets per image).
pub fn random_crop(batch: &Tensor, pad: usize, rng: &mut SmallRng) -> Tensor {
    if pad == 0 {
        return batch.clone();
    }
    let s = batch.shape();
    let mut out = Tensor::zeros(s);
    for n in 0..s.n {
        let dy = rng.next_below(2 * pad + 1) as isize - pad as isize;
        let dx = rng.next_below(2 * pad + 1) as isize - pad as isize;
        for c in 0..s.c {
            for h in 0..s.h {
                for w in 0..s.w {
                    let sy = h as isize + dy;
                    let sx = w as isize + dx;
                    if sy >= 0 && sx >= 0 && (sy as usize) < s.h && (sx as usize) < s.w {
                        *out.at_mut(n, c, h, w) = batch.at(n, c, sy as usize, sx as usize);
                    }
                }
            }
        }
    }
    out
}

/// Applies the full training augmentation pipeline (flip then crop).
pub fn augment(batch: &Tensor, pad: usize, rng: &mut SmallRng) -> Tensor {
    random_crop(&random_flip(batch, rng), pad, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_batch() -> Tensor {
        let mut t = Tensor::zeros([2, 1, 4, 4]);
        for n in 0..2 {
            for h in 0..4 {
                for w in 0..4 {
                    *t.at_mut(n, 0, h, w) = (n * 100 + h * 10 + w) as f32;
                }
            }
        }
        t
    }

    #[test]
    fn flip_preserves_content_per_row() {
        let batch = ramp_batch();
        let mut rng = SmallRng::new(1);
        let flipped = random_flip(&batch, &mut rng);
        for n in 0..2 {
            for h in 0..4 {
                let mut orig: Vec<f32> = (0..4).map(|w| batch.at(n, 0, h, w)).collect();
                let mut got: Vec<f32> = (0..4).map(|w| flipped.at(n, 0, h, w)).collect();
                orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
                got.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(orig, got);
            }
        }
    }

    #[test]
    fn flip_eventually_flips() {
        let batch = ramp_batch();
        let mut rng = SmallRng::new(2);
        let mut seen_flip = false;
        let mut seen_same = false;
        for _ in 0..20 {
            let f = random_flip(&batch, &mut rng);
            if f.at(0, 0, 0, 0) == batch.at(0, 0, 0, 3) {
                seen_flip = true;
            }
            if f.at(0, 0, 0, 0) == batch.at(0, 0, 0, 0) {
                seen_same = true;
            }
        }
        assert!(seen_flip && seen_same);
    }

    #[test]
    fn crop_zero_pad_is_identity() {
        let batch = ramp_batch();
        let mut rng = SmallRng::new(3);
        assert_eq!(random_crop(&batch, 0, &mut rng), batch);
    }

    #[test]
    fn crop_shifts_content() {
        let batch = ramp_batch();
        let mut rng = SmallRng::new(4);
        let mut saw_shift = false;
        for _ in 0..20 {
            let c = random_crop(&batch, 1, &mut rng);
            assert_eq!(c.shape(), batch.shape());
            if c != batch {
                saw_shift = true;
            }
        }
        assert!(saw_shift);
    }

    #[test]
    fn augment_preserves_shape() {
        let batch = ramp_batch();
        let mut rng = SmallRng::new(5);
        let a = augment(&batch, 2, &mut rng);
        assert_eq!(a.shape(), batch.shape());
    }
}
