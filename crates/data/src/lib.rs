//! # hsconas-data
//!
//! A procedurally generated image-classification dataset standing in for
//! ImageNet in the real-training experiments.
//!
//! ## Substitution rationale (documented in DESIGN.md)
//!
//! The supernet-training pipeline (weight sharing, channel masking,
//! progressive shrinking, evolutionary subnet evaluation) only needs a
//! dataset that (a) is learnable by the ShuffleNetV2-style networks in the
//! search space, (b) exhibits a capacity–accuracy gradient (bigger subnets
//! score higher), and (c) streams deterministically from a seed. This
//! module generates oriented-grating images: each class has a distinct
//! orientation, spatial frequency, and RGB tint, with per-sample random
//! phase, offset, and pixel noise. The task is linearly non-trivial but
//! comfortably learnable by small CNNs in seconds.
//!
//! ## Example
//!
//! ```
//! use hsconas_data::SyntheticDataset;
//!
//! let data = SyntheticDataset::new(8, 16, 42);
//! let (images, labels) = data.batch(4, 0);
//! assert_eq!(images.shape().to_vec(), vec![4, 3, 16, 16]);
//! assert_eq!(labels.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;

use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::Tensor;

/// A deterministic synthetic dataset of oriented-grating images.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    num_classes: usize,
    resolution: usize,
    seed: u64,
}

impl SyntheticDataset {
    /// Creates a dataset with `num_classes` classes at square `resolution`,
    /// generated deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or `resolution == 0`.
    pub fn new(num_classes: usize, resolution: usize, seed: u64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(resolution > 0, "resolution must be positive");
        SyntheticDataset {
            num_classes,
            resolution,
            seed,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image resolution (square).
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// The generation seed. Together with [`Self::num_classes`] and
    /// [`Self::resolution`] this fully identifies the stream, which lets
    /// consumers fingerprint a dataset (e.g. the supernet prefix cache
    /// keys cached activations by the batch stream they came from).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates one sample deterministically from `(self.seed, index)`.
    /// Even indices round-robin class labels so every batch is balanced.
    pub fn sample(&self, index: u64) -> (Tensor, usize) {
        let label = (index as usize) % self.num_classes;
        let mut rng = SmallRng::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index),
        );
        let image = self.render(label, &mut rng);
        (image, label)
    }

    /// Generates a batch of `n` consecutive samples starting at
    /// `start_index` as one NCHW tensor plus labels.
    pub fn batch(&self, n: usize, start_index: u64) -> (Tensor, Vec<usize>) {
        let r = self.resolution;
        let mut images = Tensor::zeros([n, 3, r, r]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let (img, label) = self.sample(start_index + i as u64);
            let dst_off = i * 3 * r * r;
            images.data_mut()[dst_off..dst_off + 3 * r * r].copy_from_slice(img.data());
            labels.push(label);
        }
        (images, labels)
    }

    /// Renders one image of `label`'s grating pattern with per-sample
    /// random phase, offset, and noise.
    fn render(&self, label: usize, rng: &mut SmallRng) -> Tensor {
        let r = self.resolution;
        let k = self.num_classes as f32;
        let angle = label as f32 * std::f32::consts::PI / k;
        let freq = 2.0 + (label % 3) as f32 * 1.5;
        let (dx, dy) = (angle.cos(), angle.sin());
        let phase = rng.next_f32() * std::f32::consts::TAU;
        // class tint: distinct RGB weights per class
        let tint = [
            0.5 + 0.5 * (label as f32 * 2.399).sin(),
            0.5 + 0.5 * (label as f32 * 2.399 + 2.0).sin(),
            0.5 + 0.5 * (label as f32 * 2.399 + 4.0).sin(),
        ];
        let mut img = Tensor::zeros([1, 3, r, r]);
        let scale = std::f32::consts::TAU * freq / r as f32;
        for (c, &t) in tint.iter().enumerate() {
            for y in 0..r {
                for x in 0..r {
                    let wave = ((x as f32 * dx + y as f32 * dy) * scale + phase).sin();
                    let noise = rng.next_normal() as f32 * 0.25;
                    *img.at_mut(0, c, y, x) = wave * t + noise;
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed_and_index() {
        let d = SyntheticDataset::new(10, 16, 7);
        let (a, la) = d.sample(3);
        let (b, lb) = d.sample(3);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = d.sample(4);
        assert_ne!(a, c);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = SyntheticDataset::new(10, 16, 1).sample(0);
        let (b, _) = SyntheticDataset::new(10, 16, 2).sample(0);
        assert_ne!(a, b);
    }

    #[test]
    fn labels_round_robin() {
        let d = SyntheticDataset::new(4, 8, 0);
        let (_, labels) = d.batch(8, 0);
        assert_eq!(labels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn batch_layout_matches_samples() {
        let d = SyntheticDataset::new(3, 8, 5);
        let (batch, _) = d.batch(3, 10);
        let (single, _) = d.sample(11);
        let r = 8 * 8 * 3;
        assert_eq!(&batch.data()[r..2 * r], single.data());
    }

    #[test]
    fn pixel_values_bounded() {
        let d = SyntheticDataset::new(10, 16, 3);
        let (img, _) = d.sample(0);
        for &v in img.data() {
            assert!(v.abs() < 3.0, "pixel {v} out of expected range");
        }
    }

    #[test]
    fn classes_are_statistically_distinct() {
        // The label signal lives in phase-invariant statistics (channel
        // tint / energy), so compare per-channel standard deviations:
        // same-class profiles must be closer than cross-class profiles.
        let d = SyntheticDataset::new(4, 16, 9);
        let profile = |img: &Tensor| -> [f32; 3] {
            let s = img.shape();
            let mut out = [0.0f32; 3];
            for (c, o) in out.iter_mut().enumerate() {
                let mut sum_sq = 0.0;
                for h in 0..s.h {
                    for w in 0..s.w {
                        sum_sq += img.at(0, c, h, w).powi(2);
                    }
                }
                *o = (sum_sq / (s.h * s.w) as f32).sqrt();
            }
            out
        };
        let dist = |a: [f32; 3], b: [f32; 3]| -> f32 {
            a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum::<f32>()
        };
        // samples 0, 4, 8 are class 0; 1, 5 are class 1
        let p0a = profile(&d.sample(0).0);
        let p0b = profile(&d.sample(4).0);
        let p1 = profile(&d.sample(1).0);
        let intra = dist(p0a, p0b);
        let inter = dist(p0a, p1);
        assert!(
            inter > intra * 2.0,
            "inter {inter} should clearly exceed intra {intra}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        SyntheticDataset::new(0, 8, 0);
    }
}
