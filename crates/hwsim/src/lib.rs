//! # hsconas-hwsim
//!
//! An analytical hardware device simulator standing in for the paper's
//! physical testbed (Nvidia Quadro GV100 GPU, Intel Xeon Gold 6136 CPU,
//! Nvidia Jetson Xavier edge device).
//!
//! ## Why a simulator is a faithful substitute
//!
//! The paper's latency-modeling contribution (§III-A) needs a ground-truth
//! latency *oracle* with three properties:
//!
//! 1. per-operator latency is a **nonlinear** function of compute and memory
//!    traffic (so FLOPs alone cannot predict it — Fig. 2);
//! 2. whole-network latency exceeds the sum of isolated per-operator
//!    latencies by framework/communication overheads (the bias `B` of
//!    Eq. 3);
//! 3. measurements are **noisy**.
//!
//! This crate implements exactly those properties with a roofline model:
//! each kernel takes `max(compute_time, memory_time) + launch_overhead`,
//! where compute throughput degrades for small kernels (utilization knee)
//! and for depthwise convolutions, and whole-network measurements add
//! inter-layer overheads plus multiplicative Gaussian noise.
//!
//! ## Example
//!
//! ```
//! use hsconas_hwsim::{lower_arch, DeviceSpec};
//! use hsconas_space::{Arch, SearchSpace};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::hsconas_a();
//! let net = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
//! let gpu = DeviceSpec::gpu_gv100();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let latency_ms = gpu.measure_network(&net, &mut rng) / 1000.0;
//! assert!(latency_ms > 0.1 && latency_ms < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod lower;
pub mod memory;
pub mod network;
pub mod parallel;
pub mod power;

pub use device::{DeviceKind, DeviceSpec};
pub use lower::{lower_arch, lower_layer};
pub use memory::{memory_footprint, MemoryFootprint};
pub use network::{KernelDesc, NetworkDesc, OpDesc};
pub use parallel::measure_networks_parallel;
pub use power::PowerModel;
