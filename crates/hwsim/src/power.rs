//! Energy / power modeling — the paper's stated future work ("we plan to
//! extend HSCoNAS, which will incorporate different hardware constraints
//! like power consumption"). This module implements that extension for
//! the simulated devices so the multi-constraint search can be exercised.
//!
//! The model is the standard architectural energy decomposition:
//! `E = Σ_kernels (macs · e_mac / efficiency + bytes · e_byte) + P_idle · t`
//! — dynamic compute energy (depthwise ops pay their efficiency discount
//! in energy as they do in time), memory-traffic energy, and a static
//! leakage/idle term proportional to the latency.

use crate::{DeviceKind, DeviceSpec, KernelDesc, NetworkDesc};
use serde::{Deserialize, Serialize};

/// Energy coefficients for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Dynamic energy per dense MAC, picojoules.
    pub pj_per_mac: f64,
    /// Energy per byte of activation/weight traffic, picojoules.
    pub pj_per_byte: f64,
    /// Idle / static power, watts.
    pub idle_watts: f64,
    /// Extra energy multiplier for depthwise kernels (poor data reuse).
    pub depthwise_energy_factor: f64,
}

impl PowerModel {
    /// An energy model matched to a device class. Coefficients follow the
    /// usual architectural rules of thumb: server GPUs spend ~10 pJ per
    /// fp32 MAC and hundreds of watts idle; CPUs tens of pJ per MAC;
    /// embedded SoCs sit in between on efficiency with far lower static
    /// power.
    pub fn for_device(device: &DeviceSpec) -> Self {
        match device.kind {
            DeviceKind::Gpu => PowerModel {
                pj_per_mac: 10.0,
                pj_per_byte: 80.0,
                idle_watts: 30.0,
                depthwise_energy_factor: 2.0,
            },
            DeviceKind::Cpu => PowerModel {
                pj_per_mac: 35.0,
                pj_per_byte: 60.0,
                idle_watts: 12.0,
                depthwise_energy_factor: 1.3,
            },
            DeviceKind::Edge => PowerModel {
                pj_per_mac: 6.0,
                pj_per_byte: 40.0,
                idle_watts: 3.0,
                depthwise_energy_factor: 1.6,
            },
        }
    }

    /// Dynamic energy of one kernel for one inference at the device's
    /// batch size, millijoules.
    pub fn kernel_energy_mj(&self, kernel: &KernelDesc, batch: usize) -> f64 {
        let factor = if kernel.depthwise {
            self.depthwise_energy_factor
        } else {
            1.0
        };
        let macs = kernel.macs * batch as f64;
        let bytes = kernel.activation_bytes * batch as f64 + kernel.weight_bytes;
        (macs * self.pj_per_mac * factor + bytes * self.pj_per_byte) * 1e-9
    }

    /// Total energy of one inference (dynamic + static), millijoules.
    /// The static term integrates idle power over the device's simulated
    /// latency for this network.
    pub fn network_energy_mj(&self, device: &DeviceSpec, net: &NetworkDesc) -> f64 {
        let dynamic: f64 = net
            .ops
            .iter()
            .flat_map(|o| &o.kernels)
            .map(|k| self.kernel_energy_mj(k, device.batch))
            .sum();
        let latency_s = device.network_time_us(net) * 1e-6;
        dynamic + self.idle_watts * latency_s * 1e3
    }

    /// Average power draw during one inference, watts.
    pub fn network_power_w(&self, device: &DeviceSpec, net: &NetworkDesc) -> f64 {
        let energy_j = self.network_energy_mj(device, net) * 1e-3;
        let latency_s = device.network_time_us(net) * 1e-6;
        energy_j / latency_s.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpDesc;

    fn sample_net(scale: usize) -> NetworkDesc {
        NetworkDesc::new(
            "n",
            vec![OpDesc::new(
                "op",
                vec![KernelDesc::conv(16 * scale, 16 * scale, 3, 28, 28, 1)],
            )],
        )
    }

    #[test]
    fn energy_positive_and_monotone_in_work() {
        for device in DeviceSpec::paper_devices() {
            let pm = PowerModel::for_device(&device);
            let small = pm.network_energy_mj(&device, &sample_net(1));
            let large = pm.network_energy_mj(&device, &sample_net(2));
            assert!(small > 0.0, "{}", device.name);
            // total energy includes a static term proportional to latency,
            // so it grows monotonically but sub-linearly in kernel work
            assert!(large > small, "{}: {small} vs {large}", device.name);
            // the dynamic part alone scales with MACs exactly
            let k1 = KernelDesc::conv(16, 16, 3, 28, 28, 1);
            let k2 = KernelDesc::conv(32, 32, 3, 28, 28, 1);
            let d1 = pm.kernel_energy_mj(&k1, device.batch);
            let d2 = pm.kernel_energy_mj(&k2, device.batch);
            assert!(d2 > 2.0 * d1, "{}: dynamic {d1} vs {d2}", device.name);
        }
    }

    #[test]
    fn depthwise_costs_more_energy_per_mac() {
        let device = DeviceSpec::edge_xavier();
        let pm = PowerModel::for_device(&device);
        let dense = KernelDesc::dense(1e6, 0.0, 0.0);
        let dw = KernelDesc::depthwise(1e6, 0.0, 0.0);
        assert!(pm.kernel_energy_mj(&dw, 1) > pm.kernel_energy_mj(&dense, 1));
    }

    #[test]
    fn edge_device_has_lowest_dynamic_energy_per_mac() {
        // The embedded SoC is the most efficient per unit of compute; at
        // the *network* level batching lets the GPU amortize its idle
        // power, so only the dynamic term has a device-independent
        // ordering.
        let kernel = KernelDesc::dense(1e6, 0.0, 0.0);
        let per_mac: Vec<(String, f64)> = DeviceSpec::paper_devices()
            .into_iter()
            .map(|d| {
                let pm = PowerModel::for_device(&d);
                (d.name.clone(), pm.kernel_energy_mj(&kernel, 1))
            })
            .collect();
        let edge = per_mac.iter().find(|(n, _)| n.contains("edge")).unwrap();
        for (name, e) in &per_mac {
            if !name.contains("edge") {
                assert!(edge.1 < *e, "edge {} vs {name} {e}", edge.1);
            }
        }
    }

    #[test]
    fn average_power_is_physical() {
        for device in DeviceSpec::paper_devices() {
            let pm = PowerModel::for_device(&device);
            let w = pm.network_power_w(&device, &sample_net(1));
            assert!(w > pm.idle_watts && w < 1000.0, "{}: {w} W", device.name);
        }
    }
}
