//! Device-independent description of a network as a sequence of operators,
//! each a list of compute kernels. Both search-space architectures
//! ([`crate::lower_arch`]) and the baseline model zoo lower to this form,
//! so one simulator serves every experiment.

use serde::{Deserialize, Serialize};

/// One compute kernel (a single convolution / matmul launch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Multiply-accumulate operations for one *batch-1* inference.
    pub macs: f64,
    /// Bytes of activation traffic (input + output) for one batch-1
    /// inference.
    pub activation_bytes: f64,
    /// Bytes of weight traffic (read once per launch, independent of batch).
    pub weight_bytes: f64,
    /// Whether this is a depthwise convolution (poor arithmetic intensity;
    /// simulated with a device-specific efficiency discount).
    pub depthwise: bool,
}

impl KernelDesc {
    /// A standard (dense) kernel from MAC count, activation bytes, and
    /// weight bytes.
    pub fn dense(macs: f64, activation_bytes: f64, weight_bytes: f64) -> Self {
        KernelDesc {
            macs,
            activation_bytes,
            weight_bytes,
            depthwise: false,
        }
    }

    /// A depthwise kernel.
    pub fn depthwise(macs: f64, activation_bytes: f64, weight_bytes: f64) -> Self {
        KernelDesc {
            macs,
            activation_bytes,
            weight_bytes,
            depthwise: true,
        }
    }

    /// Convenience constructor for a convolution kernel:
    /// `c_in × c_out × k² MACs` per output pixel at `out_res²`, activation
    /// traffic for input and output feature maps (4-byte floats), weight
    /// traffic for the filter bank.
    pub fn conv(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        in_res: usize,
        out_res: usize,
        groups: usize,
    ) -> Self {
        let macs = (out_res * out_res) as f64
            * (c_in / groups.max(1)) as f64
            * c_out as f64
            * (kernel * kernel) as f64;
        let act = 4.0 * ((in_res * in_res * c_in) as f64 + (out_res * out_res * c_out) as f64);
        let weights = 4.0 * (c_in / groups.max(1)) as f64 * c_out as f64 * (kernel * kernel) as f64;
        KernelDesc {
            macs,
            activation_bytes: act,
            weight_bytes: weights,
            depthwise: groups > 1 && groups == c_in && c_in == c_out,
        }
    }
}

/// One operator: a named group of kernels that executes as a unit
/// (a ShuffleNet block, the stem, the classifier head, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpDesc {
    /// Human-readable operator name for reports.
    pub name: String,
    /// The kernels launched by this operator, in order.
    pub kernels: Vec<KernelDesc>,
}

impl OpDesc {
    /// Creates an operator description.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelDesc>) -> Self {
        OpDesc {
            name: name.into(),
            kernels,
        }
    }

    /// Total MACs across kernels (batch 1).
    pub fn total_macs(&self) -> f64 {
        self.kernels.iter().map(|k| k.macs).sum()
    }
}

/// A whole network as an ordered operator sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkDesc {
    /// Network name for reports.
    pub name: String,
    /// Operators in execution order.
    pub ops: Vec<OpDesc>,
}

impl NetworkDesc {
    /// Creates a network description.
    pub fn new(name: impl Into<String>, ops: Vec<OpDesc>) -> Self {
        NetworkDesc {
            name: name.into(),
            ops,
        }
    }

    /// Total MACs for one batch-1 inference.
    pub fn total_macs(&self) -> f64 {
        self.ops.iter().map(|o| o.total_macs()).sum()
    }

    /// Total kernel count.
    pub fn kernel_count(&self) -> usize {
        self.ops.iter().map(|o| o.kernels.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_kernel_macs() {
        // 1x1 conv, 8 -> 16 channels at 4x4: 4*4*8*16 = 2048 MACs
        let k = KernelDesc::conv(8, 16, 1, 4, 4, 1);
        assert_eq!(k.macs, 2048.0);
        assert!(!k.depthwise);
        assert_eq!(k.weight_bytes, 4.0 * 8.0 * 16.0);
    }

    #[test]
    fn depthwise_detection() {
        let k = KernelDesc::conv(16, 16, 3, 8, 8, 16);
        assert!(k.depthwise);
        // grouped but not depthwise
        let g = KernelDesc::conv(16, 32, 3, 8, 8, 4);
        assert!(!g.depthwise);
    }

    #[test]
    fn totals_aggregate() {
        let op = OpDesc::new(
            "block",
            vec![
                KernelDesc::dense(100.0, 10.0, 5.0),
                KernelDesc::depthwise(50.0, 10.0, 5.0),
            ],
        );
        assert_eq!(op.total_macs(), 150.0);
        let net = NetworkDesc::new("n", vec![op.clone(), op]);
        assert_eq!(net.total_macs(), 300.0);
        assert_eq!(net.kernel_count(), 4);
    }
}
