//! Parallel measurement harness: measuring many candidate networks on a
//! simulated device over the shared worker pool ([`hsconas_par`]).
//! Latency-model calibration and Fig. 2/3-style sweeps measure hundreds
//! of networks; this spreads them across cores while keeping results
//! deterministic (each network gets its own seed derived from the
//! caller's base seed, so the thread schedule cannot change any number).

use crate::{DeviceSpec, NetworkDesc};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measures every network `repeats` times on `device`, in parallel, and
/// returns the mean latencies (microseconds) in input order.
///
/// Determinism: measurement `i` uses `StdRng::seed_from_u64(base_seed ^ i)`
/// regardless of which worker executes it. `threads == 0` uses the
/// process default ([`hsconas_par::default_threads`]).
///
/// # Panics
///
/// Panics if `repeats == 0`.
pub fn measure_networks_parallel(
    device: &DeviceSpec,
    nets: &[NetworkDesc],
    repeats: usize,
    base_seed: u64,
    threads: usize,
) -> Vec<f64> {
    assert!(repeats > 0, "need at least one measurement repeat");
    hsconas_par::par_map(nets, threads, |i, net| {
        let mut rng = StdRng::seed_from_u64(base_seed ^ (i as u64).wrapping_mul(0x9E37));
        device.measure_network_mean(net, repeats, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_arch;
    use hsconas_space::SearchSpace;

    fn sample_nets(n: usize) -> Vec<NetworkDesc> {
        let space = SearchSpace::hsconas_a();
        let mut rng = StdRng::seed_from_u64(1);
        space
            .sample_n(n, &mut rng)
            .iter()
            .map(|a| lower_arch(space.skeleton(), a).unwrap())
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let device = DeviceSpec::cpu_xeon_6136();
        let nets = sample_nets(12);
        let parallel = measure_networks_parallel(&device, &nets, 3, 42, 4);
        // sequential reference with the same per-index seeding
        let sequential: Vec<f64> = nets
            .iter()
            .enumerate()
            .map(|(i, net)| {
                let mut rng = StdRng::seed_from_u64(42 ^ (i as u64).wrapping_mul(0x9E37));
                device.measure_network_mean(net, 3, &mut rng)
            })
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let device = DeviceSpec::edge_xavier();
        let nets = sample_nets(9);
        let one = measure_networks_parallel(&device, &nets, 2, 7, 1);
        let many = measure_networks_parallel(&device, &nets, 2, 7, 8);
        assert_eq!(one, many);
    }

    #[test]
    fn empty_input_is_fine() {
        let device = DeviceSpec::gpu_gv100();
        assert!(measure_networks_parallel(&device, &[], 1, 0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "repeat")]
    fn zero_repeats_panics() {
        let device = DeviceSpec::gpu_gv100();
        measure_networks_parallel(&device, &sample_nets(1), 0, 0, 1);
    }
}
