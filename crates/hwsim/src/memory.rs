//! Memory-footprint model: peak activation memory and total weight
//! storage for a network on a device — the second "different hardware
//! constraint" (after power) that the paper's conclusion anticipates.
//! Edge deployments are routinely memory-bound before they are
//! latency-bound, so the multi-constraint search can bound this too.

use crate::{DeviceSpec, NetworkDesc};

/// Memory footprint of one inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryFootprint {
    /// Peak transient activation memory, bytes (the largest single
    /// operator's activation traffic at the device's batch size — a
    /// standard upper-bound proxy for allocator high-water mark).
    pub peak_activation_bytes: f64,
    /// Total parameter storage, bytes.
    pub weight_bytes: f64,
}

impl MemoryFootprint {
    /// Total footprint (weights resident + peak activations), bytes.
    pub fn total_bytes(&self) -> f64 {
        self.peak_activation_bytes + self.weight_bytes
    }

    /// Total footprint in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() / (1024.0 * 1024.0)
    }
}

/// Computes the memory footprint of `net` on `device` (batch-dependent).
pub fn memory_footprint(device: &DeviceSpec, net: &NetworkDesc) -> MemoryFootprint {
    let batch = device.batch as f64;
    let peak_activation_bytes = net
        .ops
        .iter()
        .map(|op| {
            op.kernels
                .iter()
                .map(|k| k.activation_bytes * batch)
                .fold(0.0, f64::max)
        })
        .fold(0.0, f64::max);
    let weight_bytes = net
        .ops
        .iter()
        .flat_map(|o| &o.kernels)
        .map(|k| k.weight_bytes)
        .sum();
    MemoryFootprint {
        peak_activation_bytes,
        weight_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_arch;
    use hsconas_space::{Arch, ChannelScale, Gene, OpKind, SearchSpace};

    #[test]
    fn widest_arch_footprint_is_plausible() {
        let space = SearchSpace::hsconas_a();
        let net = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
        for device in DeviceSpec::paper_devices() {
            let fp = memory_footprint(&device, &net);
            // weights: a few MiB of f32 parameters (batch-independent)
            assert!(
                fp.weight_bytes > 1e6 && fp.weight_bytes < 1e8,
                "{}: weights {}",
                device.name,
                fp.weight_bytes
            );
            assert!(fp.peak_activation_bytes > 0.0);
            assert!(fp.total_mib() > 1.0 && fp.total_mib() < 2048.0);
        }
    }

    #[test]
    fn batch_scales_activations_not_weights() {
        let space = SearchSpace::hsconas_a();
        let net = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
        let mut b1 = DeviceSpec::edge_xavier();
        b1.batch = 1;
        let mut b16 = DeviceSpec::edge_xavier();
        b16.batch = 16;
        let f1 = memory_footprint(&b1, &net);
        let f16 = memory_footprint(&b16, &net);
        assert!((f16.peak_activation_bytes / f1.peak_activation_bytes - 16.0).abs() < 1e-9);
        assert_eq!(f1.weight_bytes, f16.weight_bytes);
    }

    #[test]
    fn narrowing_reduces_footprint() {
        let space = SearchSpace::hsconas_a();
        let device = DeviceSpec::edge_xavier();
        let mut narrow = Arch::widest(20);
        for l in 0..20 {
            narrow
                .set_gene(
                    l,
                    Gene::new(OpKind::Shuffle3, ChannelScale::from_tenths(4).unwrap()),
                )
                .unwrap();
        }
        let wide_fp = memory_footprint(
            &device,
            &lower_arch(space.skeleton(), &Arch::widest(20)).unwrap(),
        );
        let narrow_fp = memory_footprint(&device, &lower_arch(space.skeleton(), &narrow).unwrap());
        assert!(narrow_fp.total_bytes() < wide_fp.total_bytes());
        assert!(narrow_fp.weight_bytes < wide_fp.weight_bytes);
    }

    /// Memory plugs into the multi-constraint objective like any metric —
    /// the full three-constraint (latency + energy + memory) search of the
    /// paper's future-work section.
    #[test]
    fn usable_as_search_constraint() {
        let space = SearchSpace::hsconas_a();
        let device = DeviceSpec::edge_xavier();
        let net = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
        let fp = memory_footprint(&device, &net);
        // the metric closure shape used by evo::Constraint
        let space2 = space.clone();
        let device2 = device.clone();
        let metric = move |arch: &Arch| -> Result<f64, String> {
            let net = lower_arch(space2.skeleton(), arch).map_err(|e| e.to_string())?;
            Ok(memory_footprint(&device2, &net).total_mib())
        };
        let v = metric(&Arch::widest(20)).unwrap();
        assert!((v - fp.total_mib()).abs() < 1e-9);
    }
}
