//! Device models: roofline latency simulation with utilization effects,
//! launch overheads, inter-operator communication costs, and measurement
//! noise.

use crate::{KernelDesc, NetworkDesc, OpDesc};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Device class, mirroring the paper's three platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Discrete data-center GPU (Quadro GV100 class), batch 32.
    Gpu,
    /// Server CPU (Xeon Gold 6136 class), batch 1.
    Cpu,
    /// Embedded SoC (Jetson Xavier class), batch 16.
    Edge,
}

/// An analytical device model. All rates are expressed per microsecond so
/// simulated times are in microseconds; reporting converts to milliseconds.
///
/// The model is deliberately richer than the paper's LUT (Eq. 2): it is the
/// *ground truth* the LUT is calibrated against, so it must contain effects
/// the LUT misses (inter-operator overhead, a fixed runtime cost, noise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name for reports.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Inference batch size (the paper uses 32 / 1 / 16 for GPU / CPU /
    /// Edge, §III-A).
    pub batch: usize,
    /// Peak dense-convolution throughput, MACs per microsecond.
    pub peak_macs_per_us: f64,
    /// Memory bandwidth, bytes per microsecond.
    pub mem_bytes_per_us: f64,
    /// Fixed cost of launching one kernel, microseconds.
    pub launch_overhead_us: f64,
    /// Per-operator-boundary framework/communication cost, microseconds.
    /// This is what Eq. 3's bias term `B` ends up absorbing.
    pub inter_op_overhead_us: f64,
    /// Fixed per-inference runtime cost, microseconds.
    pub fixed_overhead_us: f64,
    /// Relative standard deviation of measurement noise.
    pub noise_rel: f64,
    /// Work (MACs, after batch scaling) at which a kernel reaches ~63% of
    /// peak utilization; small kernels run far below peak.
    pub util_knee_macs: f64,
    /// Throughput multiplier for depthwise convolutions (low arithmetic
    /// intensity exploits wide SIMD/tensor units poorly).
    pub depthwise_efficiency: f64,
}

impl DeviceSpec {
    /// Quadro GV100-class GPU at batch 32.
    ///
    /// Calibrated so the Table I baselines land in the right regime
    /// (MobileNetV2 ≈ 11 ms, ShuffleNetV2 1.5× ≈ 10 ms, DARTS ≈ 17 ms).
    pub fn gpu_gv100() -> Self {
        DeviceSpec {
            name: "gpu-gv100".into(),
            kind: DeviceKind::Gpu,
            batch: 32,
            peak_macs_per_us: 3.15e6,
            mem_bytes_per_us: 215_000.0,
            launch_overhead_us: 8.0,
            inter_op_overhead_us: 70.0,
            fixed_overhead_us: 900.0,
            noise_rel: 0.02,
            util_knee_macs: 8.0e6,
            depthwise_efficiency: 0.30,
        }
    }

    /// Xeon Gold 6136-class CPU at batch 1.
    pub fn cpu_xeon_6136() -> Self {
        DeviceSpec {
            name: "cpu-xeon-6136".into(),
            kind: DeviceKind::Cpu,
            batch: 1,
            peak_macs_per_us: 42_000.0,
            mem_bytes_per_us: 8_000.0,
            launch_overhead_us: 190.0,
            inter_op_overhead_us: 140.0,
            fixed_overhead_us: 1_800.0,
            noise_rel: 0.03,
            util_knee_macs: 4.0e5,
            depthwise_efficiency: 0.42,
        }
    }

    /// Jetson Xavier-class edge device (power mode 6) at batch 16.
    pub fn edge_xavier() -> Self {
        DeviceSpec {
            name: "edge-xavier".into(),
            kind: DeviceKind::Edge,
            batch: 16,
            peak_macs_per_us: 175_000.0,
            mem_bytes_per_us: 25_000.0,
            launch_overhead_us: 26.0,
            inter_op_overhead_us: 380.0,
            fixed_overhead_us: 6_500.0,
            noise_rel: 0.04,
            util_knee_macs: 3.0e6,
            depthwise_efficiency: 0.20,
        }
    }

    /// The paper's three devices in its reporting order (GPU, CPU, Edge).
    pub fn paper_devices() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::gpu_gv100(),
            DeviceSpec::cpu_xeon_6136(),
            DeviceSpec::edge_xavier(),
        ]
    }

    /// Deterministic simulated execution time of a single kernel in
    /// microseconds (no noise), for one inference at this device's batch
    /// size.
    pub fn kernel_time_us(&self, kernel: &KernelDesc) -> f64 {
        let batch = self.batch as f64;
        let work = kernel.macs * batch;
        let efficiency = if kernel.depthwise {
            self.depthwise_efficiency
        } else {
            1.0
        };
        // Utilization rises towards 1 as per-kernel work grows past the knee.
        let utilization = 1.0 - (-work / self.util_knee_macs).exp();
        let throughput = (self.peak_macs_per_us * efficiency * utilization).max(1.0);
        let compute = work / throughput;
        let bytes = kernel.activation_bytes * batch + kernel.weight_bytes;
        let memory = bytes / self.mem_bytes_per_us;
        compute.max(memory) + self.launch_overhead_us
    }

    /// Deterministic isolated execution time of one operator (sum of its
    /// kernel times, no inter-operator overhead, no noise). This is the
    /// quantity a profiling pass records into the latency LUT.
    pub fn op_time_us(&self, op: &OpDesc) -> f64 {
        op.kernels.iter().map(|k| self.kernel_time_us(k)).sum()
    }

    /// Deterministic whole-network latency: operator times plus
    /// inter-operator communication and the fixed runtime overhead —
    /// everything except measurement noise.
    pub fn network_time_us(&self, net: &NetworkDesc) -> f64 {
        let ops: f64 = net.ops.iter().map(|o| self.op_time_us(o)).sum();
        let boundaries = net.ops.len().saturating_sub(1) as f64;
        ops + boundaries * self.inter_op_overhead_us + self.fixed_overhead_us
    }

    /// One noisy "on-device" latency measurement (`LAT⁺` in Eq. 3),
    /// microseconds.
    pub fn measure_network<R: Rng + ?Sized>(&self, net: &NetworkDesc, rng: &mut R) -> f64 {
        let base = self.network_time_us(net);
        // Multiplicative Gaussian noise, clamped so latency stays positive.
        let noise: f64 = 1.0 + self.noise_rel * standard_normal(rng);
        base * noise.max(0.5)
    }

    /// Mean of `repeats` noisy measurements, microseconds.
    pub fn measure_network_mean<R: Rng + ?Sized>(
        &self,
        net: &NetworkDesc,
        repeats: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(repeats > 0, "need at least one measurement");
        (0..repeats)
            .map(|_| self.measure_network(net, rng))
            .sum::<f64>()
            / repeats as f64
    }
}

/// Standard normal sample via Box–Muller (kept local so the simulator only
/// needs the `Rng` trait, not a distributions crate).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_net() -> NetworkDesc {
        NetworkDesc::new(
            "test",
            vec![
                OpDesc::new("a", vec![KernelDesc::conv(16, 32, 3, 56, 56, 1)]),
                OpDesc::new(
                    "b",
                    vec![
                        KernelDesc::conv(32, 32, 1, 56, 56, 1),
                        KernelDesc::conv(32, 32, 3, 56, 56, 32),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn kernel_time_positive_and_finite() {
        for dev in DeviceSpec::paper_devices() {
            let k = KernelDesc::conv(8, 8, 3, 7, 7, 1);
            let t = dev.kernel_time_us(&k);
            assert!(t.is_finite() && t > 0.0, "{}: {t}", dev.name);
        }
    }

    #[test]
    fn more_macs_more_time() {
        let dev = DeviceSpec::cpu_xeon_6136();
        let small = dev.kernel_time_us(&KernelDesc::conv(16, 16, 3, 28, 28, 1));
        let large = dev.kernel_time_us(&KernelDesc::conv(64, 64, 3, 28, 28, 1));
        assert!(large > small);
    }

    #[test]
    fn depthwise_runs_below_dense_efficiency() {
        // Same MAC count: a depthwise kernel must be slower than a dense one
        // on compute-bound devices.
        let dev = DeviceSpec::gpu_gv100();
        let dense = KernelDesc::dense(1e9, 1e6, 1e5);
        let dw = KernelDesc::depthwise(1e9, 1e6, 1e5);
        assert!(dev.kernel_time_us(&dw) > dev.kernel_time_us(&dense));
    }

    #[test]
    fn small_kernels_underutilize() {
        // Two kernels of work W each must take longer than one kernel of 2W
        // (launch overhead + utilization knee penalize fragmentation).
        let dev = DeviceSpec::gpu_gv100();
        let one = dev.kernel_time_us(&KernelDesc::dense(2e7, 1e5, 1e4));
        let two = 2.0 * dev.kernel_time_us(&KernelDesc::dense(1e7, 5e4, 5e3));
        assert!(two > one);
    }

    #[test]
    fn network_time_exceeds_sum_of_ops() {
        // Property 2 from the crate docs: the LUT-sum underestimates.
        let net = sample_net();
        for dev in DeviceSpec::paper_devices() {
            let op_sum: f64 = net.ops.iter().map(|o| dev.op_time_us(o)).sum();
            let total = dev.network_time_us(&net);
            assert!(total > op_sum, "{}", dev.name);
        }
    }

    #[test]
    fn measurement_noise_has_expected_spread() {
        let net = sample_net();
        let dev = DeviceSpec::edge_xavier();
        let mut rng = StdRng::seed_from_u64(1);
        let base = dev.network_time_us(&net);
        let n = 2000;
        let samples: Vec<f64> = (0..n)
            .map(|_| dev.measure_network(&net, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean / base - 1.0).abs() < 0.01, "mean {mean} base {base}");
        assert!((std / base - dev.noise_rel).abs() < 0.01, "std {std}");
    }

    #[test]
    fn measure_mean_converges() {
        let net = sample_net();
        let dev = DeviceSpec::gpu_gv100();
        let mut rng = StdRng::seed_from_u64(2);
        let base = dev.network_time_us(&net);
        let mean = dev.measure_network_mean(&net, 200, &mut rng);
        assert!((mean / base - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_repeats_panics() {
        let dev = DeviceSpec::gpu_gv100();
        let mut rng = StdRng::seed_from_u64(3);
        dev.measure_network_mean(&sample_net(), 0, &mut rng);
    }

    #[test]
    fn paper_devices_have_paper_batches() {
        let devs = DeviceSpec::paper_devices();
        assert_eq!(devs[0].batch, 32);
        assert_eq!(devs[1].batch, 1);
        assert_eq!(devs[2].batch, 16);
    }
}
