//! Lowering search-space architectures to simulator network descriptions.

use crate::{KernelDesc, NetworkDesc, OpDesc};
use hsconas_space::{resolve_geometry, Arch, LayerGeom, NetworkSkeleton, OpKind, SpaceError};

/// Lowers one searchable layer to its kernel launches.
///
/// Mirrors the block structure in `hsconas-nn`:
/// ShuffleNetV2 units decompose into pointwise/depthwise convolutions
/// (batch-norm and activation costs ride along inside the kernels' byte
/// counts and are negligible in MACs); skip is free (stride 1) or a cheap
/// pooling pass (stride 2).
pub fn lower_layer(geom: &LayerGeom) -> OpDesc {
    let h_in = geom.resolution_in;
    let h_out = geom.resolution_out();
    let (c_in, c_out) = (geom.c_in, geom.c_out);
    let name = format!("layer{}:{}", geom.index, geom.op);
    let mut kernels = Vec::new();
    match (geom.op, geom.stride) {
        (OpKind::Skip, 1) => {}
        (OpKind::Skip, _) => {
            // 2×2 average pool ≈ one MAC per input element, pure memory op.
            kernels.push(KernelDesc::dense(
                (h_in * h_in * c_in) as f64,
                4.0 * ((h_in * h_in * c_in) as f64 + (h_out * h_out * c_out) as f64),
                0.0,
            ));
        }
        (op, stride) => {
            let b_in = (c_in / 2).max(1);
            let b_out = (c_out / 2).max(1);
            let k = op.kernel().expect("parametric op has a kernel");
            if stride == 2 {
                // Left branch: dw k stride-2 over c_in, then pw to b_out.
                kernels.push(KernelDesc::conv(c_in, c_in, k, h_in, h_out, c_in));
                kernels.push(KernelDesc::conv(c_in, b_out, 1, h_out, h_out, 1));
            }
            match op {
                OpKind::Shuffle3 | OpKind::Shuffle5 | OpKind::Shuffle7 => {
                    let r_in = if stride == 2 { c_in } else { b_in };
                    kernels.push(KernelDesc::conv(r_in, b_out, 1, h_in, h_in, 1));
                    kernels.push(KernelDesc::conv(b_out, b_out, k, h_in, h_out, b_out));
                    kernels.push(KernelDesc::conv(b_out, b_out, 1, h_out, h_out, 1));
                }
                OpKind::Xception => {
                    let r_in = if stride == 2 { c_in } else { b_in };
                    kernels.push(KernelDesc::conv(r_in, r_in, 3, h_in, h_out, r_in));
                    kernels.push(KernelDesc::conv(r_in, b_out, 1, h_out, h_out, 1));
                    for _ in 0..2 {
                        kernels.push(KernelDesc::conv(b_out, b_out, 3, h_out, h_out, b_out));
                        kernels.push(KernelDesc::conv(b_out, b_out, 1, h_out, h_out, 1));
                    }
                }
                OpKind::Skip => unreachable!("handled above"),
            }
        }
    }
    OpDesc::new(name, kernels)
}

/// Lowers the skeleton's fixed stem convolution.
pub fn lower_stem(skeleton: &NetworkSkeleton) -> OpDesc {
    let out_res = skeleton.input_resolution / 2;
    OpDesc::new(
        "stem",
        vec![KernelDesc::conv(
            skeleton.input_channels,
            skeleton.stem_channels,
            3,
            skeleton.input_resolution,
            out_res,
            1,
        )],
    )
}

/// Lowers the skeleton's fixed head (1×1 conv, global pool, classifier).
pub fn lower_head(skeleton: &NetworkSkeleton, last_c: usize, final_res: usize) -> OpDesc {
    OpDesc::new(
        "head",
        vec![
            KernelDesc::conv(last_c, skeleton.head_channels, 1, final_res, final_res, 1),
            // classifier as a 1×1 "conv" at resolution 1
            KernelDesc::conv(skeleton.head_channels, skeleton.num_classes, 1, 1, 1, 1),
        ],
    )
}

/// Lowers a full architecture (stem + searchable layers + head).
///
/// # Errors
///
/// Returns [`SpaceError`] if the architecture does not match the skeleton.
pub fn lower_arch(skeleton: &NetworkSkeleton, arch: &Arch) -> Result<NetworkDesc, SpaceError> {
    let geoms = resolve_geometry(skeleton, arch)?;
    let mut ops = Vec::with_capacity(geoms.len() + 2);
    ops.push(lower_stem(skeleton));
    for geom in &geoms {
        ops.push(lower_layer(geom));
    }
    let final_res = geoms
        .last()
        .map(|g| g.resolution_out())
        .unwrap_or(skeleton.input_resolution / 2);
    let last_c = geoms
        .last()
        .map(|g| g.c_out)
        .unwrap_or(skeleton.stem_channels);
    ops.push(lower_head(skeleton, last_c, final_res));
    Ok(NetworkDesc::new(
        format!("arch-{:016x}", arch.fingerprint()),
        ops,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsconas_space::cost::arch_cost;
    use hsconas_space::{ChannelScale, Gene, SearchSpace};

    #[test]
    fn lowered_macs_match_cost_model_scale() {
        // The simulator lowering and the cost model decompose blocks the
        // same way, so their MAC totals must agree closely (cost model adds
        // small batch-norm FLOPs).
        let space = SearchSpace::hsconas_a();
        let arch = Arch::widest(20);
        let net = lower_arch(space.skeleton(), &arch).unwrap();
        let cost = arch_cost(space.skeleton(), &arch).unwrap();
        let ratio = net.total_macs() / cost.total_flops();
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn op_count_is_layers_plus_stem_and_head() {
        let space = SearchSpace::hsconas_a();
        let net = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
        assert_eq!(net.ops.len(), 22);
        assert_eq!(net.ops[0].name, "stem");
        assert_eq!(net.ops[21].name, "head");
    }

    #[test]
    fn skip_stride1_has_no_kernels() {
        let space = SearchSpace::hsconas_a();
        let mut arch = Arch::widest(20);
        arch.set_gene(2, Gene::new(OpKind::Skip, ChannelScale::FULL))
            .unwrap();
        let net = lower_arch(space.skeleton(), &arch).unwrap();
        assert!(net.ops[3].kernels.is_empty()); // ops[0] is the stem
    }

    #[test]
    fn stride2_layers_emit_left_branch() {
        let space = SearchSpace::hsconas_a();
        let net = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
        // layer 0 (ops[1]) is stride 2: left dw + left pw + 3 right kernels
        assert_eq!(net.ops[1].kernels.len(), 5);
        // layer 1 (ops[2]) is stride 1: 3 right kernels only
        assert_eq!(net.ops[2].kernels.len(), 3);
    }

    #[test]
    fn depthwise_kernels_are_flagged() {
        let space = SearchSpace::hsconas_a();
        let net = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
        let dw_count: usize = net
            .ops
            .iter()
            .flat_map(|o| &o.kernels)
            .filter(|k| k.depthwise)
            .count();
        // one dw per stride-1 layer (16) + two per stride-2 layer (4)
        assert_eq!(dw_count, 16 + 8);
    }

    #[test]
    fn name_is_fingerprint_stable() {
        let space = SearchSpace::hsconas_a();
        let a = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
        let b = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
        assert_eq!(a.name, b.name);
    }

    #[test]
    fn mismatched_arch_rejected() {
        let space = SearchSpace::hsconas_a();
        assert!(lower_arch(space.skeleton(), &Arch::widest(5)).is_err());
    }
}
