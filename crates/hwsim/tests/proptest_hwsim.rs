//! Property tests for the device simulator: physical sanity must hold for
//! arbitrary kernels and networks.

use hsconas_hwsim::{DeviceSpec, KernelDesc, NetworkDesc, OpDesc, PowerModel};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = KernelDesc> {
    (
        1.0e3..1.0e9f64,
        0.0..1.0e7f64,
        0.0..1.0e6f64,
        proptest::bool::ANY,
    )
        .prop_map(|(macs, act, weights, dw)| {
            if dw {
                KernelDesc::depthwise(macs, act, weights)
            } else {
                KernelDesc::dense(macs, act, weights)
            }
        })
}

fn net_strategy() -> impl Strategy<Value = NetworkDesc> {
    proptest::collection::vec(proptest::collection::vec(kernel_strategy(), 1..5), 1..8).prop_map(
        |ops| {
            NetworkDesc::new(
                "prop",
                ops.into_iter()
                    .enumerate()
                    .map(|(i, kernels)| OpDesc::new(format!("op{i}"), kernels))
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kernel time is finite, positive, at least the launch overhead, and
    /// at least the memory-roofline time.
    #[test]
    fn kernel_time_physical(kernel in kernel_strategy()) {
        for device in DeviceSpec::paper_devices() {
            let t = device.kernel_time_us(&kernel);
            prop_assert!(t.is_finite() && t > 0.0);
            prop_assert!(t >= device.launch_overhead_us);
            let bytes = kernel.activation_bytes * device.batch as f64 + kernel.weight_bytes;
            prop_assert!(t >= bytes / device.mem_bytes_per_us, "memory roofline violated");
        }
    }

    /// Adding MACs to a kernel never makes it faster.
    #[test]
    fn kernel_time_monotone_in_macs(kernel in kernel_strategy(), factor in 1.1..4.0f64) {
        let mut bigger = kernel;
        bigger.macs *= factor;
        for device in DeviceSpec::paper_devices() {
            prop_assert!(
                device.kernel_time_us(&bigger) >= device.kernel_time_us(&kernel) * 0.999,
                "{}", device.name
            );
        }
    }

    /// Network time equals the op-time sum plus exactly the structural
    /// overheads, and the energy model yields finite positive energy.
    #[test]
    fn network_time_decomposition(net in net_strategy()) {
        for device in DeviceSpec::paper_devices() {
            let op_sum: f64 = net.ops.iter().map(|o| device.op_time_us(o)).sum();
            let expected = op_sum
                + (net.ops.len() - 1) as f64 * device.inter_op_overhead_us
                + device.fixed_overhead_us;
            let got = device.network_time_us(&net);
            prop_assert!((got - expected).abs() < 1e-6 * expected.max(1.0));
            let pm = PowerModel::for_device(&device);
            let e = pm.network_energy_mj(&device, &net);
            prop_assert!(e.is_finite() && e > 0.0);
        }
    }

    /// Measurement noise is unbiased: the mean of many measurements
    /// approaches the deterministic time.
    #[test]
    fn measurement_mean_unbiased(net in net_strategy(), seed in 0u64..200) {
        use rand::SeedableRng;
        let device = DeviceSpec::cpu_xeon_6136();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mean = device.measure_network_mean(&net, 300, &mut rng);
        let base = device.network_time_us(&net);
        prop_assert!((mean / base - 1.0).abs() < 0.02, "mean {} base {}", mean, base);
    }
}
