//! # hsconas-accuracy
//!
//! ImageNet accuracy oracle substitute for the HSCoNAS search space.
//!
//! ## Substitution rationale (documented in DESIGN.md)
//!
//! The paper evaluates `ACC(arch)` by training a weight-sharing supernet on
//! ImageNet and evaluating subnets with inherited weights. Training on
//! ImageNet is out of scope for this reproduction, so this crate provides a
//! deterministic *surrogate oracle* with the properties the NAS algorithms
//! actually rely on:
//!
//! * accuracy increases with network capacity (width, depth, kernel size)
//!   with **diminishing returns** — the capacity term is exponential-decay
//!   shaped, calibrated so the widest layout-A network lands near the
//!   Table I HSCoNet-A accuracies and layout-B near HSCoNet-B;
//! * **skip connections reduce effective depth** and therefore accuracy —
//!   a free lunch is impossible;
//! * a **bottleneck penalty** punishes strangling any single layer, so the
//!   optimal channel allocation is non-uniform but bounded below;
//! * a small deterministic per-architecture noise term (seeded by the
//!   architecture fingerprint) models the evaluation variance of
//!   weight-sharing supernets without breaking reproducibility.
//!
//! The [`AccuracyModel`] trait abstracts the oracle so the search
//! algorithms are generic: the real-training path (`hsconas-supernet`)
//! provides an alternative implementation backed by an actual trained
//! supernet on the synthetic dataset.
//!
//! ## Example
//!
//! ```
//! use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
//! use hsconas_space::{Arch, SearchSpace};
//!
//! let space = SearchSpace::hsconas_a();
//! let oracle = SurrogateAccuracy::new(space.skeleton().clone());
//! let err = oracle.top1_error(&Arch::widest(20)).unwrap();
//! assert!(err > 20.0 && err < 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod surrogate;

pub use error::AccuracyError;
pub use surrogate::SurrogateAccuracy;

use hsconas_space::Arch;

/// An oracle mapping architectures to (simulated) ImageNet test error.
pub trait AccuracyModel {
    /// Top-1 test error in percent (lower is better).
    ///
    /// # Errors
    ///
    /// Returns [`AccuracyError`] if the architecture does not match the
    /// model's skeleton.
    fn top1_error(&self, arch: &Arch) -> Result<f64, AccuracyError>;

    /// Top-5 test error in percent, derived from top-1 by the linear fit
    /// of the Table I baselines (`top5 ≈ 0.73 · top1 − 10.6`, clamped to
    /// at least 0.5).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`AccuracyModel::top1_error`].
    fn top5_error(&self, arch: &Arch) -> Result<f64, AccuracyError> {
        Ok((0.73 * self.top1_error(arch)? - 10.6).max(0.5))
    }

    /// Top-1 accuracy in percent (`100 − top-1 error`), the `ACC` term of
    /// the paper's Eq. 1.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`AccuracyModel::top1_error`].
    fn accuracy(&self, arch: &Arch) -> Result<f64, AccuracyError> {
        Ok(100.0 - self.top1_error(arch)?)
    }
}
