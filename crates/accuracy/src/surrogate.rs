//! The deterministic capacity-based accuracy surrogate.

use crate::{AccuracyError, AccuracyModel};
use hsconas_space::{resolve_geometry, Arch, LayerGeom, NetworkSkeleton, OpKind};

/// Tunable constants of the surrogate; the defaults are calibrated against
/// the Table I anchor points (see the calibration tests at the bottom of
/// this file).
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateConfig {
    /// Asymptotic top-1 error for infinite capacity, percent.
    pub floor_error: f64,
    /// Error range above the floor at zero capacity, percent.
    pub range_error: f64,
    /// Capacity scale of the exponential-decay term.
    pub capacity_scale: f64,
    /// Penalty weight for layers narrower than the bottleneck threshold.
    pub bottleneck_weight: f64,
    /// Width ratio below which the bottleneck penalty kicks in.
    pub bottleneck_threshold: f64,
    /// Standard deviation of the deterministic per-architecture noise,
    /// percent.
    pub noise_std: f64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            floor_error: 17.5,
            range_error: 363.0,
            capacity_scale: 38.35,
            bottleneck_weight: 9.0,
            bottleneck_threshold: 0.30,
            noise_std: 0.15,
        }
    }
}

/// Capacity-based accuracy oracle (see the crate docs for the rationale).
#[derive(Debug, Clone)]
pub struct SurrogateAccuracy {
    skeleton: NetworkSkeleton,
    config: SurrogateConfig,
}

impl SurrogateAccuracy {
    /// Creates an oracle with default (Table-I-calibrated) constants.
    pub fn new(skeleton: NetworkSkeleton) -> Self {
        SurrogateAccuracy {
            skeleton,
            config: SurrogateConfig::default(),
        }
    }

    /// Creates an oracle with explicit constants (used by calibration
    /// sweeps and ablations).
    pub fn with_config(skeleton: NetworkSkeleton, config: SurrogateConfig) -> Self {
        SurrogateAccuracy { skeleton, config }
    }

    /// The oracle's skeleton.
    pub fn skeleton(&self) -> &NetworkSkeleton {
        &self.skeleton
    }

    /// The active configuration.
    pub fn config(&self) -> &SurrogateConfig {
        &self.config
    }

    /// Per-layer capacity contribution. Wider layers contribute
    /// logarithmically (diminishing returns), larger receptive fields and
    /// the deeper Xception block contribute a small multiplier, skips
    /// contribute nothing.
    fn layer_capacity(geom: &LayerGeom) -> f64 {
        let quality = match geom.op {
            OpKind::Skip => return 0.0,
            OpKind::Shuffle3 => 1.0,
            OpKind::Shuffle5 => 1.02,
            OpKind::Shuffle7 => 1.035,
            OpKind::Xception => 1.05,
        };
        quality * (geom.c_out as f64).log2()
    }

    /// Total capacity of an architecture.
    fn capacity(&self, geoms: &[LayerGeom]) -> f64 {
        geoms.iter().map(Self::layer_capacity).sum()
    }

    /// Bottleneck penalty: each parametric layer whose width ratio
    /// (`c_out / S^l`) falls below the threshold contributes a linear
    /// penalty. A single strangled layer ruins a network in practice.
    fn bottleneck_penalty(&self, geoms: &[LayerGeom]) -> f64 {
        let slots = self.skeleton.layer_slots();
        geoms
            .iter()
            .zip(&slots)
            .filter(|(g, _)| g.op != OpKind::Skip)
            .map(|(g, slot)| {
                let ratio = g.c_out as f64 / slot.max_channels as f64;
                if ratio < self.config.bottleneck_threshold {
                    self.config.bottleneck_weight * (self.config.bottleneck_threshold - ratio)
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Deterministic pseudo-noise in `(-3σ, 3σ)`, seeded by the
    /// architecture fingerprint: the same architecture always receives the
    /// same "evaluation variance".
    fn noise(&self, arch: &Arch) -> f64 {
        let mut h = arch.fingerprint();
        // xorshift* scramble, then map to (0,1)
        h ^= h >> 12;
        h ^= h << 25;
        h ^= h >> 27;
        let u = (h.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        // inverse-CDF-free bounded noise: scaled, centered triangular-ish
        let mut h2 = arch.fingerprint().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h2 ^= h2 >> 29;
        let v = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        // sum of two uniforms → triangular distribution on (0, 2), centered
        let centered = u + v - 1.0;
        centered * self.config.noise_std * (6.0f64).sqrt() / 2.0
    }
}

impl AccuracyModel for SurrogateAccuracy {
    fn top1_error(&self, arch: &Arch) -> Result<f64, AccuracyError> {
        let geoms = resolve_geometry(&self.skeleton, arch)?;
        let capacity = self.capacity(&geoms);
        let base = self.config.floor_error
            + self.config.range_error * (-capacity / self.config.capacity_scale).exp();
        let err = base + self.bottleneck_penalty(&geoms) + self.noise(arch);
        Ok(err.clamp(self.config.floor_error * 0.9, 95.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsconas_space::{ChannelLayout, ChannelScale, Gene, SearchSpace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn oracle_a() -> SurrogateAccuracy {
        SurrogateAccuracy::new(NetworkSkeleton::imagenet(ChannelLayout::A))
    }

    fn oracle_b() -> SurrogateAccuracy {
        SurrogateAccuracy::new(NetworkSkeleton::imagenet(ChannelLayout::B))
    }

    /// Calibration anchor: the widest layout-A network should land near
    /// the HSCoNet-A family's Table I errors (25.1–25.7%), and the widest
    /// layout-B near HSCoNet-B (23.5–23.8%). The searched models can only
    /// do as well as the widest member of their space, so the widest
    /// member must sit slightly *below* those bands.
    #[test]
    fn calibration_anchors() {
        let widest = Arch::widest(20);
        let a = oracle_a().top1_error(&widest).unwrap();
        let b = oracle_b().top1_error(&widest).unwrap();
        assert!((24.0..=25.5).contains(&a), "layout A widest err {a}");
        assert!((22.3..=23.8).contains(&b), "layout B widest err {b}");
        assert!(a - b > 1.0, "A–B family gap too small: {a} vs {b}");
    }

    #[test]
    fn top5_matches_baseline_fit() {
        // The MnasNet-A1 anchor: top1 24.8 → top5 ≈ 7.5.
        struct Fixed;
        impl AccuracyModel for Fixed {
            fn top1_error(&self, _: &Arch) -> Result<f64, AccuracyError> {
                Ok(24.8)
            }
        }
        let t5 = Fixed.top5_error(&Arch::widest(20)).unwrap();
        assert!((t5 - 7.5).abs() < 0.5, "{t5}");
    }

    #[test]
    fn narrower_is_worse() {
        let oracle = oracle_a();
        let mut prev = 0.0;
        for t in (1..=10u8).rev() {
            let mut arch = Arch::widest(20);
            for l in 0..20 {
                arch.set_gene(
                    l,
                    Gene::new(OpKind::Shuffle3, ChannelScale::from_tenths(t).unwrap()),
                )
                .unwrap();
            }
            let err = oracle.top1_error(&arch).unwrap();
            assert!(
                err > prev - 0.5,
                "scale {t}: err {err} should not beat wider {prev} by more than noise"
            );
            prev = err;
        }
        // extremes must differ by a lot
        let mut narrowest = Arch::widest(20);
        for l in 0..20 {
            narrowest
                .set_gene(
                    l,
                    Gene::new(OpKind::Shuffle3, ChannelScale::from_tenths(1).unwrap()),
                )
                .unwrap();
        }
        let narrow_err = oracle.top1_error(&narrowest).unwrap();
        let wide_err = oracle.top1_error(&Arch::widest(20)).unwrap();
        assert!(narrow_err > wide_err + 10.0);
    }

    #[test]
    fn skips_hurt_accuracy() {
        let oracle = oracle_a();
        let full = oracle.top1_error(&Arch::widest(20)).unwrap();
        let mut skippy = Arch::widest(20);
        for l in [1, 2, 3, 5, 6, 7] {
            skippy
                .set_gene(l, Gene::new(OpKind::Skip, ChannelScale::FULL))
                .unwrap();
        }
        let skip_err = oracle.top1_error(&skippy).unwrap();
        assert!(skip_err > full + 1.0, "{skip_err} vs {full}");
    }

    #[test]
    fn bigger_kernels_help_slightly() {
        let oracle = oracle_a();
        let mut k7 = Arch::widest(20);
        for l in 0..20 {
            k7.set_gene(l, Gene::new(OpKind::Shuffle7, ChannelScale::FULL))
                .unwrap();
        }
        let err3 = oracle.top1_error(&Arch::widest(20)).unwrap();
        let err7 = oracle.top1_error(&k7).unwrap();
        assert!(err7 < err3, "k7 {err7} should beat k3 {err3}");
        assert!(err3 - err7 < 3.0, "kernel bonus too strong");
    }

    #[test]
    fn bottleneck_penalty_applies() {
        let oracle = oracle_a();
        let mut pinched = Arch::widest(20);
        pinched
            .set_gene(
                10,
                Gene::new(OpKind::Shuffle3, ChannelScale::from_tenths(1).unwrap()),
            )
            .unwrap();
        let err = oracle.top1_error(&pinched).unwrap();
        let full = oracle.top1_error(&Arch::widest(20)).unwrap();
        // capacity loss of one layer is small; the penalty must dominate
        assert!(err > full + 1.0, "{err} vs {full}");
    }

    #[test]
    fn deterministic_per_arch() {
        let oracle = oracle_a();
        let space = SearchSpace::hsconas_a();
        let mut rng = StdRng::seed_from_u64(1);
        for arch in space.sample_n(10, &mut rng) {
            assert_eq!(
                oracle.top1_error(&arch).unwrap(),
                oracle.top1_error(&arch).unwrap()
            );
        }
    }

    #[test]
    fn noise_is_bounded_and_varied() {
        let oracle = oracle_a();
        let space = SearchSpace::hsconas_a();
        let mut rng = StdRng::seed_from_u64(2);
        let archs = space.sample_n(200, &mut rng);
        let noises: Vec<f64> = archs.iter().map(|a| oracle.noise(a)).collect();
        let max_abs = noises.iter().fold(0.0f64, |m, n| m.max(n.abs()));
        assert!(max_abs < 0.5, "noise too large: {max_abs}");
        let distinct = noises
            .iter()
            .map(|n| (n * 1e9) as i64)
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 150, "noise not varied: {distinct}");
    }

    #[test]
    fn errors_stay_in_valid_range() {
        let space = SearchSpace::hsconas_a();
        let oracle = oracle_a();
        let mut rng = StdRng::seed_from_u64(3);
        for arch in space.sample_n(200, &mut rng) {
            let err = oracle.top1_error(&arch).unwrap();
            assert!((10.0..=95.0).contains(&err), "{err}");
            let top5 = oracle.top5_error(&arch).unwrap();
            assert!(top5 < err, "top5 {top5} must be below top1 {err}");
            assert!(top5 >= 0.5);
        }
    }

    #[test]
    fn accuracy_is_complement() {
        let oracle = oracle_a();
        let arch = Arch::widest(20);
        let err = oracle.top1_error(&arch).unwrap();
        let acc = oracle.accuracy(&arch).unwrap();
        assert!((acc + err - 100.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_arch() {
        assert!(oracle_a().top1_error(&Arch::widest(3)).is_err());
    }
}
