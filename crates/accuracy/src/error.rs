use hsconas_space::SpaceError;
use std::fmt;

/// Error type for accuracy-oracle queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccuracyError {
    /// The queried architecture does not fit the oracle's skeleton.
    Space(SpaceError),
}

impl fmt::Display for AccuracyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccuracyError::Space(e) => write!(f, "space error: {e}"),
        }
    }
}

impl std::error::Error for AccuracyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccuracyError::Space(e) => Some(e),
        }
    }
}

impl From<SpaceError> for AccuracyError {
    fn from(e: SpaceError) -> Self {
        AccuracyError::Space(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_space_error() {
        use std::error::Error;
        let e: AccuracyError = SpaceError::ArchMismatch { detail: "x".into() }.into();
        assert!(e.to_string().contains("space error"));
        assert!(e.source().is_some());
    }
}
