//! The complete paper pipeline with no surrogate anywhere: supernet
//! training → progressive shrinking with fine-tuning → evolutionary
//! search with inherited-weight accuracy → from-scratch training of the
//! winner — all at laptop scale on the synthetic dataset.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hsconas --example full_real_pipeline
//! ```

use hsconas::{run_real_pipeline, RealPipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RealPipelineConfig::tiny_default();
    println!(
        "running the real-training pipeline (warm {} steps, {} shrink stages, EA {}x{})...",
        config.warm_steps,
        config.shrink_stages.len(),
        config.evolution.generations,
        config.evolution.population
    );
    let result = run_real_pipeline(&config, 2021)?;
    println!(
        "\nshrunk space    : {} fixed layers",
        result.shrunk_space.fixed_layers().len()
    );
    println!("best arch       : {}", result.best_arch);
    println!(
        "inherited acc   : {:.1}% (weight-sharing supernet evaluation)",
        100.0 * result.inherited_accuracy
    );
    println!(
        "from-scratch acc: {:.1}% (the paper's fair-comparison protocol)",
        100.0 * result.from_scratch_accuracy
    );
    println!(
        "latency         : {:.1} ms (target {} ms)",
        result.latency_ms, config.target_ms
    );
    Ok(())
}
