//! Scenario: the full real-training pipeline at laptop scale.
//!
//! Instead of the calibrated accuracy surrogate, this example runs the
//! paper's actual mechanics end to end on the tiny search space and the
//! synthetic dataset: train a weight-sharing supernet with single-path
//! sampling and channel masking, then run the evolutionary search where
//! ACC(arch) comes from evaluating subnets with inherited weights and
//! LAT(arch) from the calibrated predictor.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hsconas --example real_training_search
//! ```

use hsconas_accuracy::AccuracyModel;
use hsconas_data::SyntheticDataset;
use hsconas_evo::{EvolutionConfig, EvolutionSearch, TradeoffObjective};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::LatencyPredictor;
use hsconas_space::{Arch, SearchSpace};
use hsconas_supernet::{Supernet, SupernetTrainer, TrainConfig, TrainedAccuracy};
use hsconas_tensor::rng::SmallRng;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Tiny space + synthetic data: small enough to train in seconds.
    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, 11);

    // 2. Train the supernet with uniform single-path sampling.
    let mut rng = SmallRng::new(0);
    let net = Supernet::build(space.skeleton(), &mut rng)?;
    let mut trainer = SupernetTrainer::new(net, TrainConfig::synthetic_full());
    println!(
        "training supernet ({} params)...",
        trainer.supernet_mut().param_count()
    );
    trainer.train(&space, &data, &mut rng)?;
    let last_loss = trainer.history().last().map(|r| r.loss).unwrap_or(f32::NAN);
    println!("final training loss: {last_loss:.3}");

    // 3. Wrap it as an accuracy oracle (inherited-weight evaluation).
    let oracle = TrainedAccuracy::new(trainer, data, 4);

    // 4. Latency comes from the usual predictor — here we pretend the tiny
    //    network deploys to the edge device with a 20 ms budget.
    let mut search_rng = StdRng::seed_from_u64(3);
    let predictor =
        LatencyPredictor::calibrate(DeviceSpec::edge_xavier(), &space, 30, 3, &mut search_rng)?;
    let target_ms = 20.0;
    let mut objective = TradeoffObjective::new(
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        target_ms,
        -20.0,
    );

    // 5. Evolutionary search over the trained supernet.
    let config = EvolutionConfig {
        generations: 8,
        population: 12,
        parents: 4,
        ..Default::default()
    };
    let result = EvolutionSearch::new(space, config).run(&mut objective, &mut search_rng)?;
    println!("\nbest architecture: {}", result.best_arch);
    println!(
        "  real (inherited-weight) accuracy: {:.1}%",
        result.best_evaluation.accuracy
    );
    println!(
        "  predicted latency: {:.1} ms (target {target_ms} ms)",
        result.best_evaluation.latency_ms
    );
    Ok(())
}
