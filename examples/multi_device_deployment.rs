//! Scenario: one model family, three deployment targets.
//!
//! A team ships the same application to a datacenter GPU (batch 32), a
//! server CPU (batch 1), and an embedded Jetson-class device (batch 16) —
//! the paper's §IV setting. This example searches one specialized
//! architecture per device and shows why specialization matters: each
//! model is measured on *all three* devices, demonstrating that the model
//! found for device X is not the best choice for device Y.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hsconas --example multi_device_deployment
//! ```

use hsconas::{search_for_device, PipelineConfig};
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = SearchSpace::hsconas_a();
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    let devices = DeviceSpec::paper_devices();
    let targets = [9.0, 24.0, 34.0]; // the paper's constraints

    // Search one architecture per target device.
    let mut found: Vec<(String, Arch)> = Vec::new();
    for (device, &target_ms) in devices.iter().zip(&targets) {
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = search_for_device(
            space.clone(),
            device.clone(),
            target_ms,
            &PipelineConfig::default(),
            &mut rng,
        )?;
        found.push((device.name.clone(), outcome.best_arch));
    }

    // Cross-evaluate: each found model on every device.
    println!(
        "{:<22} {:>7} {:>10} {:>10} {:>10}",
        "model", "top-1", "GPU(ms)", "CPU(ms)", "Edge(ms)"
    );
    for (target_name, arch) in &found {
        let net = lower_arch(space.skeleton(), arch)?;
        let lats: Vec<f64> = devices
            .iter()
            .map(|d| d.network_time_us(&net) / 1000.0)
            .collect();
        println!(
            "{:<22} {:>7.1} {:>10.1} {:>10.1} {:>10.1}",
            format!("for {target_name}"),
            oracle.top1_error(arch)?,
            lats[0],
            lats[1],
            lats[2]
        );
    }
    println!(
        "\nconstraints were GPU <= {} ms, CPU <= {} ms, Edge <= {} ms:",
        targets[0], targets[1], targets[2]
    );
    println!("each specialized model should meet its own column's constraint.");
    Ok(())
}
