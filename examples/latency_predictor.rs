//! Scenario: use the hardware performance model (Eq. 2-3) standalone.
//!
//! A performance engineer wants cheap latency estimates for candidate
//! networks without touching the device for every query: profile the
//! operator LUT once, calibrate the communication bias B from a handful
//! of end-to-end measurements, then predict any architecture in
//! microseconds of CPU time. This example calibrates a predictor per
//! device, validates it against fresh simulated measurements, and
//! compares specific architectures.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hsconas --example latency_predictor
//! ```

use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_latency::LatencyPredictor;
use hsconas_space::{Arch, ChannelScale, Gene, OpKind, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = SearchSpace::hsconas_a();
    let mut rng = StdRng::seed_from_u64(1);

    for device in DeviceSpec::paper_devices() {
        // Calibrate: M = 100 sampled archs, 5 measurement repeats each.
        let predictor = LatencyPredictor::calibrate(device.clone(), &space, 100, 5, &mut rng)?;
        let report = predictor.validate(&space, 100, 5, &mut rng)?;
        println!(
            "{:<16} bias B = {:>6.2} ms   validation RMSE = {:.3} ms  (r = {:.4})",
            device.name,
            predictor.bias_us() / 1000.0,
            report.rmse_ms,
            report.pearson
        );

        // Compare three hand-built candidates on this device.
        let widest = Arch::widest(20);
        let mut narrow = widest.clone();
        let mut big_kernels = widest.clone();
        for l in 0..20 {
            narrow.set_gene(
                l,
                Gene::new(
                    OpKind::Shuffle3,
                    ChannelScale::from_tenths(5).expect("valid"),
                ),
            )?;
            big_kernels.set_gene(l, Gene::new(OpKind::Shuffle7, ChannelScale::FULL))?;
        }
        for (name, arch) in [
            ("widest (k3, c=1.0)", &widest),
            ("narrow (k3, c=0.5)", &narrow),
            ("big kernels (k7)", &big_kernels),
        ] {
            let predicted = predictor.predict_ms(arch)?;
            let net = lower_arch(space.skeleton(), arch)?;
            let measured = device.measure_network_mean(&net, 5, &mut rng) / 1000.0;
            println!(
                "    {:<20} predicted {:>6.1} ms   measured {:>6.1} ms",
                name, predicted, measured
            );
        }
    }
    Ok(())
}
