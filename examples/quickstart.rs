//! Quickstart: search a hardware-aware architecture for the edge device
//! under the paper's 34 ms latency constraint, then report what was found.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hsconas --example quickstart
//! ```

use hsconas::{search_for_device, PipelineConfig};
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_hwsim::DeviceSpec;
use hsconas_space::SearchSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. The paper's search space: 20 layers x 5 operators x 10 channel
    //    scaling factors (|A| ~ 9.5e33).
    let space = SearchSpace::hsconas_a();
    println!(
        "search space: 10^{:.1} architectures over {} layers",
        space.log10_size(),
        space.num_layers()
    );

    // 2. Target hardware: the simulated Jetson-Xavier-class edge device.
    let device = DeviceSpec::edge_xavier();
    let target_ms = 34.0;

    // 3. Run the full pipeline: latency-model calibration, progressive
    //    space shrinking, evolutionary search.
    let outcome = search_for_device(
        space.clone(),
        device,
        target_ms,
        &PipelineConfig::default(),
        &mut rng,
    )?;

    // 4. Inspect the result.
    let oracle = SurrogateAccuracy::new(space.skeleton().clone());
    println!("\ndiscovered architecture:");
    println!("  {}", outcome.best_arch);
    println!(
        "  top-1 error : {:.1}%",
        oracle.top1_error(&outcome.best_arch)?
    );
    println!(
        "  latency     : {:.1} ms (target {target_ms} ms)",
        outcome.best.latency_ms
    );
    println!("  objective F : {:.2}", outcome.best.score);
    println!(
        "  latency bias B used by the predictor: {:.2} ms",
        outcome.latency_bias_us / 1000.0
    );
    if let Some(shrink) = &outcome.shrink {
        println!(
            "  space shrunk from 10^{:.1} to 10^{:.1} before the EA",
            shrink
                .stages
                .first()
                .map(|s| s.log10_size_before)
                .unwrap_or(0.0),
            shrink.space.log10_size()
        );
    }
    Ok(())
}
