//! Allocation-regression gate: a steady-state (arena-warm) eval-mode
//! subnet forward must perform O(1) heap allocations, not O(layers).
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms the thread-local activation arena with two forwards, then asserts
//! the third stays under a checked-in budget. Raising `ALLOC_BUDGET`
//! requires a deliberate decision — it is the contract the arena work
//! established. The whole file is its own test target so the counting
//! allocator cannot perturb any other test binary, and the measured
//! forward is pinned to one thread (worker threads would allocate from
//! their own cold arenas).

use hsconas_space::Arch;
use hsconas_space::SearchSpace;
use hsconas_supernet::Supernet;
use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes the tests in this binary: they all read deltas of the one
/// global allocation counter, so concurrent runs would inflate each other.
static SERIAL: Mutex<()> = Mutex::new(());

/// Maximum heap allocations one steady-state eval forward may perform.
/// Measured: 4 on a warm arena (vs 12 cold) for the 4-layer tiny supernet;
/// the slack absorbs bookkeeping noise without letting an O(layers)
/// regression through.
const ALLOC_BUDGET: u64 = 16;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter is the only addition.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_forward_allocations_stay_in_budget() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Keep everything on this thread so the warm arena is the one used.
    hsconas_par::set_default_threads(1);
    let space = SearchSpace::tiny(4);
    let mut rng = SmallRng::new(1);
    let mut net = Supernet::build(space.skeleton(), &mut rng).unwrap();
    let x = Tensor::randn([8, 3, 32, 32], 1.0, &mut rng);
    let arch = Arch::widest(4);

    // Warm-up: populate the arena with every liveness slot the forward
    // needs (two passes so late-freed buffers from pass one are pooled).
    let cold_start = ALLOCS.load(Ordering::Relaxed);
    net.forward(&x, &arch, false).unwrap();
    let cold = ALLOCS.load(Ordering::Relaxed) - cold_start;
    net.forward(&x, &arch, false).unwrap();

    let warm_start = ALLOCS.load(Ordering::Relaxed);
    net.forward(&x, &arch, false).unwrap();
    let warm = ALLOCS.load(Ordering::Relaxed) - warm_start;

    assert!(
        warm <= ALLOC_BUDGET,
        "steady-state forward performed {warm} heap allocations \
         (budget {ALLOC_BUDGET}, cold run {cold}); the activation arena \
         has regressed"
    );
    // Sanity: the gate is actually measuring something — a cold forward
    // allocates far more than a warm one.
    assert!(
        cold > warm,
        "cold forward ({cold}) should out-allocate warm forward ({warm})"
    );
}

/// Maximum heap allocations one steady-state *tagged* GEMM may perform.
/// A pack-cache hit is an `Arc` clone and the activation pack reuses the
/// scratch arena, so the warm path is allocation-free; the slack absorbs
/// allocator bookkeeping noise only.
const TAGGED_GEMM_BUDGET: u64 = 4;

/// The pack-cache hit path must be O(1) allocations too: after the first
/// (miss) call packs the weight into the persistent cache and warms the
/// scratch arena, repeat calls on the same weight generation allocate
/// nothing. The tiny-supernet gate above routes its small GEMMs through
/// the direct kernel, so this measures the packed path explicitly.
#[test]
fn warm_tagged_gemm_allocations_stay_in_budget() {
    use hsconas_tensor::kernels::cache::{self, PackTag};
    use hsconas_tensor::kernels::{gemm_ext, GemmTags, Op, Variant};

    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (m, k, n) = (96, 128, 160);
    let mut rng = SmallRng::new(9);
    let a: Vec<f32> = (0..m * k).map(|_| rng.next_f32() - 0.5).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.next_f32() - 0.5).collect();
    let mut c = vec![0.0f32; m * n];
    let tags = GemmTags::a_tag(PackTag {
        id: u64::MAX - 50,
        version: 1,
        offset: 0,
        mask_sig: 0,
    });
    cache::set_enabled(true);

    // Warm-up: first call misses the pack cache (allocates the panel
    // buffer) and sizes the thread-local scratch arena.
    let run = |c: &mut [f32]| {
        #[rustfmt::skip]
        gemm_ext(Variant::Scalar, 1, Op::Ab, &a, &b, c, m, k, n, false, tags);
    };
    let cold_start = ALLOCS.load(Ordering::Relaxed);
    run(&mut c);
    let cold = ALLOCS.load(Ordering::Relaxed) - cold_start;
    run(&mut c);

    let warm_start = ALLOCS.load(Ordering::Relaxed);
    run(&mut c);
    let warm = ALLOCS.load(Ordering::Relaxed) - warm_start;

    assert!(
        warm <= TAGGED_GEMM_BUDGET,
        "steady-state tagged GEMM performed {warm} heap allocations \
         (budget {TAGGED_GEMM_BUDGET}, cold run {cold}); the pack-cache \
         hit path has regressed"
    );
    assert!(
        cold > warm,
        "cold tagged GEMM ({cold}) should out-allocate warm ({warm})"
    );
}
