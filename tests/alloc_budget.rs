//! Allocation-regression gate: a steady-state (arena-warm) eval-mode
//! subnet forward must perform O(1) heap allocations, not O(layers).
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms the thread-local activation arena with two forwards, then asserts
//! the third stays under a checked-in budget. Raising `ALLOC_BUDGET`
//! requires a deliberate decision — it is the contract the arena work
//! established. The whole file is its own test target so the counting
//! allocator cannot perturb any other test binary, and the measured
//! forward is pinned to one thread (worker threads would allocate from
//! their own cold arenas).

use hsconas_space::Arch;
use hsconas_space::SearchSpace;
use hsconas_supernet::Supernet;
use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum heap allocations one steady-state eval forward may perform.
/// Measured: 4 on a warm arena (vs 12 cold) for the 4-layer tiny supernet;
/// the slack absorbs bookkeeping noise without letting an O(layers)
/// regression through.
const ALLOC_BUDGET: u64 = 16;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter is the only addition.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_forward_allocations_stay_in_budget() {
    // Keep everything on this thread so the warm arena is the one used.
    hsconas_par::set_default_threads(1);
    let space = SearchSpace::tiny(4);
    let mut rng = SmallRng::new(1);
    let mut net = Supernet::build(space.skeleton(), &mut rng).unwrap();
    let x = Tensor::randn([8, 3, 32, 32], 1.0, &mut rng);
    let arch = Arch::widest(4);

    // Warm-up: populate the arena with every liveness slot the forward
    // needs (two passes so late-freed buffers from pass one are pooled).
    let cold_start = ALLOCS.load(Ordering::Relaxed);
    net.forward(&x, &arch, false).unwrap();
    let cold = ALLOCS.load(Ordering::Relaxed) - cold_start;
    net.forward(&x, &arch, false).unwrap();

    let warm_start = ALLOCS.load(Ordering::Relaxed);
    net.forward(&x, &arch, false).unwrap();
    let warm = ALLOCS.load(Ordering::Relaxed) - warm_start;

    assert!(
        warm <= ALLOC_BUDGET,
        "steady-state forward performed {warm} heap allocations \
         (budget {ALLOC_BUDGET}, cold run {cold}); the activation arena \
         has regressed"
    );
    // Sanity: the gate is actually measuring something — a cold forward
    // allocates far more than a warm one.
    assert!(
        cold > warm,
        "cold forward ({cold}) should out-allocate warm forward ({warm})"
    );
}
