//! End-to-end contract tests for the persistent packed-weight cache
//! (DESIGN.md §11): real `Linear`/`Conv2d` layers tag their weight
//! operands, so steady-state forwards must *hit* the cache, optimizer-style
//! weight updates must *invalidate* it (the layer keeps producing results
//! bitwise identical to a cache-disabled run), and cloned layers must not
//! alias each other's panels.
//!
//! The cache and its counters are process-global; the tests in this binary
//! serialize on one mutex so concurrent test threads cannot read each
//! other's counter deltas.

use hsconas_nn::{Conv2d, Layer, Linear};
use hsconas_tensor::kernels::cache;
use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::Tensor;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// Forward `layer` on `x` with the pack cache forced off, restoring the
/// enabled state afterwards — the uncached reference for bitwise checks.
fn forward_uncached(layer: &mut dyn Layer, x: &Tensor) -> Tensor {
    let was = cache::is_enabled();
    cache::set_enabled(false);
    let y = layer.forward(x, false).unwrap();
    cache::set_enabled(was);
    y
}

/// Steady-state population evaluation: repeat forwards on an unchanged
/// weight hit the cache (the ≥90 % steady-state hit-rate budget in the
/// bench gate starts here) and stay bitwise stable.
#[test]
fn linear_steady_state_forwards_hit_the_cache() {
    let _g = lock();
    cache::set_enabled(true);
    let mut rng = SmallRng::new(41);
    // 32×256·Wᵀ(256×512) is Panel-class: the packed path, not direct.
    let mut fc = Linear::new(256, 512, &mut rng);
    let x = Tensor::randn([32, 256, 1, 1], 1.0, &mut rng);

    let first = fc.forward(&x, false).unwrap();
    let before = cache::stats();
    let mut hits = 0u64;
    for _ in 0..4 {
        let y = fc.forward(&x, false).unwrap();
        assert_eq!(bits(&first), bits(&y), "repeat forward changed bytes");
    }
    let after = cache::stats();
    hits += after.hits - before.hits;
    assert!(
        hits >= 4,
        "4 steady-state forwards produced only {hits} pack-cache hits"
    );
    assert_eq!(bits(&first), bits(&forward_uncached(&mut fc, &x)));
}

/// An optimizer step (any `&mut` access to the weight buffer) must
/// invalidate the cached panels: the next forward matches a cache-disabled
/// run bitwise and the invalidation counter moves.
#[test]
fn linear_weight_update_invalidates_cached_panels() {
    let _g = lock();
    cache::set_enabled(true);
    let mut rng = SmallRng::new(42);
    let mut fc = Linear::new(256, 512, &mut rng);
    let x = Tensor::randn([32, 256, 1, 1], 1.0, &mut rng);

    // Populate the cache with the generation-0 panels.
    fc.forward(&x, false).unwrap();

    // SGD-style update through the same visitor the real optimizer uses.
    fc.visit_params(&mut |p, _, decay| {
        if decay {
            for w in p.data_mut() {
                *w = 0.9 * *w + 0.01;
            }
        }
    });

    let before = cache::stats();
    let got = fc.forward(&x, false).unwrap();
    let after = cache::stats();
    assert!(
        after.invalidations > before.invalidations,
        "weight update did not invalidate the cached panels"
    );
    assert_eq!(
        bits(&got),
        bits(&forward_uncached(&mut fc, &x)),
        "post-update forward diverged from the uncached reference"
    );
}

/// The conv path (weight as the `a'` operand of `W·col`, including the
/// 1×1 fast path that skips im2col) obeys the same invalidation contract.
#[test]
fn conv_weight_update_invalidates_cached_panels() {
    let _g = lock();
    cache::set_enabled(true);
    let mut rng = SmallRng::new(43);
    // Pointwise 64→128 on a 16×16 plane: a Square-class packed GEMM.
    let mut conv = Conv2d::pointwise(64, 128, &mut rng);
    let x = Tensor::randn([2, 64, 16, 16], 1.0, &mut rng);

    let first = conv.forward(&x, false).unwrap();
    assert_eq!(bits(&first), bits(&conv.forward(&x, false).unwrap()));

    conv.visit_params(&mut |p, _, _| {
        for w in p.data_mut() {
            *w *= 1.25;
        }
    });

    let before = cache::stats();
    let got = conv.forward(&x, false).unwrap();
    let after = cache::stats();
    assert!(
        after.invalidations > before.invalidations,
        "conv weight update did not invalidate the cached panels"
    );
    assert_eq!(
        bits(&got),
        bits(&forward_uncached(&mut conv, &x)),
        "post-update conv forward diverged from the uncached reference"
    );
}

/// Pins the identity contract the cache doc (`kernels/cache.rs`) promises:
/// `Tensor::clone` always takes a fresh id and restarts at version 0, even
/// though the cloned bytes are identical. Aliasing the id would let a
/// `&mut` mutation of one lineage serve stale panels to the other, so any
/// future "optimization" that shares ids across clones must fail here.
#[test]
fn clone_takes_fresh_pack_identity() {
    let mut rng = SmallRng::new(9);
    let mut t = Tensor::randn([4, 4, 1, 1], 1.0, &mut rng);
    for d in t.data_mut() {
        *d += 0.0; // bump the version so the clone's reset is observable
    }
    let twin = t.clone();
    assert_eq!(t.data(), twin.data(), "clone must copy the bytes verbatim");
    assert_ne!(
        t.pack_tag().id,
        twin.pack_tag().id,
        "a clone aliasing its source's id breaks cache invalidation"
    );
    assert_eq!(twin.pack_tag().version, 0, "clones restart their lineage");
    assert!(t.pack_tag().version > 0, "source kept its mutation history");
}

/// Cloned layers are distinct cache citizens: mutating the clone's weight
/// must not invalidate (or corrupt) the original's panels — `Tensor::clone`
/// assigns a fresh identity.
#[test]
fn cloned_layer_does_not_alias_the_originals_panels() {
    let _g = lock();
    cache::set_enabled(true);
    let mut rng = SmallRng::new(44);
    let mut fc = Linear::new(256, 512, &mut rng);
    let x = Tensor::randn([32, 256, 1, 1], 1.0, &mut rng);
    let want = bits(&fc.forward(&x, false).unwrap());

    let mut twin = fc.clone();
    twin.visit_params(&mut |p, _, decay| {
        if decay {
            for w in p.data_mut() {
                *w = -*w;
            }
        }
    });
    let twin_out = twin.forward(&x, false).unwrap();
    assert_ne!(want, bits(&twin_out), "twin mutation had no effect");

    // The original still serves its own (unchanged) generation.
    assert_eq!(
        want,
        bits(&fc.forward(&x, false).unwrap()),
        "mutating a clone corrupted the original's cached panels"
    );
}
