//! Black-box fleet suite: the routed worker fleet must be
//! indistinguishable from a single daemon on the wire. Covers the three
//! acceptance properties of the fleet soak: bit-identity across worker
//! counts, fail-then-recover isolation when one worker dies, and exact
//! request accounting (`served + overloaded == sent`) under flood with a
//! deliberately slowed shard.

#[path = "serve_harness.rs"]
mod harness;

use harness::{raw_call, widest_arch_encoding, ServerGuard};
use hsconas_serve::proto::{Response, CODE_OK, CODE_OVERLOADED, CODE_SHUTTING_DOWN};
use hsconas_serve::router::{device_target_key, HashRing, VNODES_PER_SHARD};
use hsconas_serve::Json;
use std::time::{Duration, Instant};

/// The fixed request lines every topology must answer byte-for-byte
/// identically. Ends with an unknown-device line: errors route to the
/// owning shard too, so even failure bytes match the single daemon.
fn fixed_request_lines() -> Vec<String> {
    let arch = Json::Arr(
        widest_arch_encoding()
            .into_iter()
            .map(|g| Json::Num(g as f64))
            .collect(),
    )
    .encode();
    vec![
        format!(r#"{{"v":1,"id":"p1","cmd":"predict_latency","device":"edge","arch":{arch}}}"#),
        format!(
            r#"{{"v":1,"id":"s1","cmd":"score","device":"edge","target_ms":34,"arch":{arch}}}"#
        ),
        r#"{"v":1,"id":"q1","cmd":"search","device":"edge","target_ms":34,"seed":11}"#.to_string(),
        // The infer skeleton is the 4-layer tiny space, not the 20-layer
        // served search space — [op, scale] x 4.
        r#"{"v":1,"id":"i1","cmd":"infer","arch":[0,9,0,9,0,9,0,9],"input_seed":3,"batch":2}"#
            .to_string(),
        r#"{"v":1,"id":"u1","cmd":"search","device":"tpu","target_ms":5,"seed":0}"#.to_string(),
    ]
}

/// Sends every fixed line over one connection and returns the raw reply
/// lines, then drains the server via protocol shutdown.
fn replies_from(server: ServerGuard, lines: &[String]) -> Vec<String> {
    let mut stream = server.connect();
    let replies = lines.iter().map(|l| raw_call(&mut stream, l)).collect();
    drop(stream);
    server.shutdown_and_wait(Duration::from_secs(30));
    replies
}

/// Acceptance (b): the router in front of 1 and 3 workers serves the
/// exact bytes the single daemon serves — the fleet is invisible.
#[test]
fn fleet_matches_single_daemon_byte_for_byte() {
    let lines = fixed_request_lines();
    let single = replies_from(ServerGuard::spawn(&["--devices", "edge"]), &lines);
    for reply in &single {
        let response = Response::decode(reply.as_bytes()).expect("decodable");
        assert!(
            response.code == CODE_OK || response.id == "u1",
            "unexpected failure from single daemon: {reply}"
        );
    }
    for workers in ["1", "3"] {
        let routed = replies_from(
            ServerGuard::spawn_raw(&["--port", "0", "--fleet", workers, "--devices", "edge"]),
            &lines,
        );
        assert_eq!(
            routed, single,
            "fleet of {workers} must serve the single daemon's exact bytes"
        );
    }
}

/// Finds a `(device_target_key)`-routed target for each of two shards so
/// the failover test can address shards deterministically from outside.
fn targets_for_both_shards() -> (f64, f64) {
    let ring = HashRing::new(2, VNODES_PER_SHARD);
    let target_on = |shard: usize| {
        (1..10_000)
            .map(|t| t as f64)
            .find(|t| ring.shard_for(device_target_key("edge", *t)) == shard)
            .expect("some small integer target routes to each of 2 shards")
    };
    (target_on(0), target_on(1))
}

fn score_line(target_ms: f64) -> String {
    let arch = Json::Arr(
        widest_arch_encoding()
            .into_iter()
            .map(|g| Json::Num(g as f64))
            .collect(),
    )
    .encode();
    format!(
        r#"{{"v":1,"id":"f{target_ms}","cmd":"score","device":"edge","target_ms":{target_ms},"arch":{arch}}}"#
    )
}

/// Acceptance (c): killing one worker mid-run yields clean 503s for its
/// key range only — the surviving shard keeps serving, nothing hangs —
/// and a restart on the same port restores the dead range bit-exactly.
#[test]
fn killing_one_worker_fails_only_its_key_range_until_restart() {
    let mut worker_a = ServerGuard::spawn(&["--devices", "edge"]);
    let worker_b = ServerGuard::spawn(&["--devices", "edge"]);
    // Attach mode, health probing off: the only router->worker sockets are
    // the ones our own requests open, so the test controls close ordering
    // (and the restarted worker can re-bind its port promptly).
    let shard_list = format!("{},{}", worker_a.addr, worker_b.addr);
    let router =
        ServerGuard::spawn_raw(&["--port", "0", "--workers", &shard_list, "--health-ms", "0"]);
    let (target_a, target_b) = targets_for_both_shards();

    // Pre-kill baseline through the router; shard A's reply is the byte
    // string the restarted worker must reproduce.
    let mut stream = router.connect();
    let baseline_a = raw_call(&mut stream, &score_line(target_a));
    let baseline_b = raw_call(&mut stream, &score_line(target_b));
    for reply in [&baseline_a, &baseline_b] {
        assert_eq!(
            Response::decode(reply.as_bytes()).expect("decodable").code,
            CODE_OK,
            "{reply}"
        );
    }
    // Close our connection so the router (not the doomed worker) is the
    // side that owns the pooled-socket teardown.
    drop(stream);
    std::thread::sleep(Duration::from_millis(100));

    let port_a = worker_a.addr.rsplit(':').next().expect("port").to_string();
    worker_a.kill_now();

    // Shard A's key range answers 503 naming the shard; shard B is
    // untouched — same connection, no hangs, no crosstalk.
    let mut stream = router.connect();
    for _ in 0..3 {
        let down = raw_call(&mut stream, &score_line(target_a));
        let response = Response::decode(down.as_bytes()).expect("decodable");
        assert_eq!(response.code, CODE_SHUTTING_DOWN, "{down}");
        assert!(
            response.error.unwrap_or_default().contains("shard 0"),
            "503 must name the dead shard: {down}"
        );
        let up = raw_call(&mut stream, &score_line(target_b));
        assert_eq!(up, baseline_b, "surviving shard must be unaffected");
    }

    // Restart on the same port (retrying while the OS releases it). The
    // router reconnects on the next attempt and the range comes back with
    // the exact pre-kill bytes.
    let restart_args = ["--port", &port_a, "--devices", "edge"];
    let deadline = Instant::now() + Duration::from_secs(90);
    let worker_a2 = loop {
        match ServerGuard::try_spawn_raw(&restart_args) {
            Ok(guard) => break guard,
            Err(e) if Instant::now() < deadline => {
                eprintln!("restart pending: {e}");
                std::thread::sleep(Duration::from_millis(500));
            }
            Err(e) => panic!("could not re-bind worker port {port_a}: {e}"),
        }
    };
    let recovered = raw_call(&mut stream, &score_line(target_a));
    assert_eq!(
        recovered, baseline_a,
        "restarted shard must serve identical bytes"
    );
    drop(stream);

    // Attach mode without --drain-workers: draining the router leaves the
    // externally owned workers running.
    router.shutdown_and_wait(Duration::from_secs(30));
    for mut worker in [worker_a2, worker_b] {
        assert!(
            worker.is_running(),
            "router drain must not touch attached workers"
        );
        worker.shutdown_and_wait(Duration::from_secs(30));
    }
}

/// Acceptance (a): under flood with one shard artificially slowed and
/// nearly queue-less, every request is accounted for exactly once —
/// client-observed 200s and 429s match the aggregated fleet counters and
/// `served + overloaded == sent`.
#[test]
fn flooded_fleet_accounts_for_every_request() {
    let worker_fast = ServerGuard::spawn(&["--devices", "edge"]);
    let worker_slow = ServerGuard::spawn(&[
        "--devices",
        "edge",
        "--test-slow-eval-ms",
        "40",
        "--queue-cap",
        "2",
        "--eval-workers",
        "1",
        "--batch-max",
        "1",
    ]);
    let shard_list = format!("{},{}", worker_fast.addr, worker_slow.addr);
    let router = ServerGuard::spawn_raw(&["--port", "0", "--workers", &shard_list]);

    // Warm the device on both shards so the flood measures queueing, not
    // first-touch calibration.
    let (target_a, target_b) = targets_for_both_shards();
    let mut warm = router.connect();
    for t in [target_a, target_b] {
        let reply = raw_call(&mut warm, &score_line(t));
        assert_eq!(
            Response::decode(reply.as_bytes()).expect("decodable").code,
            CODE_OK,
            "{reply}"
        );
    }
    drop(warm);

    // Flood: 6 clients x 20 scores over distinct fresh targets (distinct
    // keys spread over both shards and defeat the eval memo).
    let threads = 6usize;
    let per_thread = 20usize;
    let (mut oks, mut overloaded) = (0u64, 0u64);
    let outcomes: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let router = &router;
        (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut stream = router.connect();
                    let (mut ok, mut over) = (0u64, 0u64);
                    for i in 0..per_thread {
                        let target = 20_000.0 + (t * per_thread + i) as f64;
                        let reply = raw_call(&mut stream, &score_line(target));
                        let response = Response::decode(reply.as_bytes()).expect("decodable");
                        match response.code {
                            CODE_OK => ok += 1,
                            CODE_OVERLOADED => over += 1,
                            code => panic!("unexpected code {code} under flood: {reply}"),
                        }
                    }
                    (ok, over)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for (ok, over) in outcomes {
        oks += ok;
        overloaded += over;
    }
    let sent = (threads * per_thread) as u64;
    assert_eq!(oks + overloaded, sent, "every request must be answered");
    assert!(
        overloaded > 0,
        "the slowed queue-capped shard must shed some load"
    );

    // The aggregated fleet status must agree with the client-side tally:
    // +2 served scores from the warm-up, zero router-level failures.
    let status = raw_call(
        &mut router.connect(),
        r#"{"v":1,"id":"acct","cmd":"status"}"#,
    );
    let response = Response::decode(status.as_bytes()).expect("decodable status");
    assert_eq!(response.code, CODE_OK, "{status}");
    let result = response.result.expect("status result");
    let fleet = result.get("fleet").expect("fleet block");
    let served_score = fleet
        .get("served")
        .and_then(|s| s.get("score"))
        .and_then(Json::as_u64)
        .expect("fleet.served.score");
    let rejected_overloaded = fleet
        .get("rejected")
        .and_then(|r| r.get("overloaded"))
        .and_then(Json::as_u64)
        .expect("fleet.rejected.overloaded");
    assert_eq!(served_score, oks + 2, "fleet served must match client 200s");
    assert_eq!(
        rejected_overloaded, overloaded,
        "fleet overloaded must match client 429s"
    );
    let router_stats = result.get("router").expect("router block");
    assert_eq!(
        router_stats.get("failed").and_then(Json::as_u64),
        Some(0),
        "no request may fall through the retry path in a healthy fleet"
    );

    router.shutdown_and_wait(Duration::from_secs(30));
    for worker in [worker_fast, worker_slow] {
        worker.shutdown_and_wait(Duration::from_secs(30));
    }
}
