//! Integration: the Table I report pipeline across baselines, devices,
//! the accuracy oracle, and the search.

use hsconas::report::{baseline_rows, hsconet_rows};
use hsconas::{render_table, PipelineConfig, TableGroup};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn baselines_preserve_published_error_ordering() {
    let rows = baseline_rows();
    let err = |name: &str| {
        rows.iter()
            .find(|r| r.name.contains(name))
            .unwrap()
            .top1_error
    };
    // published ordering spot checks
    assert!(err("MobileNetV2") > err("MobileNetV3"));
    assert!(err("DARTS") > err("MnasNet"));
    assert!(err("FBNet-A") > err("FBNet-B"));
    assert!(err("FBNet-B") > err("FBNet-C"));
}

#[test]
fn hsconet_rows_target_their_devices() {
    let mut rng = StdRng::seed_from_u64(77);
    let rows = hsconet_rows(&PipelineConfig::fast_test(), &mut rng).unwrap();
    assert_eq!(rows.len(), 6);
    let constraint = |name: &str| -> (usize, f64) {
        // which latency column is constrained, and to what
        if name.contains("GPU") {
            (0, if name.ends_with("A") { 9.0 } else { 12.0 })
        } else if name.contains("CPU") {
            (1, if name.ends_with("A") { 24.0 } else { 26.4 })
        } else {
            (2, if name.ends_with("A") { 34.0 } else { 52.7 })
        }
    };
    for row in &rows {
        assert_eq!(row.group, TableGroup::Hsconas);
        let (col, target) = constraint(&row.name);
        assert!(
            row.latency_ms[col] <= target * 1.2,
            "{}: {} ms vs target {} ms",
            row.name,
            row.latency_ms[col],
            target
        );
        assert!(row.top5_error.is_some());
    }
    // B-family models must reach lower error than their A counterparts
    let err = |name: &str| rows.iter().find(|r| r.name == name).unwrap().top1_error;
    for device in ["GPU", "CPU", "Edge"] {
        assert!(
            err(&format!("HSCoNet-{device}-B")) < err(&format!("HSCoNet-{device}-A")),
            "{device}: B should beat A"
        );
    }
}

#[test]
fn rendered_table_is_complete() {
    let mut rng = StdRng::seed_from_u64(78);
    let mut rows = baseline_rows();
    rows.extend(hsconet_rows(&PipelineConfig::fast_test(), &mut rng).unwrap());
    let text = render_table(&rows);
    for name in [
        "MobileNetV2",
        "ShuffleNetV2",
        "MobileNetV3",
        "DARTS",
        "MnasNet-A1",
        "FBNet-A",
        "FBNet-B",
        "FBNet-C",
        "ProxylessNAS-GPU",
        "ProxylessNAS-CPU",
        "ProxylessNAS-Mobile",
        "HSCoNet-GPU-A",
        "HSCoNet-CPU-A",
        "HSCoNet-Edge-A",
        "HSCoNet-GPU-B",
        "HSCoNet-CPU-B",
        "HSCoNet-Edge-B",
    ] {
        assert!(text.contains(name), "missing {name}");
    }
    assert_eq!(text.lines().count(), 17 + 3 + 1); // rows + section headers + column header
}
