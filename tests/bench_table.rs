//! Precomputed `.hsbt` bench-table contract: the offline `hsconas
//! bench-table` builder is deterministic and its artifact round-trips
//! bit-exactly; corrupt, truncated, or foreign-version tables are
//! rejected loudly (at load and at server startup); and for every covered
//! architecture the serve fast path answers `predict_latency` and `score`
//! byte-identically to live evaluation, while uncovered architectures
//! fall through to the live path without error.

#[path = "serve_harness.rs"]
mod harness;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use harness::{raw_call, widest_arch_encoding, ServerGuard};
use hsconas_serve::router::arch_route_key;
use hsconas_serve::{BenchTable, Json, ServeOptions, Server};
use hsconas_space::SearchSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A scratch directory, unique per test, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hsbt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Runs the real `hsconas bench-table` binary into `out`.
fn build_table(out: &Path, devices: &str, samples: usize, seed: u64) {
    let output = Command::new(env!("CARGO_BIN_EXE_hsconas"))
        .args([
            "bench-table",
            "--out",
            out.to_str().expect("utf8 path"),
            "--devices",
            devices,
            "--samples",
            &samples.to_string(),
            "--seed",
            &seed.to_string(),
        ])
        .output()
        .expect("run hsconas bench-table");
    assert!(
        output.status.success(),
        "bench-table failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

/// The arch sample the builder drew: same space, same seed, same order.
fn rederive_sample(samples: usize, seed: u64) -> Vec<Vec<usize>> {
    let space = SearchSpace::hsconas_a();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    space
        .sample_n(samples, &mut rng)
        .into_iter()
        .map(|arch| arch.encode())
        .filter(|encoded| seen.insert(arch_route_key(encoded)))
        .collect()
}

fn encode_json(encoded: &[usize]) -> String {
    let genes: Vec<String> = encoded.iter().map(|g| g.to_string()).collect();
    format!("[{}]", genes.join(","))
}

#[test]
fn cli_builder_is_deterministic_and_roundtrips_bit_exactly() {
    let dir = ScratchDir::new("roundtrip");
    let (a, b) = (dir.path().join("a.hsbt"), dir.path().join("b.hsbt"));
    build_table(&a, "edge,gpu,cpu", 16, 7);
    build_table(&b, "cpu,edge,gpu,edge", 16, 7); // permuted + duplicated

    let bytes = fs::read(&a).expect("read table");
    assert_eq!(
        bytes,
        fs::read(&b).expect("read table"),
        "builder output must be deterministic and device-order independent"
    );

    let table = BenchTable::load(&a).expect("load table");
    assert_eq!(table.seed, 7);
    assert_eq!(table.samples, 16);
    let names: Vec<&str> = table.devices.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["cpu-xeon-6136", "edge-xavier", "gpu-gv100"],
        "columns are canonical names, sorted, aliases deduped"
    );
    assert!(!table.is_empty());

    // The rows are exactly the (deduped) sample the builder drew.
    let expected: Vec<u64> = {
        let mut fps: Vec<u64> = rederive_sample(16, 7)
            .iter()
            .map(|e| arch_route_key(e))
            .collect();
        fps.sort_unstable();
        fps
    };
    assert_eq!(table.fingerprints(), expected);
    for fp in table.fingerprints() {
        let entry = table.get(fp).expect("covered row");
        assert_eq!(entry.latencies_ms.len(), 3, "one latency per column");
        assert!(entry.accuracy.is_finite());
        assert!(entry.latencies_ms.iter().all(|l| l.is_finite() && *l > 0.0));
    }

    // Save → load → save is byte-stable.
    let resaved = dir.path().join("resaved.hsbt");
    table.save(&resaved).expect("resave");
    assert_eq!(bytes, fs::read(&resaved).expect("read resaved"));
    assert_eq!(BenchTable::load(&resaved).expect("reload"), table);
}

#[test]
fn malformed_tables_are_rejected_loudly_at_load_and_at_startup() {
    let dir = ScratchDir::new("reject");
    let good_path = dir.path().join("good.hsbt");
    build_table(&good_path, "edge", 4, 3);
    let good = fs::read(&good_path).expect("read table");
    BenchTable::load(&good_path).expect("pristine table loads");

    let tampered: Vec<(&str, Vec<u8>, &str)> = vec![
        ("short-header", good[..10].to_vec(), "header"),
        (
            "bad-magic",
            {
                let mut b = good.clone();
                b[0] ^= 0xff;
                b
            },
            "magic",
        ),
        (
            "foreign-version",
            {
                let mut b = good.clone();
                b[4] = 99;
                b
            },
            "version",
        ),
        ("truncated", good[..good.len() - 3].to_vec(), "truncated"),
        (
            "padded",
            {
                let mut b = good.clone();
                b.push(0);
                b
            },
            "truncated or padded",
        ),
        (
            "bit-flip",
            {
                let mut b = good.clone();
                let last = b.len() - 1;
                b[last] ^= 0x01;
                b
            },
            "checksum",
        ),
    ];
    for (tag, bytes, needle) in tampered {
        let path = dir.path().join(format!("{tag}.hsbt"));
        fs::write(&path, &bytes).expect("write tampered table");

        // Load rejects, naming the file and the defect.
        let err = BenchTable::load(&path).expect_err(tag);
        assert!(
            err.contains("invalid bench table") && err.contains(needle),
            "{tag}: expected '{needle}' in: {err}"
        );

        // Server startup rejects the same way — a corrupt table is a loud
        // startup error, never mistaken for "no coverage".
        let options = ServeOptions {
            bench_table: Some(path),
            ..ServeOptions::default()
        };
        let bind_err = match Server::bind(options) {
            Ok(_) => panic!("{tag}: server started from a malformed table"),
            Err(e) => e,
        };
        assert_eq!(bind_err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(
            bind_err.to_string().contains(needle),
            "{tag}: expected '{needle}' in bind error: {bind_err}"
        );
    }
}

#[test]
fn table_hits_answer_byte_identically_to_live_eval_and_misses_fall_through() {
    let dir = ScratchDir::new("serve");
    let table_path = dir.path().join("edge.hsbt");
    let (samples, seed) = (12usize, 5u64);
    build_table(&table_path, "edge", samples, seed);
    let table = BenchTable::load(&table_path).expect("load table");

    // Exhaustive covered subspace, re-derived from the builder's contract.
    let covered = rederive_sample(samples, seed);
    assert_eq!(covered.len(), table.len(), "sample re-derivation drifted");
    let widest = widest_arch_encoding();
    assert!(
        table.get(arch_route_key(&widest)).is_none(),
        "widest genome unexpectedly sampled; pick a different seed"
    );

    let table_server =
        ServerGuard::spawn(&["--bench-table", table_path.to_str().expect("utf8 path")]);
    let live_server = ServerGuard::spawn(&[]);
    let mut on_table = table_server.connect();
    let mut on_live = live_server.connect();

    // Every covered arch: predict_latency and score answers are
    // byte-identical between the table fast path and live evaluation.
    for (i, encoded) in covered.iter().enumerate() {
        let arch = encode_json(encoded);
        let predict =
            format!(r#"{{"id":"p{i}","cmd":"predict_latency","device":"edge","arch":{arch}}}"#);
        let from_table = raw_call(&mut on_table, &predict);
        assert_eq!(
            from_table,
            raw_call(&mut on_live, &predict),
            "predict_latency diverged for covered arch {i}"
        );
        assert!(from_table.contains("\"latency_ms\""), "{from_table}");

        let score = format!(
            r#"{{"id":"s{i}","cmd":"score","device":"edge","target_ms":34,"arch":{arch}}}"#
        );
        let from_table = raw_call(&mut on_table, &score);
        assert_eq!(
            from_table,
            raw_call(&mut on_live, &score),
            "score diverged for covered arch {i}"
        );
        assert!(from_table.contains("\"score\""), "{from_table}");
    }

    // Accounting: every covered request was a hit, none a miss.
    let status = table_server
        .client()
        .status()
        .expect("status")
        .result
        .expect("status result");
    let block = status.get("bench_table").expect("bench_table block");
    assert_eq!(block.get("loaded").and_then(Json::as_bool), Some(true));
    assert_eq!(
        block.get("entries").and_then(Json::as_u64),
        Some(table.len() as u64)
    );
    let hits = block.get("hits").and_then(Json::as_u64).expect("hits");
    assert_eq!(hits, 2 * covered.len() as u64, "every request was a hit");
    assert_eq!(block.get("misses").and_then(Json::as_u64), Some(0));

    // An uncovered arch falls through to live evaluation without error —
    // and still answers exactly what the table-less server answers.
    let arch = encode_json(&widest);
    for line in [
        format!(r#"{{"id":"m0","cmd":"predict_latency","device":"edge","arch":{arch}}}"#),
        format!(r#"{{"id":"m1","cmd":"score","device":"edge","target_ms":34,"arch":{arch}}}"#),
    ] {
        let from_table = raw_call(&mut on_table, &line);
        assert_eq!(from_table, raw_call(&mut on_live, &line));
        assert!(!from_table.contains("\"error\""), "{from_table}");
    }
    let status = table_server
        .client()
        .status()
        .expect("status")
        .result
        .expect("status result");
    let block = status.get("bench_table").expect("bench_table block");
    assert!(
        block.get("misses").and_then(Json::as_u64) >= Some(2),
        "uncovered requests must be counted as misses"
    );

    // The live server never had a table.
    let status = live_server
        .client()
        .status()
        .expect("status")
        .result
        .expect("status result");
    let block = status.get("bench_table").expect("bench_table block");
    assert_eq!(block.get("loaded").and_then(Json::as_bool), Some(false));

    table_server.shutdown_and_wait(Duration::from_secs(30));
    live_server.shutdown_and_wait(Duration::from_secs(30));
}
