//! Integration of the real-training substrate: tensor kernels → nn layers
//! → supernet training → inherited-weight evaluation → evolutionary
//! search, on the tiny space and synthetic dataset.

use hsconas_accuracy::AccuracyModel;
use hsconas_data::SyntheticDataset;
use hsconas_evo::{EvolutionConfig, EvolutionSearch, TradeoffObjective};
use hsconas_hwsim::DeviceSpec;
use hsconas_latency::LatencyPredictor;
use hsconas_space::{Arch, SearchSpace};
use hsconas_supernet::{Supernet, SupernetTrainer, TrainConfig, TrainedAccuracy};
use hsconas_tensor::rng::SmallRng;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn supernet_one_shot_training_transfers_to_subnets() {
    // Train with single-path sampling across the whole tiny space; the
    // widest subnet must end up above chance with inherited weights.
    // 800 steps leaves margin across RNG streams: at 400 the full-width
    // channels (trained only when the widest scale is sampled) can still
    // sit at chance for unlucky path sequences.
    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, 31);
    let mut rng = SmallRng::new(32);
    let net = Supernet::build(space.skeleton(), &mut rng).unwrap();
    let mut trainer = SupernetTrainer::new(
        net,
        TrainConfig {
            steps: 800,
            batch_size: 8,
            base_lr: 0.08,
            warmup_steps: 10,
            augment_pad: 0,
        },
    );
    trainer.train(&space, &data, &mut rng).unwrap();
    let acc = trainer.evaluate(&Arch::widest(4), &data, 4).unwrap();
    assert!(
        acc > 0.35,
        "inherited-weight accuracy {acc} near chance (0.25)"
    );
}

#[test]
fn end_to_end_search_with_trained_oracle() {
    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, 41);
    let mut rng = SmallRng::new(42);
    let net = Supernet::build(space.skeleton(), &mut rng).unwrap();
    let mut trainer = SupernetTrainer::new(
        net,
        TrainConfig {
            steps: 120,
            batch_size: 8,
            base_lr: 0.08,
            warmup_steps: 8,
            augment_pad: 0,
        },
    );
    trainer.train(&space, &data, &mut rng).unwrap();
    let oracle = TrainedAccuracy::new(trainer, data, 2);

    let mut search_rng = StdRng::seed_from_u64(43);
    let predictor =
        LatencyPredictor::calibrate(DeviceSpec::edge_xavier(), &space, 10, 2, &mut search_rng)
            .unwrap();
    let mut objective = TradeoffObjective::new(
        move |arch: &Arch| oracle.accuracy(arch).map_err(|e| e.to_string()),
        move |arch: &Arch| predictor.predict_ms(arch).map_err(|e| e.to_string()),
        20.0,
        -20.0,
    );
    let config = EvolutionConfig {
        generations: 3,
        population: 8,
        parents: 3,
        ..Default::default()
    };
    let result = EvolutionSearch::new(space.clone(), config)
        .run(&mut objective, &mut search_rng)
        .unwrap();
    assert!(space.contains(&result.best_arch));
    assert!(result.best_evaluation.accuracy >= 25.0 - 1e-9); // at least chance-level
    assert!(result.best_evaluation.latency_ms > 0.0);
}

/// End-to-end observability acceptance: a real pipeline run streamed to a
/// JSONL telemetry log must decode into a run report covering every phase
/// — supernet training, latency calibration, shrink stages, and EA
/// generations — exactly what `hsconas report` / `telemetry_report` show.
#[cfg(feature = "telemetry")]
#[test]
fn real_pipeline_jsonl_log_renders_full_phase_report() {
    use hsconas::real_pipeline::{run_real_pipeline, RealPipelineConfig};

    let path = std::env::temp_dir().join(format!(
        "hsconas-telemetry-test-{}.jsonl",
        std::process::id()
    ));
    {
        let _guard = hsconas_telemetry::init_jsonl(&path).unwrap();
        run_real_pipeline(&RealPipelineConfig::smoke_test(), 5).unwrap();
    } // guard drop flushes metrics and closes the log

    let text = std::fs::read_to_string(&path).unwrap();
    let report = hsconas_telemetry::RunReport::from_jsonl(&text).unwrap();
    std::fs::remove_file(&path).ok();

    let paths: Vec<&str> = report.span_aggs.iter().map(|a| a.path.as_str()).collect();
    for phase in [
        "pipeline.train",
        "pipeline.calibrate",
        "pipeline.shrink",
        "pipeline.search",
        "pipeline.final_train",
    ] {
        assert!(paths.contains(&phase), "missing phase {phase} in {paths:?}");
    }
    // Sub-spans roll up under their phase.
    assert!(paths.contains(&"pipeline.calibrate/latency.calibrate"));
    assert!(paths.contains(&"pipeline.shrink/shrink.stage"));
    assert!(paths.contains(&"pipeline.search/ea.search/ea.generation"));
    // Decoded pipeline-specific rows and flushed metrics made it through.
    assert!(!report.generations.is_empty(), "EA generation rows decoded");
    assert!(!report.stages.is_empty(), "shrink stage rows decoded");
    assert!(
        report.gauges.iter().any(|(k, _)| k == "latency.bias_us"),
        "calibration gauge flushed"
    );

    let rendered = report.render();
    for section in [
        "-- phases --",
        "-- EA generations --",
        "-- shrink stages --",
    ] {
        assert!(rendered.contains(section), "report lacks {section}");
    }
}

#[test]
fn fine_tuning_in_shrunk_space_does_not_break_inherited_eval() {
    // train → restrict the last layer → fine-tune → evaluate an arch from
    // the shrunk space; exercises the §III-C fine-tuning path.
    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, 51);
    let mut rng = SmallRng::new(52);
    let net = Supernet::build(space.skeleton(), &mut rng).unwrap();
    let mut trainer = SupernetTrainer::new(net, TrainConfig::quick_test());
    trainer
        .train_steps(&space, &data, 20, 0.05, &mut rng)
        .unwrap();
    let shrunk = space
        .restrict_op(3, hsconas_space::OpKind::Shuffle3)
        .unwrap();
    trainer
        .train_steps(&shrunk, &data, 10, 0.01, &mut rng)
        .unwrap();
    let mut arch_rng = StdRng::seed_from_u64(53);
    let arch = shrunk.sample(&mut arch_rng);
    let acc = trainer.evaluate(&arch, &data, 2).unwrap();
    assert!((0.0..=1.0).contains(&acc));
}
