//! Property tests for the memory-planning layer: the activation arena and
//! the prefix-activation cache are pure performance features, so turning
//! either on or off must never change a single bit of any result.

use hsconas_data::SyntheticDataset;
use hsconas_space::SearchSpace;
use hsconas_supernet::{Supernet, SupernetTrainer, TrainConfig};
use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::{arena, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arena-backed and plain-heap forward/backward are bit-identical for
    /// random architectures (random ops + channel scales) and batch sizes.
    #[test]
    fn arena_on_off_forward_backward_bit_identical(
        weight_seed in 0u64..1_000,
        arch_seed in 0u64..1_000,
        batch in 1usize..4,
    ) {
        let space = SearchSpace::tiny(4);
        let arch = space.sample(&mut StdRng::seed_from_u64(arch_seed));
        let run = |pooled: bool| {
            arena::set_enabled(pooled);
            let mut rng = SmallRng::new(weight_seed);
            let mut net = Supernet::build(space.skeleton(), &mut rng).unwrap();
            let x = Tensor::randn([batch, 3, 32, 32], 1.0, &mut rng);
            let y = net.forward(&x, &arch, true).unwrap();
            let g = net.backward(&Tensor::full(y.shape(), 1.0)).unwrap();
            (y, g)
        };
        let (y_pooled, g_pooled) = run(true);
        let (y_plain, g_plain) = run(false);
        arena::set_enabled(true);
        prop_assert_eq!(y_pooled.data(), y_plain.data());
        prop_assert_eq!(g_pooled.data(), g_plain.data());
    }

    /// Subnet evaluation with the prefix-activation cache is bit-identical
    /// to uncached evaluation for random architecture sequences (the cache
    /// resumes the later archs from prefixes of the earlier ones).
    #[test]
    fn prefix_cache_on_off_evaluation_bit_identical(
        weight_seed in 0u64..1_000,
        arch_seed in 0u64..1_000,
        batches in 1usize..3,
    ) {
        let space = SearchSpace::tiny(4);
        let data = SyntheticDataset::new(4, 32, 11);
        let mut rng = SmallRng::new(weight_seed);
        let net = Supernet::build(space.skeleton(), &mut rng).unwrap();
        let mut trainer = SupernetTrainer::new(net, TrainConfig::quick_test());
        let mut arch_rng = StdRng::seed_from_u64(arch_seed);
        let archs = space.sample_n(4, &mut arch_rng);
        let cached: Vec<f64> = archs
            .iter()
            .map(|a| trainer.evaluate(a, &data, batches).unwrap())
            .collect();
        trainer.set_prefix_cache_enabled(false);
        let plain: Vec<f64> = archs
            .iter()
            .map(|a| trainer.evaluate(a, &data, batches).unwrap())
            .collect();
        prop_assert_eq!(cached, plain);
    }
}
