//! Property suite for multi-device co-exploration (NSGA-II over N device
//! latency objectives): the returned frontier is exactly the
//! non-dominated subset of everything evaluated, its bytes are invariant
//! to worker-thread count and device-list permutation, and a run killed
//! at any checkpoint boundary resumes to the bit-identical frontier.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use hsconas::{run_pareto_checkpointed, CheckpointOptions};
use hsconas_evo::{
    dominates, Evaluation, EvoError, EvolutionConfig, MemoObjective, Objective, ParallelObjective,
    ParetoEval, ParetoFrontier, ParetoObjective, ParetoSearch,
};
use hsconas_space::{Arch, SearchSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A scratch checkpoint directory, unique per test, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hsck-pareto-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Deterministic synthetic evaluation for `device` (an index): accuracy
/// is a pure function of the genome; the per-device latencies weight ops
/// vs widths oppositely, so no single arch wins every objective and the
/// frontier is a genuine trade-off curve.
fn synth_eval(device: usize, arch: &Arch) -> Evaluation {
    let accuracy = 60.0 + (arch.fingerprint() % 997) as f64 / 50.0;
    let latency_ms: f64 = arch
        .encode()
        .iter()
        .enumerate()
        .map(|(i, &g)| {
            let weight = if (i + device).is_multiple_of(2) {
                1.0
            } else {
                0.25
            };
            (g + 1) as f64 * weight * (device + 1) as f64 / 10.0
        })
        .sum();
    Evaluation {
        score: 0.0, // ignored by the pareto objective
        accuracy,
        latency_ms,
    }
}

/// An [`Objective`] over [`synth_eval`] that records every arch it was
/// asked about, so tests can reconstruct the full evaluated candidate set.
struct Recorder {
    device: usize,
    log: Arc<Mutex<Vec<Arch>>>,
}

impl Objective for Recorder {
    fn evaluate(&mut self, arch: &Arch) -> Result<Evaluation, EvoError> {
        self.log.lock().unwrap().push(arch.clone());
        Ok(synth_eval(self.device, arch))
    }
}

fn config() -> EvolutionConfig {
    EvolutionConfig {
        generations: 4,
        population: 12,
        parents: 5,
        ..Default::default()
    }
}

/// Builds the pareto objective over `n` synthetic devices named d0..dn,
/// each evaluated through a `threads`-wide pool (the serve wiring).
fn synth_objective(n: usize, threads: usize) -> ParetoObjective {
    let per_device: Vec<(String, Box<dyn Objective>)> = (0..n)
        .map(|device| {
            let objective = MemoObjective::new(ParallelObjective::new(
                move |arch: &Arch| Ok(synth_eval(device, arch)),
                threads,
            ));
            (
                format!("d{device}"),
                Box::new(objective) as Box<dyn Objective>,
            )
        })
        .collect();
    ParetoObjective::new(per_device).expect("pareto objective")
}

/// A bit-exact signature of a frontier: canonical devices, bookkeeping,
/// and per point the genome plus every float's bit pattern.
#[derive(Debug, PartialEq, Eq)]
struct FrontierSig {
    devices: Vec<String>,
    generations: usize,
    evaluated: u64,
    points: Vec<(Vec<usize>, u64, Vec<u64>)>,
}

fn signature(frontier: &ParetoFrontier) -> FrontierSig {
    FrontierSig {
        devices: frontier.devices.clone(),
        generations: frontier.generations,
        evaluated: frontier.evaluated,
        points: frontier
            .points
            .iter()
            .map(|p| {
                (
                    p.arch.encode(),
                    p.eval.accuracy.to_bits(),
                    p.eval.latencies_ms.iter().map(|l| l.to_bits()).collect(),
                )
            })
            .collect(),
    }
}

/// Checks the two frontier correctness properties against the full
/// evaluated candidate set: mutual non-dominance within the frontier, and
/// set-equality with the true non-dominated subset of everything
/// evaluated (so every dominated candidate is excluded and nothing
/// non-dominated is dropped).
fn assert_frontier_exact(frontier: &ParetoFrontier, evaluated: &[Arch], devices: usize) {
    for (i, a) in frontier.points.iter().enumerate() {
        for (j, b) in frontier.points.iter().enumerate() {
            if i != j {
                assert!(
                    !dominates(&a.eval, &b.eval),
                    "frontier point {j} is dominated by point {i}"
                );
            }
        }
    }

    // Reconstruct every candidate's true vector evaluation.
    let mut candidates: Vec<(u64, Vec<usize>, ParetoEval)> = Vec::new();
    for arch in evaluated {
        let fp = arch.fingerprint();
        if candidates.iter().any(|(f, _, _)| *f == fp) {
            continue;
        }
        let eval = ParetoEval {
            accuracy: synth_eval(0, arch).accuracy,
            latencies_ms: (0..devices)
                .map(|d| synth_eval(d, arch).latency_ms)
                .collect(),
        };
        candidates.push((fp, arch.encode(), eval));
    }
    let mut expected: Vec<Vec<usize>> = candidates
        .iter()
        .filter(|(_, _, eval)| {
            !candidates
                .iter()
                .any(|(_, _, other)| dominates(other, eval))
        })
        .map(|(_, encoded, _)| encoded.clone())
        .collect();
    expected.sort();
    let mut actual: Vec<Vec<usize>> = frontier.points.iter().map(|p| p.arch.encode()).collect();
    actual.sort();
    assert_eq!(
        actual, expected,
        "frontier must be exactly the non-dominated subset of all evaluated candidates"
    );

    // And the frontier's stored evaluations are the true ones, bit for bit.
    for point in &frontier.points {
        let truth_acc = synth_eval(0, &point.arch).accuracy;
        assert_eq!(point.eval.accuracy.to_bits(), truth_acc.to_bits());
        for (d, latency) in point.eval.latencies_ms.iter().enumerate() {
            let truth = synth_eval(d, &point.arch).latency_ms;
            assert_eq!(latency.to_bits(), truth.to_bits());
        }
    }
}

#[test]
fn frontier_is_exactly_the_non_dominated_evaluated_set() {
    let devices = 3;
    let log = Arc::new(Mutex::new(Vec::new()));
    let per_device: Vec<(String, Box<dyn Objective>)> = (0..devices)
        .map(|device| {
            let recorder = Recorder {
                device,
                log: Arc::clone(&log),
            };
            (
                format!("d{device}"),
                Box::new(recorder) as Box<dyn Objective>,
            )
        })
        .collect();
    let mut objective = ParetoObjective::new(per_device).expect("objective");
    let frontier = ParetoSearch::new(SearchSpace::tiny(4), config())
        .run(&mut objective, &mut StdRng::seed_from_u64(17))
        .expect("search");
    assert!(!frontier.points.is_empty());
    assert_eq!(frontier.devices, vec!["d0", "d1", "d2"]);
    let evaluated = log.lock().unwrap().clone();
    assert!(frontier.evaluated > 0);
    assert_frontier_exact(&frontier, &evaluated, devices);
}

#[test]
fn frontier_is_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut objective = synth_objective(3, threads);
        ParetoSearch::new(SearchSpace::hsconas_a(), config())
            .run(&mut objective, &mut StdRng::seed_from_u64(23))
            .expect("search")
    };
    let reference = signature(&run(1));
    assert!(!reference.points.is_empty());
    assert_eq!(
        signature(&run(8)),
        reference,
        "frontier must not depend on the evaluation pool width"
    );
}

#[test]
fn frontier_is_stable_under_device_list_permutation() {
    let run = |order: &[usize]| {
        let per_device: Vec<(String, Box<dyn Objective>)> = order
            .iter()
            .map(|&device| {
                let objective = MemoObjective::new(ParallelObjective::new(
                    move |arch: &Arch| Ok(synth_eval(device, arch)),
                    1,
                ));
                (
                    format!("d{device}"),
                    Box::new(objective) as Box<dyn Objective>,
                )
            })
            .collect();
        let mut objective = ParetoObjective::new(per_device).expect("objective");
        ParetoSearch::new(SearchSpace::hsconas_a(), config())
            .run(&mut objective, &mut StdRng::seed_from_u64(29))
            .expect("search")
    };
    let reference = signature(&run(&[0, 1, 2]));
    for order in [[2, 1, 0], [1, 2, 0], [2, 0, 1]] {
        assert_eq!(
            signature(&run(&order)),
            reference,
            "frontier must not depend on device listing order {order:?}"
        );
    }
    // Duplicate device names are refused, not silently merged.
    let dup: Vec<(String, Box<dyn Objective>)> = [0usize, 0]
        .iter()
        .map(|&device| {
            let objective = MemoObjective::new(ParallelObjective::new(
                move |arch: &Arch| Ok(synth_eval(device, arch)),
                1,
            ));
            (
                format!("d{device}"),
                Box::new(objective) as Box<dyn Objective>,
            )
        })
        .collect();
    assert!(ParetoObjective::new(dup).is_err());
}

/// Checkpoint files in a directory, sorted by cursor.
fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "hsck"))
        .collect();
    files.sort();
    files
}

/// Copies the first `count` checkpoint files into a fresh directory —
/// simulating a run killed right after writing checkpoint `count - 1`.
fn copy_prefix(files: &[PathBuf], count: usize, dst: &Path) {
    fs::create_dir_all(dst).expect("create prefix dir");
    for file in &files[..count] {
        let name = file.file_name().expect("file name");
        fs::copy(file, dst.join(name)).expect("copy checkpoint");
    }
}

fn run_checkpointed(dir: &Path, resume: bool, threads: usize, seed: u64) -> ParetoFrontier {
    let mut objective = synth_objective(3, threads);
    let search = ParetoSearch::new(SearchSpace::tiny(6), config());
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = CheckpointOptions::new(dir).resume(resume).keep_last(0);
    run_pareto_checkpointed(&search, &mut objective, &mut rng, &opts).expect("pareto search")
}

#[test]
fn checkpoint_kill_resume_reproduces_the_exact_frontier() {
    let full = ScratchDir::new("full");
    let reference = signature(&run_checkpointed(full.path(), false, 1, 31));
    assert!(!reference.points.is_empty());
    let files = checkpoint_files(full.path());
    // init population + one per generation
    assert_eq!(files.len(), config().generations + 1);

    // Kill after every boundary; resume under 1 and 8 evaluation threads.
    for count in 1..=files.len() {
        for threads in [1usize, 8] {
            let partial = ScratchDir::new(&format!("prefix-{count}-t{threads}"));
            copy_prefix(&files, count, partial.path());
            let resumed = signature(&run_checkpointed(partial.path(), true, threads, 31));
            assert_eq!(
                resumed, reference,
                "frontier diverged resuming from checkpoint {count} at {threads} threads"
            );
        }
    }
}

#[test]
fn checkpoint_refuses_a_different_device_set() {
    let dir = ScratchDir::new("device-set");
    run_checkpointed(dir.path(), false, 1, 37);
    // Same space, config, and seed, but a 2-device objective: the config
    // hash differs, so resume must refuse rather than splice frontiers
    // from different experiments.
    let mut objective = synth_objective(2, 1);
    let search = ParetoSearch::new(SearchSpace::tiny(6), config());
    let mut rng = StdRng::seed_from_u64(37);
    let opts = CheckpointOptions::new(dir.path()).resume(true).keep_last(0);
    let err = run_pareto_checkpointed(&search, &mut objective, &mut rng, &opts)
        .expect_err("device-set mismatch must fail");
    assert!(
        err.to_string().contains("config"),
        "expected a config-hash error, got: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any seed, the frontier is exactly the non-dominated subset of
    /// everything evaluated, and thread count never changes its bytes.
    #[test]
    fn random_seeds_yield_exact_thread_invariant_frontiers(seed in 0u64..1000) {
        let devices = 2;
        let log = Arc::new(Mutex::new(Vec::new()));
        let per_device: Vec<(String, Box<dyn Objective>)> = (0..devices)
            .map(|device| {
                let recorder = Recorder { device, log: Arc::clone(&log) };
                (format!("d{device}"), Box::new(recorder) as Box<dyn Objective>)
            })
            .collect();
        let mut objective = ParetoObjective::new(per_device).expect("objective");
        let frontier = ParetoSearch::new(SearchSpace::tiny(3), config())
            .run(&mut objective, &mut StdRng::seed_from_u64(seed))
            .expect("search");
        let evaluated = log.lock().unwrap().clone();
        assert_frontier_exact(&frontier, &evaluated, devices);

        let mut threaded = synth_objective(devices, 8);
        let replay = ParetoSearch::new(SearchSpace::tiny(3), config())
            .run(&mut threaded, &mut StdRng::seed_from_u64(seed))
            .expect("replay");
        prop_assert_eq!(signature(&replay), signature(&frontier));
    }
}
