//! End-to-end integration: the full pipeline (latency calibration →
//! progressive shrinking → evolutionary search) across all subsystem
//! crates, for every paper device.

use hsconas::{search_for_device, PipelineConfig};
use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_space::SearchSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pipeline_meets_constraints_on_all_devices() {
    let targets = [9.0, 24.0, 34.0];
    for (device, &target_ms) in DeviceSpec::paper_devices().iter().zip(&targets) {
        let mut rng = StdRng::seed_from_u64(100);
        let space = SearchSpace::hsconas_a();
        let outcome = search_for_device(
            space.clone(),
            device.clone(),
            target_ms,
            &PipelineConfig::fast_test(),
            &mut rng,
        )
        .unwrap();
        // the predictor's latency must be near the constraint
        assert!(
            outcome.best.latency_ms <= target_ms * 1.15,
            "{}: {} ms vs target {} ms",
            device.name,
            outcome.best.latency_ms,
            target_ms
        );
        // and the *actual* simulated latency must agree with the predictor
        let net = lower_arch(space.skeleton(), &outcome.best_arch).unwrap();
        let actual_ms = device.network_time_us(&net) / 1000.0;
        assert!(
            (actual_ms / outcome.best.latency_ms - 1.0).abs() < 0.10,
            "{}: predictor said {} ms, device takes {} ms",
            device.name,
            outcome.best.latency_ms,
            actual_ms
        );
        // accuracy stays in the plausible band for the A layout
        let oracle = SurrogateAccuracy::new(space.skeleton().clone());
        let err = oracle.top1_error(&outcome.best_arch).unwrap();
        assert!((20.0..32.0).contains(&err), "{}: error {err}", device.name);
    }
}

#[test]
fn shrinking_preserves_search_feasibility() {
    // After the full two-stage shrink, the EA must still find an
    // architecture meeting the constraint (the shrunk space keeps good
    // candidates).
    let mut rng = StdRng::seed_from_u64(7);
    let config = PipelineConfig {
        shrink: true,
        shrink_config: hsconas_shrink::ShrinkConfig {
            samples_per_subspace: 15,
            ..Default::default()
        },
        ..PipelineConfig::fast_test()
    };
    let outcome = search_for_device(
        SearchSpace::hsconas_a(),
        DeviceSpec::edge_xavier(),
        34.0,
        &config,
        &mut rng,
    )
    .unwrap();
    let shrink = outcome.shrink.as_ref().unwrap();
    assert_eq!(shrink.space.fixed_layers().len(), 8);
    assert!(shrink.space.contains(&outcome.best_arch));
    assert!(outcome.best.latency_ms <= 34.0 * 1.2);
}

#[test]
fn b_layout_reaches_lower_error_than_a() {
    // The accuracy/latency trade-off between the two channel layouts is
    // Table I's other axis: layout B buys accuracy with latency.
    let run = |space: SearchSpace, target: f64| {
        let mut rng = StdRng::seed_from_u64(21);
        let outcome = search_for_device(
            space.clone(),
            DeviceSpec::cpu_xeon_6136(),
            target,
            &PipelineConfig::fast_test(),
            &mut rng,
        )
        .unwrap();
        let oracle = SurrogateAccuracy::new(space.skeleton().clone());
        oracle.top1_error(&outcome.best_arch).unwrap()
    };
    let err_a = run(SearchSpace::hsconas_a(), 24.0);
    let err_b = run(SearchSpace::hsconas_b(), 26.4);
    assert!(
        err_b < err_a,
        "layout B ({err_b}) should reach lower error than A ({err_a})"
    );
}
