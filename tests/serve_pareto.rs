//! Black-box `pareto` suite: the multi-device frontier request must be
//! byte-identical through a single daemon and through the routed fleet,
//! invariant to device-set permutation and aliasing, typed in its
//! rejections, and visible in the status counters of both topologies.

#[path = "serve_harness.rs"]
mod harness;

use harness::{raw_call, ServerGuard};
use hsconas_serve::proto::{Response, CODE_BAD_REQUEST, CODE_UNKNOWN_DEVICE};
use hsconas_serve::Json;
use std::time::Duration;

fn pareto_line(id: &str, devices: &str, target_ms: &str, seed: u64) -> String {
    format!(
        r#"{{"id":"{id}","cmd":"pareto","devices":{devices},"target_ms":{target_ms},"seed":{seed}}}"#
    )
}

#[test]
fn fleet_and_permutations_serve_identical_frontier_bytes() {
    let single = ServerGuard::spawn(&[]);
    let fleet = ServerGuard::spawn_raw(&["--port", "0", "--fleet", "3"]);

    // The same logical request, phrased four ways: canonical order on the
    // single daemon, then through the fleet router, then permuted, then
    // via aliases. All four must produce the exact same response bytes.
    let reference = raw_call(
        &mut single.connect(),
        &pareto_line("pf", r#"["cpu","edge","gpu"]"#, "34", 11),
    );
    let response = Response::decode(reference.as_bytes()).expect("decodable frontier");
    assert!(response.is_ok(), "{reference}");
    let result = response.result.expect("frontier result");
    let devices: Vec<&str> = result
        .get("devices")
        .and_then(Json::as_arr)
        .expect("devices")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(
        devices,
        vec!["cpu-xeon-6136", "edge-xavier", "gpu-gv100"],
        "echoed device set is canonical and sorted"
    );
    let frontier = result
        .get("frontier")
        .and_then(Json::as_arr)
        .expect("frontier points");
    assert!(!frontier.is_empty());
    assert_eq!(
        result.get("frontier_size").and_then(Json::as_u64),
        Some(frontier.len() as u64)
    );
    assert_eq!(result.get("truncated").and_then(Json::as_bool), Some(false));
    for point in frontier {
        assert_eq!(
            point
                .get("latencies_ms")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(3),
            "one latency per device in every frontier point"
        );
    }

    for (tag, devices) in [
        ("fleet", r#"["cpu","edge","gpu"]"#),
        ("fleet-permuted", r#"["gpu","cpu","edge"]"#),
        ("fleet-aliased", r#"["gpu-gv100","edge-xavier","cpu"]"#),
    ] {
        let reply = raw_call(&mut fleet.connect(), &pareto_line("pf", devices, "34", 11));
        assert_eq!(
            reply, reference,
            "{tag}: fleet frontier bytes diverged from the single daemon"
        );
    }
    // Duplicated names collapse onto the same canonical set.
    let reply = raw_call(
        &mut single.connect(),
        &pareto_line(
            "pf",
            r#"["edge","gpu","cpu","edge-xavier","gpu"]"#,
            "34",
            11,
        ),
    );
    assert_eq!(reply, reference, "aliased duplicates must dedup");

    // A different seed is a different search — the echo must not be a
    // cached artifact of the request key.
    let other = raw_call(
        &mut single.connect(),
        &pareto_line("pf", r#"["cpu","edge","gpu"]"#, "34", 12),
    );
    assert!(Response::decode(other.as_bytes())
        .expect("decodable")
        .is_ok());
    assert_ne!(other, reference, "seed must reach the search");

    single.shutdown_and_wait(Duration::from_secs(30));
    fleet.shutdown_and_wait(Duration::from_secs(30));
}

#[test]
fn malformed_device_sets_get_typed_rejections() {
    let mut server = ServerGuard::spawn(&[]);
    let mut stream = server.connect();

    let cases: &[(String, &str)] = &[
        (
            r#"{"id":"x","cmd":"pareto","target_ms":34}"#.to_string(),
            "missing or non-array field 'devices'",
        ),
        (
            pareto_line("x", "[]", "34", 0),
            "devices must list 1..=8 names",
        ),
        (
            pareto_line("x", r#"["a","b","c","d","e","f","g","h","i"]"#, "34", 0),
            "devices must list 1..=8 names",
        ),
        (
            pareto_line("x", "[1,2]", "34", 0),
            "devices entries must be strings",
        ),
        (pareto_line("x", r#"["edge"]"#, "0", 0), "positive"),
        (pareto_line("x", r#"["edge","gpu"]"#, "-3.5", 0), "positive"),
    ];
    for (frame, needle) in cases {
        let reply = raw_call(&mut stream, frame);
        let response = Response::decode(reply.as_bytes()).expect("decodable error reply");
        assert_eq!(
            response.code, CODE_BAD_REQUEST,
            "frame {frame:?} -> {reply}"
        );
        let error = response.error.expect("error text");
        assert!(
            error.contains(needle),
            "frame {frame:?}: error {error:?} should mention {needle:?}"
        );
    }

    // One unknown name anywhere in the set is a 404, even mixed with
    // known devices.
    let reply = raw_call(
        &mut stream,
        &pareto_line("d1", r#"["edge","tpu"]"#, "34", 0),
    );
    let response = Response::decode(reply.as_bytes()).expect("decodable");
    assert_eq!(response.code, CODE_UNKNOWN_DEVICE);
    assert_eq!(response.id, "d1");
    assert!(response.error.expect("error text").contains("tpu"));

    // The abuse killed nothing: the process is alive and the same
    // connection still answers real work.
    assert!(server.is_running(), "server died on malformed pareto input");
    let reply = raw_call(&mut stream, r#"{"id":"ok","cmd":"status"}"#);
    assert!(Response::decode(reply.as_bytes())
        .expect("decodable")
        .is_ok());

    server.shutdown_and_wait(Duration::from_secs(10));
}

#[test]
fn pareto_requests_are_counted_in_single_and_fleet_status() {
    // Single daemon: the typed client round-trips the command and the
    // served/latency counters pick it up.
    let server = ServerGuard::spawn(&[]);
    let mut client = server.client();
    let devices: Vec<String> = vec!["edge".into(), "gpu".into()];
    let response = client.pareto(&devices, 34.0, 3).expect("pareto call");
    assert!(response.is_ok(), "{response:?}");
    let frontier = response
        .result
        .expect("result")
        .get("frontier_size")
        .and_then(Json::as_u64)
        .expect("frontier_size");
    assert!(frontier > 0);

    let status = client.status().expect("status").result.expect("result");
    assert_eq!(
        status
            .get("served")
            .and_then(|s| s.get("pareto"))
            .and_then(Json::as_u64),
        Some(1),
        "served.pareto must count the request"
    );
    let latency = status
        .get("latency_ms")
        .and_then(|l| l.get("pareto"))
        .expect("latency_ms.pareto block");
    assert_eq!(latency.get("count").and_then(Json::as_u64), Some(1));
    assert!(latency.get("p50_ms").and_then(Json::as_f64).is_some());
    server.shutdown_and_wait(Duration::from_secs(30));

    // Fleet: the router exposes its own pareto latency histogram and the
    // aggregated per-shard served counters.
    let fleet = ServerGuard::spawn_raw(&["--port", "0", "--fleet", "3"]);
    let reply = raw_call(
        &mut fleet.connect(),
        &pareto_line("fp", r#"["edge","gpu"]"#, "34", 3),
    );
    assert!(Response::decode(reply.as_bytes())
        .expect("decodable")
        .is_ok());

    let status = fleet
        .client()
        .status()
        .expect("status")
        .result
        .expect("result");
    assert_eq!(
        status
            .get("fleet")
            .and_then(|f| f.get("served"))
            .and_then(|s| s.get("pareto"))
            .and_then(Json::as_u64),
        Some(1),
        "fleet.served.pareto must aggregate shard counters"
    );
    let latency = status
        .get("router")
        .and_then(|r| r.get("latency_ms"))
        .and_then(|l| l.get("pareto"))
        .expect("router.latency_ms.pareto block");
    assert_eq!(latency.get("count").and_then(Json::as_u64), Some(1));
    fleet.shutdown_and_wait(Duration::from_secs(30));
}
