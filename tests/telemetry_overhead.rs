//! Release-mode gate on the cost of *enabled* telemetry: evaluating an
//! EA-generation-shaped population against a trained tiny supernet (the
//! `bench_snapshot` `population_eval` workload) must regress by less than
//! 2% when a telemetry sink is installed.
//!
//! The two variants are timed interleaved (off/on per round, min-of-N) so
//! thermal and scheduler drift cancel. The assertion only fires in release
//! builds — debug timings are too noisy for a 2% bound — but the workload
//! always runs, so the instrumented path stays exercised under `cargo
//! test`. `scripts/check.sh` runs this test with `--release` to enforce
//! the gate.

#![cfg(feature = "telemetry")]

use hsconas_data::SyntheticDataset;
use hsconas_space::{Arch, SearchSpace};
use hsconas_supernet::{Supernet, SupernetTrainer, TrainConfig};
use hsconas_tensor::rng::SmallRng;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// An elite plus single-gene mutants, the shape the EA scheduler submits.
fn sibling_population(space: &SearchSpace, seed: u64) -> Vec<Arch> {
    let mut rng = StdRng::seed_from_u64(seed);
    let elite = Arch::widest(4);
    let mut population = vec![elite.clone()];
    for i in 0..12 {
        let donor = space.sample(&mut rng);
        let mut mutant = elite.clone();
        mutant.set_gene(i % 4, donor.genes()[i % 4]).unwrap();
        population.push(mutant);
    }
    population.sort_by_key(|a| a.encode());
    population.dedup_by_key(|a| a.encode());
    population
}

#[test]
fn enabled_telemetry_costs_under_two_percent() {
    hsconas_par::set_default_threads(1);
    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, 2021);
    let mut rng = SmallRng::new(2021);
    let net = Supernet::build(space.skeleton(), &mut rng).unwrap();
    let mut trainer = SupernetTrainer::new(net, TrainConfig::quick_test());
    let mut train_rng = SmallRng::new(2022);
    trainer
        .train_steps(&space, &data, 10, 0.05, &mut train_rng)
        .unwrap();
    trainer.set_prefix_cache_enabled(true);
    let population = sibling_population(&space, 2023);

    let pass = |trainer: &mut SupernetTrainer| {
        for arch in &population {
            black_box(trainer.evaluate(arch, &data, 2).unwrap());
        }
    };
    pass(&mut trainer); // warm-up (arena, caches, page faults)

    let mut min_off = f64::INFINITY;
    let mut min_on = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        pass(&mut trainer);
        min_off = min_off.min(start.elapsed().as_secs_f64());

        let sink = hsconas_telemetry::MemorySink::install();
        let start = Instant::now();
        pass(&mut trainer);
        min_on = min_on.min(start.elapsed().as_secs_f64());
        sink.uninstall();
    }
    hsconas_par::set_default_threads(0);

    let ratio = min_on / min_off;
    eprintln!("telemetry overhead ratio: {ratio:.4} (off {min_off:.4}s, on {min_on:.4}s)");
    if cfg!(debug_assertions) {
        return; // debug timing noise exceeds the bound being tested
    }
    assert!(
        ratio < 1.02,
        "enabled telemetry regressed population_eval by {:.2}% (limit 2%)",
        (ratio - 1.0) * 100.0
    );
}
