//! Regression tests for the parallel-evaluation determinism contract:
//! every parallel site generates work items serially from the seeded RNG,
//! dispatches them to the worker pool, and merges results in item order —
//! so a fixed-seed run must be **byte-identical** at any thread count,
//! with or without the evaluation memo-cache.
//!
//! Thread counts are passed explicitly (not via the process-wide default)
//! so the tests cannot race each other through global state.

use hsconas_evo::{
    Evaluation, EvoError, EvolutionConfig, EvolutionSearch, MemoObjective, Objective,
    ParallelObjective, SearchResult,
};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_shrink::{ProgressiveShrinking, ShrinkConfig, ShrinkResult};
use hsconas_space::cost::arch_cost;
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic, `Sync` objective with real structure: latency from the
/// noise-free device timing model, "accuracy" as a smooth function of the
/// architecture's FLOPs plus a fingerprint-dependent wiggle (so equal-cost
/// architectures still get distinct scores).
fn score(space: &SearchSpace, device: &DeviceSpec, arch: &Arch) -> Result<Evaluation, EvoError> {
    let net = lower_arch(space.skeleton(), arch).map_err(|e| EvoError::Objective {
        detail: e.to_string(),
    })?;
    let latency_ms = device.network_time_us(&net) / 1000.0;
    let cost = arch_cost(space.skeleton(), arch).map_err(EvoError::Space)?;
    let accuracy =
        60.0 + 10.0 * (cost.total_flops() / 1e8).tanh() + (arch.fingerprint() % 997) as f64 / 997.0;
    let target_ms = 30.0;
    let score = accuracy - 20.0 * (latency_ms / target_ms - 1.0).abs();
    Ok(Evaluation {
        score,
        accuracy,
        latency_ms,
    })
}

struct SerialObjective {
    space: SearchSpace,
    device: DeviceSpec,
}

impl Objective for SerialObjective {
    fn evaluate(&mut self, arch: &Arch) -> Result<Evaluation, EvoError> {
        score(&self.space, &self.device, arch)
    }
}

fn search_config() -> EvolutionConfig {
    EvolutionConfig {
        generations: 6,
        population: 20,
        parents: 8,
        ..Default::default()
    }
}

fn run_search(objective: &mut dyn Objective, seed: u64) -> SearchResult {
    let space = SearchSpace::hsconas_a();
    let mut rng = StdRng::seed_from_u64(seed);
    EvolutionSearch::new(space, search_config())
        .run(objective, &mut rng)
        .unwrap()
}

#[test]
fn ea_search_is_byte_identical_across_thread_counts_and_memo() {
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();

    let mut serial = SerialObjective {
        space: space.clone(),
        device: device.clone(),
    };
    let reference = run_search(&mut serial, 2021);

    for threads in [1, 2, 8] {
        let sp = space.clone();
        let dev = device.clone();
        let mut par = ParallelObjective::new(move |a: &Arch| score(&sp, &dev, a), threads);
        let got = run_search(&mut par, 2021);
        assert_eq!(reference, got, "threads={threads} changed the search");
    }

    // Memo-cache on top of the parallel path: still identical, and the
    // cache must have absorbed the revisits.
    let sp = space.clone();
    let dev = device.clone();
    let mut memo = MemoObjective::new(ParallelObjective::new(
        move |a: &Arch| score(&sp, &dev, a),
        8,
    ));
    let got = run_search(&mut memo, 2021);
    assert_eq!(reference, got, "memo-cache changed the search");
    let stats = memo.stats();
    assert_eq!(
        stats.misses,
        memo.cached_count() as u64,
        "every distinct genome evaluated exactly once"
    );
}

fn run_shrink(objective: &mut dyn Objective, seed: u64) -> ShrinkResult {
    let space = SearchSpace::hsconas_a();
    let config = ShrinkConfig {
        stages: vec![vec![19, 18], vec![17]],
        samples_per_subspace: 30,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    ProgressiveShrinking::new(config)
        .run(space, objective, &mut rng, |_, _| Ok(()))
        .unwrap()
}

#[test]
fn shrink_is_byte_identical_across_thread_counts_and_memo() {
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::cpu_xeon_6136();

    let mut serial = SerialObjective {
        space: space.clone(),
        device: device.clone(),
    };
    let reference = run_shrink(&mut serial, 7);

    for threads in [1, 8] {
        let sp = space.clone();
        let dev = device.clone();
        let mut par = ParallelObjective::new(move |a: &Arch| score(&sp, &dev, a), threads);
        assert_eq!(
            reference,
            run_shrink(&mut par, 7),
            "threads={threads} changed the shrink schedule"
        );
    }

    let sp = space.clone();
    let dev = device.clone();
    let mut memo = MemoObjective::new(ParallelObjective::new(
        move |a: &Arch| score(&sp, &dev, a),
        8,
    ));
    assert_eq!(
        reference,
        run_shrink(&mut memo, 7),
        "memo-cache changed the shrink schedule"
    );
}

/// Supernet population evaluation (the accuracy oracle of the real-training
/// pipeline) must be byte-identical with the prefix-activation cache on or
/// off, the GEMM pack-weight cache on or off, at one worker thread or
/// eight. Thread count here drives the conv batch-parallel kernels, the
/// per-thread activation arenas, and the GEMM band split, so this pins
/// every memory-planning and decomposition layer to the determinism
/// contract at once.
#[test]
fn supernet_evaluation_is_identical_across_cache_and_threads() {
    use hsconas_data::SyntheticDataset;
    use hsconas_supernet::{Supernet, SupernetTrainer, TrainConfig};
    use hsconas_tensor::kernels::cache as pack_cache;
    use hsconas_tensor::rng::SmallRng;

    let space = SearchSpace::tiny(4);
    let data = SyntheticDataset::new(4, 32, 21);
    let population = space.sample_n(6, &mut StdRng::seed_from_u64(22));

    let run = |cache: bool, threads: usize, packs: bool| -> Vec<f64> {
        hsconas_par::set_default_threads(threads);
        pack_cache::set_enabled(packs);
        pack_cache::clear();
        let mut rng = SmallRng::new(23);
        let net = Supernet::build(space.skeleton(), &mut rng).unwrap();
        let mut trainer = SupernetTrainer::new(net, TrainConfig::quick_test());
        let mut train_rng = SmallRng::new(24);
        trainer
            .train_steps(&space, &data, 6, 0.05, &mut train_rng)
            .unwrap();
        trainer.set_prefix_cache_enabled(cache);
        population
            .iter()
            .map(|a| trainer.evaluate(a, &data, 2).unwrap())
            .collect()
    };

    let reference = run(false, 1, false);
    for (cache, threads, packs) in [
        (true, 1, false),
        (false, 8, false),
        (true, 8, false),
        (false, 1, true),
        (true, 8, true),
    ] {
        assert_eq!(
            reference,
            run(cache, threads, packs),
            "cache={cache} threads={threads} pack_cache={packs} changed evaluation results"
        );
    }
    // Restore defaults so this test leaves no process-wide state behind.
    hsconas_par::set_default_threads(0);
    pack_cache::set_enabled(true);
    pack_cache::clear();
}

/// Telemetry is observation-only: installing a sink (which captures every
/// span and metric flush the search emits) must not change a single byte
/// of the result, at one worker thread or eight. This is the contract that
/// lets `--telemetry` ride along on reproducibility-sensitive experiments.
#[cfg(feature = "telemetry")]
#[test]
fn telemetry_sink_does_not_change_search_results() {
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::edge_xavier();
    let run = |threads: usize, telemetry: bool| -> SearchResult {
        let sp = space.clone();
        let dev = device.clone();
        let sink = telemetry.then(hsconas_telemetry::MemorySink::install);
        let mut par = ParallelObjective::new(move |a: &Arch| score(&sp, &dev, a), threads);
        let result = run_search(&mut par, 77);
        if let Some(sink) = sink {
            assert!(!sink.take().is_empty(), "sink captured the run");
            sink.uninstall();
        }
        result
    };
    let reference = run(1, false);
    for (threads, telemetry) in [(1, true), (8, false), (8, true)] {
        assert_eq!(
            reference,
            run(threads, telemetry),
            "threads={threads} telemetry={telemetry} changed the search"
        );
    }
}

#[test]
fn hwsim_measurement_sweep_is_thread_count_invariant() {
    let space = SearchSpace::hsconas_a();
    let mut rng = StdRng::seed_from_u64(3);
    let nets: Vec<_> = space
        .sample_n(16, &mut rng)
        .iter()
        .map(|a| lower_arch(space.skeleton(), a).unwrap())
        .collect();
    let device = DeviceSpec::gpu_gv100();
    let one = hsconas_hwsim::measure_networks_parallel(&device, &nets, 3, 11, 1);
    let eight = hsconas_hwsim::measure_networks_parallel(&device, &nets, 3, 11, 8);
    assert_eq!(one, eight);
}
