//! Differential tests for the GEMM kernel layer (DESIGN.md §11).
//!
//! Every kernel variant (`direct`, packed `scalar`, packed `avx2` where the
//! host supports it) must agree with an f64 naive reference — and with each
//! other — within the documented tolerance contract for all three operand
//! layouts, with and without accumulation, across randomly drawn shapes
//! that include the degenerate cases around the microkernel tile sizes
//! (`m/k/n ∈ {0, 1, MR±1, NR±1}`) and all-zero masked row panels.
//!
//! Within a single variant the contract is stronger: repeat calls must be
//! bit-identical (fixed blocking ⇒ fixed accumulation order).

use hsconas_tensor::kernels::{gemm_with, Op, Variant};
use hsconas_tensor::rng::SmallRng;
use proptest::prelude::*;

/// Shape values concentrated on the microkernel edges: 0, 1, MR±1 for both
/// tile heights (4-row scalar, 6-row AVX2), NR±1 for both tile widths
/// (8-col scalar, 16-col AVX2), plus interior and large values.
const EDGES: [usize; 12] = [0, 1, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17];

fn dim() -> impl Strategy<Value = usize> {
    (0u64..10, 0usize..EDGES.len(), 18usize..160).prop_map(|(bucket, e, interior)| {
        if bucket < 6 {
            EDGES[e]
        } else {
            interior
        }
    })
}

fn op() -> impl Strategy<Value = Op> {
    prop::sample::select(vec![Op::Ab, Op::AtB, Op::ABt])
}

/// Operand lengths for each layout (mirrors `Op::a_len`/`b_len`).
fn lens(op: Op, m: usize, k: usize, n: usize) -> (usize, usize) {
    match op {
        Op::Ab => (m * k, k * n),
        Op::AtB => (k * m, k * n),
        Op::ABt => (m * k, n * k),
    }
}

/// f64 naive reference for all three layouts.
fn naive(op: Op, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                let av = match op {
                    Op::Ab | Op::ABt => a[i * k + p],
                    Op::AtB => a[p * m + i],
                };
                let bv = match op {
                    Op::Ab | Op::AtB => b[p * n + j],
                    Op::ABt => b[j * k + p],
                };
                acc += f64::from(av) * f64::from(bv);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Tolerance contract from DESIGN.md §11: relative to magnitude, scaled by
/// accumulation depth (FMA vs mul+add round differently along k).
fn tol(reference: f64, k: usize) -> f64 {
    1e-4 * (1.0 + reference.abs()) * (1.0 + k as f64 / 256.0)
}

fn variants() -> Vec<Variant> {
    let mut v = vec![Variant::Direct, Variant::Scalar];
    if Variant::Avx2.is_available() {
        v.push(Variant::Avx2);
    }
    v
}

/// Fill `a`/`b` with pseudorandom values, then zero whole rows of the
/// logical `a` matrix according to `mask_seed` (mimicking supernet channel
/// masks, which zero trailing output-channel rows).
fn make_inputs(
    op: Op,
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
    mask_rows: usize,
) -> (Vec<f32>, Vec<f32>) {
    let (al, bl) = lens(op, m, k, n);
    let mut rng = SmallRng::new(seed);
    let mut a: Vec<f32> = (0..al).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
    let b: Vec<f32> = (0..bl).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
    // Zero the *last* `mask_rows` logical rows of a (rows index m).
    let start = m.saturating_sub(mask_rows);
    for i in start..m {
        for p in 0..k {
            match op {
                Op::Ab | Op::ABt => a[i * k + p] = 0.0,
                Op::AtB => a[p * m + i] = 0.0,
            }
        }
    }
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every available variant matches the f64 naive reference within the
    /// tolerance contract, for random shapes (including degenerate ones),
    /// all three layouts, and both accumulate modes.
    #[test]
    fn variants_match_naive_reference(
        m in dim(),
        k in dim(),
        n in dim(),
        op in op(),
        accumulate in prop::bool::ANY,
        seed in 0u64..10_000,
    ) {
        let (a, b) = make_inputs(op, m, k, n, seed, 0);
        let reference = naive(op, &a, &b, m, k, n);
        let init = if accumulate { 0.5f32 } else { -7.0 };
        for v in variants() {
            let mut c = vec![init; m * n];
            gemm_with(v, op, &a, &b, &mut c, m, k, n, accumulate);
            for (i, (&got, &want)) in c.iter().zip(&reference).enumerate() {
                let want = if accumulate { want + 0.5 } else { want };
                let err = (f64::from(got) - want).abs();
                prop_assert!(
                    err <= tol(want, k),
                    "{} {op:?} {m}x{k}x{n} acc={accumulate} c[{i}]: got {got}, want {want}",
                    v.name()
                );
            }
        }
    }

    /// All variants agree with each other (pairwise, against `direct` as
    /// the anchor) within the same tolerance.
    #[test]
    fn variants_agree_pairwise(
        m in dim(),
        k in dim(),
        n in dim(),
        op in op(),
        seed in 0u64..10_000,
    ) {
        let (a, b) = make_inputs(op, m, k, n, seed, 0);
        let mut anchor = vec![0.0f32; m * n];
        gemm_with(Variant::Direct, op, &a, &b, &mut anchor, m, k, n, false);
        for v in variants() {
            let mut c = vec![0.0f32; m * n];
            gemm_with(v, op, &a, &b, &mut c, m, k, n, false);
            for (i, (&got, &want)) in c.iter().zip(&anchor).enumerate() {
                let err = (f64::from(got) - f64::from(want)).abs();
                prop_assert!(
                    err <= tol(f64::from(want), k),
                    "{} vs direct {op:?} {m}x{k}x{n} c[{i}]: {got} vs {want}",
                    v.name()
                );
            }
        }
    }

    /// Zeroed trailing rows of `a` (supernet channel masks) produce output
    /// rows that are *exactly* zero in overwrite mode for every variant —
    /// the packed path must skip, not approximate, masked panels.
    #[test]
    fn masked_rows_stay_exactly_zero(
        m in 1usize..48,
        k in dim(),
        n in dim(),
        op in op(),
        seed in 0u64..10_000,
        mask_frac in 0usize..=4,
    ) {
        let mask_rows = m * mask_frac / 4;
        let (a, b) = make_inputs(op, m, k, n, seed, mask_rows);
        for v in variants() {
            let mut c = vec![9.0f32; m * n];
            gemm_with(v, op, &a, &b, &mut c, m, k, n, false);
            for i in (m - mask_rows)..m {
                for j in 0..n {
                    prop_assert_eq!(
                        c[i * n + j], 0.0,
                        "{} {:?} {}x{}x{} masked row {} col {} nonzero",
                        v.name(), op, m, k, n, i, j
                    );
                }
            }
        }
    }

    /// Repeat calls with the same variant are bit-identical: for a fixed
    /// kernel the accumulation order is a pure function of (op, m, k, n).
    #[test]
    fn repeat_calls_bit_identical(
        m in dim(),
        k in dim(),
        n in dim(),
        op in op(),
        seed in 0u64..10_000,
    ) {
        let (a, b) = make_inputs(op, m, k, n, seed, 0);
        for v in variants() {
            let mut c1 = vec![0.0f32; m * n];
            let mut c2 = vec![0.0f32; m * n];
            gemm_with(v, op, &a, &b, &mut c1, m, k, n, false);
            gemm_with(v, op, &a, &b, &mut c2, m, k, n, false);
            let b1: Vec<u32> = c1.iter().map(|x| x.to_bits()).collect();
            let b2: Vec<u32> = c2.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(b1, b2, "{} {:?} {}x{}x{} not bit-identical", v.name(), op, m, k, n);
        }
    }
}

/// An all-zero `a` operand yields an exactly-zero product for every variant
/// (the packed path skips every panel; direct multiplies through) — and in
/// accumulate mode leaves `c` untouched bitwise.
#[test]
fn all_zero_a_is_exact() {
    let (m, k, n) = (24, 96, 40);
    let mut rng = SmallRng::new(11);
    let a = vec![0.0f32; m * k];
    let b: Vec<f32> = (0..k * n).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
    for v in variants() {
        let mut c = vec![3.25f32; m * n];
        gemm_with(v, Op::Ab, &a, &b, &mut c, m, k, n, true);
        assert!(c.iter().all(|&x| x == 3.25), "{} polluted c", v.name());
        gemm_with(v, Op::Ab, &a, &b, &mut c, m, k, n, false);
        assert!(c.iter().all(|&x| x == 0.0), "{} nonzero product", v.name());
    }
}

/// Band-parallel execution is bit-identical to serial for every packed
/// variant and layout: row bands are `MR`-aligned, each output element is
/// owned by exactly one worker, and its accumulation order is unchanged by
/// the split. CI runs this whole binary at `HSCONAS_KERNEL_THREADS` 1 and
/// 8 on top, so the auto path is pinned too.
#[test]
fn thread_counts_are_bit_identical() {
    use hsconas_tensor::kernels::gemm_with_threads;
    let (m, k, n) = (130, 96, 257);
    for op in [Op::Ab, Op::AtB, Op::ABt] {
        let (a, b) = make_inputs(op, m, k, n, 31, 0);
        for v in variants() {
            if v == Variant::Direct {
                continue; // the direct loops never fork
            }
            let mut serial = vec![0.25f32; m * n];
            gemm_with_threads(v, 1, op, &a, &b, &mut serial, m, k, n, true);
            for threads in [2, 3, 8] {
                let mut par = vec![0.25f32; m * n];
                gemm_with_threads(v, threads, op, &a, &b, &mut par, m, k, n, true);
                let sb: Vec<u32> = serial.iter().map(|x| x.to_bits()).collect();
                let pb: Vec<u32> = par.iter().map(|x| x.to_bits()).collect();
                assert_eq!(
                    sb,
                    pb,
                    "{} {op:?} threads={threads} diverged from serial",
                    v.name()
                );
            }
        }
    }
}

/// Tagged operands served from the persistent pack cache are bitwise the
/// same as per-call packing — across repeat calls (hits), and after the
/// operand mutates (a new version, as every `Tensor` mutator produces,
/// must drop the stale panels rather than serve them).
#[test]
fn pack_cache_round_trip_is_bit_identical_and_invalidates() {
    use hsconas_tensor::kernels::cache::{self, PackTag};
    use hsconas_tensor::kernels::{gemm_ext, GemmTags};

    let (m, k, n) = (96, 64, 200);
    let (mut a, b) = make_inputs(Op::Ab, m, k, n, 57, 0);
    // Synthetic id far above anything the monotonic tensor-id counter
    // reaches, so this test cannot collide with real tensors.
    let tag = |version: u64| PackTag {
        id: u64::MAX - 40,
        version,
        offset: 0,
        mask_sig: 0,
    };
    let untagged = |a: &[f32], b: &[f32]| -> Vec<u32> {
        let mut c = vec![0.0f32; m * n];
        #[rustfmt::skip]
        gemm_ext(Variant::Scalar, 1, Op::Ab, a, b, &mut c, m, k, n, false, GemmTags::default());
        c.iter().map(|x| x.to_bits()).collect()
    };

    let want = untagged(&a, &b);
    for round in 0..3 {
        let mut c = vec![0.0f32; m * n];
        #[rustfmt::skip]
        gemm_ext(Variant::Scalar, 1, Op::Ab, &a, &b, &mut c, m, k, n, false, GemmTags::a_tag(tag(1)));
        let got: Vec<u32> = c.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            want, got,
            "cached round {round} diverged from per-call packing"
        );
    }

    let before = cache::stats();
    for v in a.iter_mut() {
        *v = -*v;
    }
    let want2 = untagged(&a, &b);
    let mut c = vec![0.0f32; m * n];
    #[rustfmt::skip]
    gemm_ext(Variant::Scalar, 1, Op::Ab, &a, &b, &mut c, m, k, n, false, GemmTags::a_tag(tag(2)));
    let got: Vec<u32> = c.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        want2, got,
        "stale cached panels served after operand mutation"
    );
    let after = cache::stats();
    assert!(
        after.invalidations > before.invalidations,
        "version bump did not record an invalidation"
    );
}

/// The suite is meaningful only if it actually exercises the SIMD path on
/// hosts that have it; surface which variants ran (visible with
/// `--nocapture`, and keeps CI logs honest about coverage).
#[test]
fn report_tested_variants() {
    let names: Vec<&str> = variants().iter().map(|v| v.name()).collect();
    eprintln!("kernel_differential: testing variants {names:?}");
    assert!(names.contains(&"scalar"));
}
