//! Cross-crate property tests: invariants that must hold for *any*
//! architecture, not just the sampled ones the other tests use.

use hsconas_accuracy::{AccuracyModel, SurrogateAccuracy};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_space::cost::arch_cost;
use hsconas_space::{Arch, ChannelScale, Gene, OpKind, SearchSpace};
use proptest::prelude::*;

fn gene_strategy() -> impl Strategy<Value = Gene> {
    (0usize..5, 1u8..=10).prop_map(|(op, tenths)| {
        Gene::new(
            OpKind::from_index(op).unwrap(),
            ChannelScale::from_tenths(tenths).unwrap(),
        )
    })
}

fn arch_strategy() -> impl Strategy<Value = Arch> {
    proptest::collection::vec(gene_strategy(), 20).prop_map(Arch::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every architecture gets a finite positive latency on every device,
    /// and the deterministic network time is bounded below by the
    /// structural overheads.
    #[test]
    fn latency_is_finite_and_bounded(arch in arch_strategy()) {
        let space = SearchSpace::hsconas_a();
        let net = lower_arch(space.skeleton(), &arch).unwrap();
        for device in DeviceSpec::paper_devices() {
            let us = device.network_time_us(&net);
            prop_assert!(us.is_finite());
            let floor = device.fixed_overhead_us
                + (net.ops.len() - 1) as f64 * device.inter_op_overhead_us;
            prop_assert!(us > floor, "{}: {us} <= structural floor {floor}", device.name);
        }
    }

    /// Accuracy and latency never contradict each other's units: error in
    /// (10, 95), top5 < top1, accuracy = 100 - top1.
    #[test]
    fn oracle_units_consistent(arch in arch_strategy()) {
        let space = SearchSpace::hsconas_a();
        let oracle = SurrogateAccuracy::new(space.skeleton().clone());
        let top1 = oracle.top1_error(&arch).unwrap();
        let top5 = oracle.top5_error(&arch).unwrap();
        let acc = oracle.accuracy(&arch).unwrap();
        prop_assert!((10.0..=95.0).contains(&top1));
        prop_assert!(top5 < top1);
        prop_assert!((acc + top1 - 100.0).abs() < 1e-9);
    }

    /// The simulator's MAC accounting agrees with the cost model for
    /// every architecture (not just the widest), within the small
    /// batch-norm FLOPs the cost model adds.
    #[test]
    fn simulator_and_cost_model_agree(arch in arch_strategy()) {
        let space = SearchSpace::hsconas_a();
        let net = lower_arch(space.skeleton(), &arch).unwrap();
        let cost = arch_cost(space.skeleton(), &arch).unwrap();
        let ratio = net.total_macs() / cost.total_flops();
        prop_assert!((0.9..=1.05).contains(&ratio), "MAC ratio {ratio}");
    }

    /// Replacing any gene with a strictly wider scale never reduces the
    /// deterministic device latency (monotonicity the EA relies on).
    #[test]
    fn latency_monotone_in_width(arch in arch_strategy(), layer in 0usize..20) {
        let space = SearchSpace::hsconas_a();
        let gene = arch.genes()[layer];
        if gene.scale == ChannelScale::FULL || gene.op == OpKind::Skip {
            return Ok(());
        }
        let mut wider = arch.clone();
        wider.set_gene(
            layer,
            Gene::new(gene.op, ChannelScale::from_tenths(gene.scale.tenths() + 1).unwrap()),
        ).unwrap();
        let device = DeviceSpec::edge_xavier();
        let base = device.network_time_us(&lower_arch(space.skeleton(), &arch).unwrap());
        let more = device.network_time_us(&lower_arch(space.skeleton(), &wider).unwrap());
        prop_assert!(more >= base * 0.999, "widening reduced latency {base} -> {more}");
    }
}
