//! Integration of the latency model with the device simulator and the
//! baseline zoo: the Eq. 2-3 predictor must track simulated ground truth
//! across heterogeneous network families, and the simulator must preserve
//! the orderings Table I depends on.

use hsconas_baselines::zoo;
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_latency::{spearman, LatencyPredictor};
use hsconas_space::{Arch, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn predictor_ranks_architectures_like_the_device() {
    let space = SearchSpace::hsconas_a();
    for device in DeviceSpec::paper_devices() {
        let mut rng = StdRng::seed_from_u64(5);
        let predictor =
            LatencyPredictor::calibrate(device.clone(), &space, 30, 3, &mut rng).unwrap();
        let archs = space.sample_n(60, &mut rng);
        let predicted: Vec<f64> = archs
            .iter()
            .map(|a| predictor.predict_ms(a).unwrap())
            .collect();
        let actual: Vec<f64> = archs
            .iter()
            .map(|a| {
                let net = lower_arch(space.skeleton(), a).unwrap();
                device.network_time_us(&net) / 1000.0
            })
            .collect();
        let rho = spearman(&predicted, &actual);
        assert!(rho > 0.98, "{}: rank correlation {rho}", device.name);
    }
}

#[test]
fn darts_is_slowest_on_cpu_among_baselines() {
    // The Table I relationship behind the paper's "x3.1 speedup over
    // DARTS" claim.
    let cpu = DeviceSpec::cpu_xeon_6136();
    let mut worst = ("", 0.0f64);
    for model in zoo::all_baselines() {
        let ms = cpu.network_time_us(&model.network) / 1000.0;
        if ms > worst.1 {
            worst = (Box::leak(model.name.clone().into_boxed_str()), ms);
        }
    }
    assert_eq!(worst.0, "DARTS", "slowest CPU baseline was {}", worst.0);
}

#[test]
fn baseline_latency_ordering_tracks_paper_per_device() {
    // Rank correlation between simulated and paper-reported baseline
    // latencies; the simulator must preserve the coarse ordering even
    // though absolute values differ.
    let models = zoo::all_baselines();
    for (i, device) in DeviceSpec::paper_devices().iter().enumerate() {
        let simulated: Vec<f64> = models
            .iter()
            .map(|m| device.network_time_us(&m.network))
            .collect();
        let paper: Vec<f64> = models.iter().map(|m| m.paper_latency_ms[i]).collect();
        let rho = spearman(&simulated, &paper);
        // The simulator preserves the coarse ordering only: it has no
        // model-specific kernel tuning (e.g. the real testbed's unusually
        // slow ShuffleNetV2 CPU path, or the Xavier's DVFS behaviour).
        // Per-model deltas are tabulated in EXPERIMENTS.md.
        assert!(
            rho > 0.4,
            "{}: simulated-vs-paper rank correlation {rho}",
            device.name
        );
    }
}

#[test]
fn widest_arch_slower_than_narrow_arch_everywhere() {
    let space = SearchSpace::hsconas_a();
    let widest = lower_arch(space.skeleton(), &Arch::widest(20)).unwrap();
    let mut narrow_arch = Arch::widest(20);
    for l in 0..20 {
        narrow_arch
            .set_gene(
                l,
                hsconas_space::Gene::new(
                    hsconas_space::OpKind::Shuffle3,
                    hsconas_space::ChannelScale::from_tenths(3).unwrap(),
                ),
            )
            .unwrap();
    }
    let narrow = lower_arch(space.skeleton(), &narrow_arch).unwrap();
    for device in DeviceSpec::paper_devices() {
        assert!(
            device.network_time_us(&widest) > device.network_time_us(&narrow),
            "{}",
            device.name
        );
    }
}

#[test]
fn bias_equals_structural_overhead_up_to_noise() {
    // B should converge to (ops-1) * inter_op + fixed as M grows.
    let space = SearchSpace::hsconas_a();
    let device = DeviceSpec::gpu_gv100();
    let expected = 21.0 * device.inter_op_overhead_us + device.fixed_overhead_us;
    let mut rng = StdRng::seed_from_u64(8);
    let predictor = LatencyPredictor::calibrate(device, &space, 200, 3, &mut rng).unwrap();
    let rel = (predictor.bias_us() / expected - 1.0).abs();
    assert!(rel < 0.03, "bias off by {:.1}%", rel * 100.0);
}
