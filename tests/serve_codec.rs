//! Property tests for the serving wire codec: every well-formed frame
//! round-trips bit-exactly, and NO byte string — however hostile — makes
//! the decoder panic. The decoder runs on untrusted network input, so
//! "never panics" here is load-bearing: a panic in a connection thread
//! would silently drop every in-flight response on that connection.

use hsconas_serve::json::{self, Json};
use hsconas_serve::proto::{read_frame, Command, Frame, Request, Response};
use proptest::prelude::*;
use proptest::{collection, sample};

/// Finite f64s spanning magnitudes without reaching inf/NaN.
fn finite_f64() -> impl Strategy<Value = f64> {
    (i32::MIN..=i32::MAX, -9i32..9).prop_map(|(m, e)| f64::from(m) * 10f64.powi(e))
}

/// Strings mixing ASCII, escapes-needing controls, and multibyte chars.
fn wire_string() -> impl Strategy<Value = String> {
    collection::vec(
        sample::select(vec![
            "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\u{8}", "\u{c}", "\r", "/", "{", "}", "€",
            "😀", "\u{1}", "\u{7f}", "δ",
        ]),
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

/// JSON leaves.
fn json_leaf() -> impl Strategy<Value = Json> {
    (0u8..5, finite_f64(), wire_string(), proptest::bool::ANY).prop_map(
        |(pick, n, s, b)| match pick {
            0 => Json::Null,
            1 => Json::Bool(b),
            2 => Json::Num(n),
            _ => Json::Str(s),
        },
    )
}

/// JSON values up to two nesting levels (arrays/objects of leaves).
fn json_value() -> impl Strategy<Value = Json> {
    (
        0u8..4,
        json_leaf(),
        collection::vec(json_leaf(), 0..4),
        collection::vec((wire_string(), json_leaf()), 0..4),
    )
        .prop_map(|(pick, leaf, arr, pairs)| match pick {
            0 => leaf,
            1 => Json::Arr(arr),
            _ => {
                // Duplicate keys would survive encoding but `get` only sees
                // the first; keep keys unique so equality is structural.
                let mut seen = std::collections::HashSet::new();
                Json::Obj(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }
        })
}

fn command() -> impl Strategy<Value = Command> {
    (
        0u8..5,
        wire_string(),
        0.001f64..10_000.0,
        0u64..(1u64 << 52),
        collection::vec(0usize..16, 0..64),
    )
        .prop_map(|(pick, device, target_ms, seed, arch)| match pick {
            0 => Command::Status,
            1 => Command::Shutdown,
            2 => Command::PredictLatency { device, arch },
            3 => Command::Score {
                device,
                target_ms,
                arch,
            },
            _ => Command::Search {
                device,
                target_ms,
                seed,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn json_values_roundtrip_bit_exactly(value in json_value()) {
        let encoded = value.encode();
        let decoded = json::parse(encoded.as_bytes())
            .unwrap_or_else(|e| panic!("own encoding must parse: {e}: {encoded}"));
        prop_assert_eq!(&decoded, &value);
        // Encoding is a pure function: encode(decode(encode(v))) == encode(v).
        prop_assert_eq!(decoded.encode(), encoded);
    }

    #[test]
    fn requests_roundtrip(id in wire_string(), cmd in command()) {
        let request = Request { id, command: cmd };
        let line = request.encode();
        let decoded = Request::decode(line.as_bytes())
            .unwrap_or_else(|e| panic!("own encoding must decode: {e}: {line}"));
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn responses_roundtrip(
        id in wire_string(),
        ok in proptest::bool::ANY,
        code in 400u16..600,
        result in json_value(),
        error in wire_string(),
    ) {
        let response = if ok {
            Response::ok(id, result)
        } else {
            Response::fail(id, code, error)
        };
        let line = response.encode();
        let decoded = Response::decode(line.as_bytes())
            .unwrap_or_else(|e| panic!("own encoding must decode: {e}: {line}"));
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn arbitrary_junk_never_panics_the_decoders(bytes in collection::vec(0u8..=255, 0..256)) {
        // Any outcome but a panic is acceptable.
        let _ = json::parse(&bytes);
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn mutated_valid_frames_never_panic(
        id in wire_string(),
        cmd in command(),
        cut in 0usize..200,
        flip_at in 0usize..200,
        flip_to in 0u8..=255,
    ) {
        // Truncations and single-byte corruptions of real frames — the
        // shapes a broken client actually produces.
        let mut bytes = Request { id, command: cmd }.encode().into_bytes();
        bytes.truncate(bytes.len().saturating_sub(cut % bytes.len().max(1)));
        if !bytes.is_empty() {
            let at = flip_at % bytes.len();
            bytes[at] = flip_to;
        }
        let _ = Request::decode(&bytes);
        let _ = json::parse(&bytes);
    }

    #[test]
    fn frame_reader_never_panics_and_terminates(
        bytes in collection::vec(0u8..=255, 0..512),
        max in 1usize..128,
    ) {
        let mut cursor: &[u8] = &bytes;
        // Each iteration consumes input; bounded by the input length.
        for _ in 0..bytes.len() + 2 {
            match read_frame(&mut cursor, max).expect("in-memory reads cannot fail") {
                Frame::Eof => break,
                Frame::Line(line) => prop_assert!(line.len() <= max),
                Frame::Oversized => {}
            }
        }
        prop_assert!(cursor.is_empty(), "reader must consume all input");
    }
}
