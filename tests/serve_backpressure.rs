//! Soak test for the backpressure contract: flood the daemon far past its
//! queue bound and verify the overload path end to end —
//!
//! * every request gets exactly one response (no silent drops),
//! * past the bound the answer is a prompt `429 overloaded`, not a stall,
//! * the server's own telemetry (the `status` counters) agrees exactly
//!   with the client-side tally,
//! * a graceful shutdown afterwards drains and exits cleanly.
//!
//! The server is spawned with `--test-slow-eval-ms` so each evaluation
//! batch takes a known minimum time — without it the fast-budget evaluator
//! drains quicker than clients can flood and the queue never fills.

#[path = "serve_harness.rs"]
mod harness;

use harness::{widest_arch_encoding, ServerGuard};
use hsconas_serve::proto::{CODE_OK, CODE_OVERLOADED};
use hsconas_serve::Json;
use std::time::{Duration, Instant};

const FLOOD: usize = 30;
const QUEUE_CAP: usize = 4;

#[test]
fn flood_past_queue_bound_gets_prompt_overloads_and_no_silent_drops() {
    let server = ServerGuard::spawn(&[
        "--devices",
        "edge",
        "--queue-cap",
        &QUEUE_CAP.to_string(),
        "--eval-workers",
        "1",
        "--batch-max",
        "1",
        "--test-slow-eval-ms",
        "300",
    ]);
    let arch = widest_arch_encoding();

    // Flood: FLOOD concurrent clients, one score request each. Collect
    // (code, wall time) per request.
    let outcomes: Vec<(u16, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..FLOOD)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = server.client();
                    let started = Instant::now();
                    let response = client.score("edge", 34.0, &arch).expect("score response");
                    (response.code, started.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // Exactly one response per request, each either served or overloaded.
    assert_eq!(outcomes.len(), FLOOD, "every request must be answered");
    let served = outcomes.iter().filter(|(c, _)| *c == CODE_OK).count();
    let overloaded = outcomes
        .iter()
        .filter(|(c, _)| *c == CODE_OVERLOADED)
        .count();
    assert_eq!(
        served + overloaded,
        FLOOD,
        "unexpected codes in {outcomes:?}"
    );
    assert!(served >= 1, "at least the first admitted request is served");
    assert!(
        overloaded >= FLOOD - (QUEUE_CAP + 2),
        "with a 300ms eval and capacity {QUEUE_CAP}, most of {FLOOD} \
         simultaneous requests must overload; got {overloaded}"
    );

    // Overload answers are immediate rejections: far faster than even one
    // 300ms evaluation slot. (Generous bound for loaded CI machines.)
    for (code, elapsed) in &outcomes {
        if *code == CODE_OVERLOADED {
            assert!(
                *elapsed < Duration::from_millis(5000),
                "429 took {elapsed:?}; backpressure must not queue-wait"
            );
        }
    }

    // The server's exact counters must agree with the client-side tally:
    // nothing dropped, nothing double-counted. Poll until the queue
    // drains so `served` has settled.
    let mut client = server.client();
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        let status = client.status().expect("status").result.expect("result");
        let depth = status
            .get("queue")
            .and_then(|q| q.get("depth"))
            .and_then(Json::as_u64)
            .expect("queue.depth");
        let served_score = status
            .get("served")
            .and_then(|s| s.get("score"))
            .and_then(Json::as_u64)
            .expect("served.score");
        if depth == 0 && served_score == served as u64 {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "queue never drained: depth={depth} served_score={served_score} expected {served}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let counter = |path: [&str; 2]| {
        status
            .get(path[0])
            .and_then(|s| s.get(path[1]))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing status counter {path:?}"))
    };
    assert_eq!(counter(["served", "score"]), served as u64);
    assert_eq!(counter(["rejected", "overloaded"]), overloaded as u64);
    assert_eq!(counter(["rejected", "malformed"]), 0);
    assert_eq!(counter(["rejected", "internal"]), 0);
    let peak = status
        .get("queue")
        .and_then(|q| q.get("peak"))
        .and_then(Json::as_u64)
        .expect("queue.peak");
    assert!(
        peak <= QUEUE_CAP as u64,
        "admission must never exceed the bound (peak {peak})"
    );

    // Latency histograms saw exactly the served requests.
    let score_count = status
        .get("latency_ms")
        .and_then(|l| l.get("score"))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_u64)
        .expect("latency_ms.score.count");
    assert_eq!(score_count, served as u64);

    // Graceful drain: shutdown must answer, then the process must exit 0.
    server.shutdown_and_wait(Duration::from_secs(15));
}

/// Backpressure must not starve cheap requests: while the queue is jammed
/// with slow evaluations, `status` on a fresh connection still answers
/// immediately.
#[test]
fn status_stays_responsive_while_queue_is_full() {
    let server = ServerGuard::spawn(&[
        "--devices",
        "edge",
        "--queue-cap",
        "2",
        "--eval-workers",
        "1",
        "--batch-max",
        "1",
        "--test-slow-eval-ms",
        "400",
    ]);
    let arch = widest_arch_encoding();

    // Jam the queue from background threads.
    std::thread::scope(|scope| {
        for _ in 0..6 {
            scope.spawn(|| {
                let mut client = server.client();
                let _ = client.score("edge", 34.0, &arch);
            });
        }
        // Give the flood a moment to occupy the worker and the queue.
        std::thread::sleep(Duration::from_millis(150));

        let started = Instant::now();
        let mut client = server.client();
        let status = client.status().expect("status under load");
        assert!(status.is_ok());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "status blocked behind the evaluation queue"
        );
    });

    server.shutdown_and_wait(Duration::from_secs(15));
}
