//! Crash-safe resume contract: a pipeline interrupted at **any**
//! checkpoint boundary and resumed must be bit-identical to an
//! uninterrupted run — same weights, same RNG streams, same winner — and
//! an EA search checkpointed under one worker-thread count must resume
//! bit-identically under another. Corrupt or mismatched checkpoints must
//! be rejected loudly, never silently reinterpreted.

use std::fs;
use std::path::{Path, PathBuf};

use hsconas::checkpoint::inspect_checkpoint;
use hsconas::{
    run_real_pipeline, run_real_pipeline_checkpointed, run_search_checkpointed, CheckpointOptions,
    PipelineError, RealPipelineConfig,
};
use hsconas_evo::{
    Evaluation, EvoError, EvolutionConfig, EvolutionSearch, MemoObjective, ParallelObjective,
    SearchResult,
};
use hsconas_hwsim::{lower_arch, DeviceSpec};
use hsconas_space::{Arch, SearchSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A scratch checkpoint directory, unique per test, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hsck-resume-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Checkpoint files in a directory, sorted by cursor (the zero-padded
/// filenames make lexical order chronological).
fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "hsck"))
        .collect();
    files.sort();
    files
}

/// Copies the first `count` checkpoint files into a fresh directory —
/// simulating a run that was killed right after writing checkpoint
/// `count - 1` (the copied latest file becomes the resume point).
fn copy_prefix(files: &[PathBuf], count: usize, dst: &Path) {
    fs::create_dir_all(dst).expect("create prefix dir");
    for file in &files[..count] {
        let name = file.file_name().expect("file name");
        fs::copy(file, dst.join(name)).expect("copy checkpoint");
    }
}

// ---------------------------------------------------------------------------
// Real-training pipeline: every boundary, bit-identical
// ---------------------------------------------------------------------------

#[test]
fn real_pipeline_resumes_bit_identically_from_every_boundary() {
    let config = RealPipelineConfig::smoke_test();
    let seed = 11;
    let reference = run_real_pipeline(&config, seed).expect("reference run");

    // A fully checkpointed run (keep everything, checkpoint warm training
    // every 16 steps) must agree with the plain run...
    let full = ScratchDir::new("real-full");
    let opts = CheckpointOptions::new(full.path())
        .keep_last(0)
        .train_interval(16);
    let checkpointed =
        run_real_pipeline_checkpointed(&config, seed, Some(&opts)).expect("checkpointed run");
    assert_eq!(checkpointed.best_arch, reference.best_arch);
    assert_eq!(
        checkpointed.from_scratch_accuracy.to_bits(),
        reference.from_scratch_accuracy.to_bits()
    );
    assert_eq!(
        checkpointed.inherited_accuracy.to_bits(),
        reference.inherited_accuracy.to_bits()
    );
    assert_eq!(
        checkpointed.latency_ms.to_bits(),
        reference.latency_ms.to_bits()
    );
    assert_eq!(checkpointed.shrunk_space, reference.shrunk_space);

    // ...and so must a resume from *every* prefix of its checkpoint
    // sequence: mid-warm-training, post-calibration, each shrink stage,
    // each EA generation.
    let files = checkpoint_files(full.path());
    assert!(
        files.len() >= 2 + 1 + config.shrink_stages.len() + config.evolution.generations,
        "expected mid-train + calibration + per-stage + per-generation checkpoints, got {}",
        files.len()
    );
    for count in 1..=files.len() {
        let partial = ScratchDir::new(&format!("real-prefix-{count}"));
        copy_prefix(&files, count, partial.path());
        let opts = CheckpointOptions::new(partial.path())
            .resume(true)
            .keep_last(0)
            .train_interval(16);
        let resumed = run_real_pipeline_checkpointed(&config, seed, Some(&opts))
            .unwrap_or_else(|e| panic!("resume from checkpoint {count}/{}: {e}", files.len()));
        assert_eq!(
            resumed.best_arch, reference.best_arch,
            "winner diverged resuming from checkpoint {count}"
        );
        assert_eq!(
            resumed.from_scratch_accuracy.to_bits(),
            reference.from_scratch_accuracy.to_bits(),
            "final accuracy diverged resuming from checkpoint {count}"
        );
        assert_eq!(
            resumed.inherited_accuracy.to_bits(),
            reference.inherited_accuracy.to_bits(),
            "inherited accuracy diverged resuming from checkpoint {count}"
        );
        assert_eq!(resumed.shrunk_space, reference.shrunk_space);
    }
}

#[test]
fn real_pipeline_refuses_checkpoints_from_a_different_run() {
    let config = RealPipelineConfig::smoke_test();
    let dir = ScratchDir::new("real-mismatch");
    let opts = CheckpointOptions::new(dir.path()).train_interval(16);
    run_real_pipeline_checkpointed(&config, 11, Some(&opts)).expect("seed-11 run");
    // Same directory, different seed: the config hash differs, so resume
    // must refuse rather than continue the wrong experiment.
    let resume = CheckpointOptions::new(dir.path())
        .resume(true)
        .train_interval(16);
    let err = run_real_pipeline_checkpointed(&config, 12, Some(&resume))
        .expect_err("seed mismatch must fail");
    assert!(
        err.to_string().contains("config"),
        "expected a config-hash error, got: {err}"
    );
}

// ---------------------------------------------------------------------------
// EA search: kill/resume across worker-thread counts
// ---------------------------------------------------------------------------

/// Deterministic, `Sync` objective: latency from the noise-free device
/// timing model, accuracy a smooth function of the genome.
fn score(space: &SearchSpace, arch: &Arch) -> Result<Evaluation, EvoError> {
    let device = DeviceSpec::edge_xavier();
    let net = lower_arch(space.skeleton(), arch).map_err(|e| EvoError::Objective {
        detail: e.to_string(),
    })?;
    let latency_ms = device.network_time_us(&net) / 1000.0;
    let accuracy = 60.0 + (arch.fingerprint() % 997) as f64 / 50.0;
    Ok(Evaluation {
        score: accuracy - 20.0 * (latency_ms / 34.0 - 1.0).abs(),
        accuracy,
        latency_ms,
    })
}

fn ea_config() -> EvolutionConfig {
    EvolutionConfig {
        generations: 5,
        population: 16,
        parents: 6,
        ..Default::default()
    }
}

/// Runs the checkpointed EA to completion over `dir` with an explicit
/// worker-thread count.
fn run_ea(dir: &Path, resume: bool, threads: usize, seed: u64) -> SearchResult {
    let space = SearchSpace::hsconas_a();
    let eval_space = space.clone();
    let mut objective = MemoObjective::new(ParallelObjective::new(
        move |arch: &Arch| score(&eval_space, arch),
        threads,
    ));
    let mut search = EvolutionSearch::new(space, ea_config());
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = CheckpointOptions::new(dir).resume(resume).keep_last(0);
    run_search_checkpointed(&mut search, &mut objective, &mut rng, &opts).expect("search")
}

#[test]
fn ea_search_resumes_bit_identically_across_thread_counts() {
    let full = ScratchDir::new("ea-full");
    let reference = run_ea(full.path(), false, 1, 21);
    let files = checkpoint_files(full.path());
    // init population + one per generation
    assert_eq!(files.len(), ea_config().generations + 1);

    // Kill after every generation; resume under 1 and 8 worker threads.
    // The merged batch order is thread-count invariant, so every resumed
    // history must equal the uninterrupted one bit-for-bit.
    for count in 1..=files.len() {
        for threads in [1, 8] {
            let partial = ScratchDir::new(&format!("ea-prefix-{count}-t{threads}"));
            copy_prefix(&files, count, partial.path());
            let resumed = run_ea(partial.path(), true, threads, 21);
            assert_eq!(
                resumed, reference,
                "EA diverged resuming from checkpoint {count} at {threads} threads"
            );
        }
    }
}

#[test]
fn ea_checkpoint_retention_keeps_last_k() {
    let dir = ScratchDir::new("ea-retention");
    let space = SearchSpace::hsconas_a();
    let eval_space = space.clone();
    let mut objective = MemoObjective::new(ParallelObjective::new(
        move |arch: &Arch| score(&eval_space, arch),
        1,
    ));
    let mut search = EvolutionSearch::new(space, ea_config());
    let mut rng = StdRng::seed_from_u64(3);
    let opts = CheckpointOptions::new(dir.path()).keep_last(2);
    run_search_checkpointed(&mut search, &mut objective, &mut rng, &opts).expect("search");
    let files = checkpoint_files(dir.path());
    assert_eq!(files.len(), 2, "retention must prune to keep_last");
    // The survivors are the newest: the last two generations.
    let names: Vec<String> = files
        .iter()
        .map(|f| f.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    let last_cursor = ea_config().generations as u64;
    assert!(
        names[1].contains(&format!("{last_cursor:012}")),
        "names: {names:?}"
    );
}

// ---------------------------------------------------------------------------
// Corruption and tamper rejection
// ---------------------------------------------------------------------------

fn corrupt_latest(dir: &Path, mutate: impl FnOnce(&mut Vec<u8>)) {
    let files = checkpoint_files(dir);
    let latest = files.last().expect("at least one checkpoint");
    let mut bytes = fs::read(latest).expect("read checkpoint");
    mutate(&mut bytes);
    fs::write(latest, bytes).expect("rewrite checkpoint");
}

fn resume_err_after(dir: &Path, mutate: impl FnOnce(&mut Vec<u8>)) -> PipelineError {
    corrupt_latest(dir, mutate);
    let space = SearchSpace::hsconas_a();
    let eval_space = space.clone();
    let mut objective = MemoObjective::new(ParallelObjective::new(
        move |arch: &Arch| score(&eval_space, arch),
        1,
    ));
    let mut search = EvolutionSearch::new(space, ea_config());
    let mut rng = StdRng::seed_from_u64(21);
    let opts = CheckpointOptions::new(dir).resume(true).keep_last(0);
    run_search_checkpointed(&mut search, &mut objective, &mut rng, &opts)
        .expect_err("corrupt checkpoint must be rejected")
}

#[test]
fn resume_rejects_corrupt_checkpoints() {
    // One reference run re-used for each tamper case (copied per case).
    let master = ScratchDir::new("corrupt-master");
    run_ea(master.path(), false, 1, 21);
    let files = checkpoint_files(master.path());

    // Flipped payload byte -> checksum failure.
    let flipped = ScratchDir::new("corrupt-flip");
    copy_prefix(&files, files.len(), flipped.path());
    let err = resume_err_after(flipped.path(), |bytes| {
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
    });
    assert!(
        err.to_string().contains("checksum"),
        "expected checksum error, got: {err}"
    );

    // Truncated file -> explicit truncation error.
    let truncated = ScratchDir::new("corrupt-trunc");
    copy_prefix(&files, files.len(), truncated.path());
    let err = resume_err_after(truncated.path(), |bytes| {
        bytes.truncate(bytes.len() / 2);
    });
    assert!(
        err.to_string().contains("truncated"),
        "expected truncation error, got: {err}"
    );

    // Foreign magic -> not one of ours.
    let magic = ScratchDir::new("corrupt-magic");
    copy_prefix(&files, files.len(), magic.path());
    let err = resume_err_after(magic.path(), |bytes| {
        bytes[..4].copy_from_slice(b"NOPE");
    });
    assert!(
        err.to_string().contains("magic"),
        "expected bad-magic error, got: {err}"
    );

    // Future format version -> refuse, don't guess.
    let version = ScratchDir::new("corrupt-version");
    copy_prefix(&files, files.len(), version.path());
    let err = resume_err_after(version.path(), |bytes| {
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    });
    assert!(
        err.to_string().contains("version"),
        "expected version error, got: {err}"
    );
}

#[test]
fn inspect_reports_header_and_detects_tampering() {
    let dir = ScratchDir::new("inspect");
    run_ea(dir.path(), false, 1, 21);
    let files = checkpoint_files(dir.path());
    let report = inspect_checkpoint(files.last().unwrap()).expect("inspect");
    assert!(report.contains("HSCK v1"), "report: {report}");
    assert!(report.contains("search"), "report: {report}");
    assert!(report.contains("verified"), "report: {report}");

    corrupt_latest(dir.path(), |bytes| {
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
    });
    let err = inspect_checkpoint(files.last().unwrap()).expect_err("tampered file");
    assert!(err.contains("checksum"), "err: {err}");
}

// ---------------------------------------------------------------------------
// Property: random kill points are always bit-identical
// ---------------------------------------------------------------------------

fn tiny_ea(dir: &Path, resume: bool, seed: u64) -> SearchResult {
    let space = SearchSpace::tiny(8);
    let eval_space = space.clone();
    let mut objective = MemoObjective::new(ParallelObjective::new(
        move |arch: &Arch| score(&eval_space, arch),
        1,
    ));
    let config = EvolutionConfig {
        generations: 4,
        population: 8,
        parents: 3,
        ..Default::default()
    };
    let mut search = EvolutionSearch::new(space, config);
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = CheckpointOptions::new(dir).resume(resume).keep_last(0);
    run_search_checkpointed(&mut search, &mut objective, &mut rng, &opts).expect("search")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed and any kill point, resuming reproduces the
    /// uninterrupted result bit-for-bit.
    #[test]
    fn random_kill_points_resume_bit_identically(seed in 0u64..1000, kill in 1usize..=5) {
        let full = ScratchDir::new(&format!("prop-full-{seed}-{kill}"));
        let reference = tiny_ea(full.path(), false, seed);
        let files = checkpoint_files(full.path());
        let count = kill.min(files.len());
        let partial = ScratchDir::new(&format!("prop-prefix-{seed}-{kill}"));
        copy_prefix(&files, count, partial.path());
        let resumed = tiny_ea(partial.path(), true, seed);
        prop_assert_eq!(resumed, reference);
    }
}
