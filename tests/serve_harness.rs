//! Shared harness for the black-box serving tests: spawns the real
//! `hsconas` binary (`serve` subcommand) on an ephemeral port and tears
//! it down — by protocol shutdown when the test wants a graceful drain,
//! by kill on drop so a failing test never leaks a daemon.
//!
//! Not a test itself; included by the `serve_*` suites via `#[path]`.

// Each suite uses a different subset of these helpers.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A running daemon and its address. Kills the process on drop.
pub struct ServerGuard {
    child: Option<Child>,
    /// `host:port` the daemon printed at startup.
    pub addr: String,
}

impl ServerGuard {
    /// Spawns `hsconas serve --port 0 <extra>` and waits for the
    /// "listening on" line.
    pub fn spawn(extra: &[&str]) -> ServerGuard {
        let mut args = vec!["--port", "0"];
        args.extend_from_slice(extra);
        ServerGuard::spawn_raw(&args)
    }

    /// Spawns `hsconas serve <args>` verbatim — the caller controls the
    /// port and the single-daemon/fleet/attach mode — and waits for the
    /// "listening on" line.
    pub fn spawn_raw(args: &[&str]) -> ServerGuard {
        ServerGuard::try_spawn_raw(args).expect("spawn hsconas serve")
    }

    /// Like [`ServerGuard::spawn_raw`] but reports startup failure (e.g. a
    /// fixed port still in TIME_WAIT after a crash) instead of panicking,
    /// so callers can retry.
    pub fn try_spawn_raw(args: &[&str]) -> Result<ServerGuard, String> {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hsconas"))
            .arg("serve")
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn: {e}"))?;
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read listen line: {e}"))?;
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .unwrap_or_default()
            .to_string();
        if !(line.contains("listening on") && addr.contains(':')) {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("unexpected startup line: {line:?}"));
        }
        Ok(ServerGuard {
            child: Some(child),
            addr,
        })
    }

    /// A raw TCP connection with a generous read timeout.
    pub fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("set timeout");
        stream
    }

    /// A protocol client on a fresh connection.
    pub fn client(&self) -> hsconas_serve::Client {
        let mut client = hsconas_serve::Client::from_stream(self.connect()).expect("client");
        client
            .set_timeout(Some(Duration::from_secs(60)))
            .expect("client timeout");
        client
    }

    /// Requests a graceful shutdown and asserts the process exits cleanly
    /// within `timeout`.
    pub fn shutdown_and_wait(mut self, timeout: Duration) {
        let response = self.client().shutdown().expect("shutdown call");
        assert!(response.is_ok(), "shutdown refused: {response:?}");
        let mut child = self.child.take().expect("child already taken");
        let deadline = Instant::now() + timeout;
        loop {
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    return;
                }
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("server did not drain and exit within {timeout:?}");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// OS process id of the daemon, for PID-scoped liveness checks.
    pub fn pid(&self) -> u32 {
        self.child.as_ref().expect("child already taken").id()
    }

    /// Kills the daemon immediately (no protocol shutdown) and reaps it.
    /// Used by the fleet failover tests to simulate a crashed worker.
    pub fn kill_now(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Whether the daemon process is still running.
    pub fn is_running(&mut self) -> bool {
        match &mut self.child {
            Some(child) => child.try_wait().expect("try_wait").is_none(),
            None => false,
        }
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Sends one raw line on `stream` and reads one reply line.
pub fn raw_call(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).expect("write line");
    stream.write_all(b"\n").expect("write newline");
    stream.flush().expect("flush");
    read_line(stream)
}

/// Reads one `\n`-terminated line from `stream`.
pub fn read_line(stream: &mut TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    line.trim_end().to_string()
}

/// A widest-genome wire encoding for the served 20-layer space:
/// `[op, scale] x 20` with op 0 (MBConv3-k3) and scale 9 (x1.0).
pub fn widest_arch_encoding() -> Vec<usize> {
    let mut encoded = Vec::with_capacity(40);
    for _ in 0..20 {
        encoded.push(0);
        encoded.push(9);
    }
    encoded
}
