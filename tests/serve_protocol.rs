//! Black-box protocol suite: spawns the real `hsconas serve` binary on an
//! ephemeral port and speaks the wire protocol over raw sockets. Nothing
//! here reaches into server internals — every assertion is about bytes on
//! the wire, which is exactly the contract a client programs against.

#[path = "serve_harness.rs"]
mod harness;

use harness::{raw_call, widest_arch_encoding, ServerGuard};
use hsconas_serve::proto::{Response, CODE_BAD_REQUEST, CODE_FRAME_TOO_LARGE, CODE_UNKNOWN_DEVICE};
use hsconas_serve::Json;
use std::io::Write;
use std::time::Duration;

#[test]
fn happy_path_round_trips() {
    let server = ServerGuard::spawn(&["--devices", "edge"]);
    let mut client = server.client();

    // status: well-formed, sane queue metadata.
    let status = client.status().expect("status");
    assert!(status.is_ok(), "{status:?}");
    let result = status.result.expect("status result");
    assert_eq!(
        result
            .get("queue")
            .and_then(|q| q.get("depth"))
            .and_then(Json::as_u64),
        Some(0)
    );
    assert!(result
        .get("devices")
        .and_then(|d| d.get("edge-xavier"))
        .is_some());
    // kernel block: the selected GEMM variant is one of the known names
    // and the per-variant dispatch counters are present.
    let kernel = result.get("kernel").expect("kernel block");
    let variant = kernel
        .get("variant")
        .and_then(Json::as_str)
        .expect("kernel.variant");
    assert!(
        ["direct", "scalar", "avx2"].contains(&variant),
        "unknown kernel variant {variant:?}"
    );
    for key in ["direct", "scalar", "avx2"] {
        assert!(
            kernel
                .get("dispatch")
                .and_then(|d| d.get(key))
                .and_then(Json::as_u64)
                .is_some(),
            "missing kernel.dispatch.{key}"
        );
    }
    // Band-split and packed-weight-cache observability ride along.
    for key in ["serial", "parallel"] {
        assert!(
            kernel
                .get("bands")
                .and_then(|b| b.get(key))
                .and_then(Json::as_u64)
                .is_some(),
            "missing kernel.bands.{key}"
        );
    }
    for key in [
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "entries",
        "bytes",
    ] {
        assert!(
            kernel
                .get("pack_cache")
                .and_then(|p| p.get(key))
                .and_then(Json::as_u64)
                .is_some(),
            "missing kernel.pack_cache.{key}"
        );
    }
    assert!(
        kernel
            .get("pack_cache")
            .and_then(|p| p.get("hit_rate"))
            .and_then(Json::as_f64)
            .is_some(),
        "missing kernel.pack_cache.hit_rate"
    );

    // predict_latency: positive latency, device echoed canonically.
    let arch = widest_arch_encoding();
    let predict = client.predict_latency("edge", &arch).expect("predict");
    assert!(predict.is_ok(), "{predict:?}");
    let result = predict.result.expect("predict result");
    assert_eq!(
        result.get("device").and_then(Json::as_str),
        Some("edge-xavier")
    );
    let latency_ms = result
        .get("latency_ms")
        .and_then(Json::as_f64)
        .expect("latency_ms");
    assert!(latency_ms > 0.0);

    // score: Eq. 1 relation F = ACC + beta * |LAT/T - 1| holds on the wire.
    let target_ms = 34.0;
    let score = client.score("edge", target_ms, &arch).expect("score");
    assert!(score.is_ok(), "{score:?}");
    let result = score.result.expect("score result");
    let f = result.get("score").and_then(Json::as_f64).expect("score");
    let acc = result
        .get("accuracy")
        .and_then(Json::as_f64)
        .expect("accuracy");
    let lat = result
        .get("latency_ms")
        .and_then(Json::as_f64)
        .expect("latency_ms");
    assert!((f - (acc + -20.0 * (lat / target_ms - 1.0).abs())).abs() < 1e-9);
    assert!(
        (lat - latency_ms).abs() < 1e-12,
        "score and predict must agree on Eq. 2"
    );

    // search: a valid in-space architecture plus its evaluation.
    let search = client.search("edge", target_ms, 7).expect("search");
    assert!(search.is_ok(), "{search:?}");
    let result = search.result.expect("search result");
    let genome = result.get("arch").and_then(Json::as_arr).expect("arch");
    assert_eq!(genome.len(), 40, "20 layers x (op, scale)");
    assert!(result.get("arch_str").and_then(Json::as_str).is_some());
    assert!(result.get("score").and_then(Json::as_f64).is_some());

    // status again: the served counters reflect exactly what we did.
    let status = client.status().expect("status 2").result.expect("result");
    let served = status.get("served").expect("served");
    assert_eq!(
        served.get("predict_latency").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(served.get("score").and_then(Json::as_u64), Some(1));
    assert_eq!(served.get("search").and_then(Json::as_u64), Some(1));

    server.shutdown_and_wait(Duration::from_secs(10));
}

#[test]
fn malformed_frames_are_rejected_without_wedging() {
    let server = ServerGuard::spawn(&[]);
    let mut stream = server.connect();

    // Each bad frame gets a 400 with a reason, and the SAME connection
    // keeps working afterwards.
    let cases: &[(&str, &str)] = &[
        ("this is not json", "at byte"),
        ("[1,2,3]", "object"),
        (r#"{"id":"x","cmd":"warp"}"#, "unknown cmd"),
        (r#"{"v":9,"id":"x","cmd":"status"}"#, "version"),
        (
            r#"{"id":"x","cmd":"score","device":"edge","arch":[0]}"#,
            "target_ms",
        ),
        (
            r#"{"id":"x","cmd":"score","device":"edge","target_ms":0,"arch":[0]}"#,
            "positive",
        ),
        (
            r#"{"id":"x","cmd":"search","device":"edge","target_ms":34,"seed":-1}"#,
            "seed",
        ),
        (
            r#"{"id":"x","cmd":"predict_latency","device":"edge","arch":[0,9,1]}"#,
            "odd",
        ),
        (
            r#"{"id":"x","cmd":"predict_latency","device":"edge","arch":[0,9]}"#,
            "layers",
        ),
    ];
    for (frame, needle) in cases {
        let reply = raw_call(&mut stream, frame);
        let response = Response::decode(reply.as_bytes()).expect("decodable error reply");
        assert_eq!(
            response.code, CODE_BAD_REQUEST,
            "frame {frame:?} -> {reply}"
        );
        let error = response.error.expect("error text");
        assert!(
            error.contains(needle),
            "frame {frame:?}: error {error:?} should mention {needle:?}"
        );
    }

    // Unknown device is its own code, with the id still echoed.
    let reply = raw_call(
        &mut stream,
        r#"{"id":"d1","cmd":"search","device":"tpu","target_ms":5}"#,
    );
    let response = Response::decode(reply.as_bytes()).expect("decodable");
    assert_eq!(response.code, CODE_UNKNOWN_DEVICE);
    assert_eq!(response.id, "d1");

    // After all that abuse, a valid request on the same connection works.
    let reply = raw_call(&mut stream, r#"{"v":1,"id":"ok","cmd":"status"}"#);
    let response = Response::decode(reply.as_bytes()).expect("decodable");
    assert!(response.is_ok(), "{reply}");
    assert_eq!(response.id, "ok");

    server.shutdown_and_wait(Duration::from_secs(10));
}

#[test]
fn oversized_and_truncated_frames_fail_loudly_not_silently() {
    let mut server = ServerGuard::spawn(&[]);

    // Oversized: a frame past the 64 KiB cap is answered with 413 and the
    // connection is resynchronized at the next newline.
    let mut stream = server.connect();
    let huge = "x".repeat(80 * 1024);
    let reply = raw_call(&mut stream, &huge);
    let response = Response::decode(reply.as_bytes()).expect("decodable");
    assert_eq!(response.code, CODE_FRAME_TOO_LARGE);
    assert!(response.error.unwrap_or_default().contains("65536"));
    let reply = raw_call(&mut stream, r#"{"id":"after","cmd":"status"}"#);
    assert!(Response::decode(reply.as_bytes())
        .expect("decodable")
        .is_ok());

    // Truncated: a half-written frame with the connection dropped mid-line
    // must not wedge or kill the server.
    let mut stream = server.connect();
    stream
        .write_all(br#"{"id":"t","cmd":"sta"#)
        .expect("write partial");
    stream.flush().expect("flush");
    drop(stream);

    // And a half-written line left dangling (no newline, connection open)
    // must not block other clients.
    let mut dangling = server.connect();
    dangling.write_all(b"{\"id\":").expect("write dangling");
    dangling.flush().expect("flush");

    let mut client = server.client();
    let status = client.status().expect("status while dangling");
    assert!(status.is_ok());
    assert!(server.is_running(), "server must survive truncated frames");

    server.shutdown_and_wait(Duration::from_secs(10));
}

/// The determinism contract: concurrent identical `search` requests get
/// bit-identical response lines, whether 1 client or 8 are hammering.
#[test]
fn concurrent_identical_searches_are_bit_identical() {
    let server = ServerGuard::spawn(&[
        "--devices",
        "edge",
        "--eval-workers",
        "3",
        "--batch-max",
        "8",
    ]);
    let request = r#"{"v":1,"id":"det","cmd":"search","device":"edge","target_ms":34,"seed":11}"#;

    let mut replies: Vec<String> = Vec::new();
    for threads in [1usize, 8] {
        let round: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut stream = server.connect();
                        raw_call(&mut stream, request)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });
        replies.extend(round);
    }

    assert_eq!(replies.len(), 9);
    let first = &replies[0];
    assert!(
        Response::decode(first.as_bytes())
            .expect("decodable")
            .is_ok(),
        "{first}"
    );
    for reply in &replies {
        assert_eq!(
            reply, first,
            "all identical searches must serve identical bytes"
        );
    }

    server.shutdown_and_wait(Duration::from_secs(10));
}
