//! Property tests for the graph compile → infer pipeline (DESIGN.md §12):
//! for *random* genomes, executing the compiled (optimized, specialized)
//! graph is bit-identical to the masked supernet forward — at thread
//! counts 1 and 8, and under whatever `HSCONAS_KERNEL` variant this
//! process latched (the CI matrix re-runs this binary per variant). The
//! serialized artifact must round-trip to the same bits as well.

use hsconas_graph::{artifact, build_reference, compile, execute, CompileOptions};
use hsconas_space::{Arch, ChannelScale, Gene, NetworkSkeleton, OpKind};
use hsconas_tensor::rng::SmallRng;
use hsconas_tensor::Tensor;
use proptest::prelude::*;

/// Small skeleton with both stride-1 and stride-2 searchable slots, so
/// random genomes exercise every specialization path (slice narrowing,
/// branch collapse, downsample-skip adaptation, grouped-conv padding).
fn skeleton() -> NetworkSkeleton {
    NetworkSkeleton {
        input_resolution: 16,
        input_channels: 3,
        stem_channels: 8,
        stage_channels: [16, 32, 32, 32],
        stage_depths: [2, 2, 0, 0],
        head_channels: 64,
        num_classes: 10,
    }
}

fn arch_strategy(layers: usize) -> impl Strategy<Value = Arch> {
    proptest::collection::vec((0usize..OpKind::ALL.len(), 1u8..=10u8), layers).prop_map(|genes| {
        Arch::new(
            genes
                .into_iter()
                .map(|(op, tenths)| {
                    Gene::new(
                        OpKind::from_index(op).expect("index in range"),
                        ChannelScale::from_tenths(tenths).expect("tenths in range"),
                    )
                })
                .collect(),
        )
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    // Each case compiles a supernet and runs four forwards; keep the case
    // count modest so the suite stays inside tier-1 time budgets.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compiled_graph_is_bit_identical_across_threads(
        arch in arch_strategy(4),
        input_seed in 0u64..1000,
        batch in 1usize..=3,
    ) {
        let sk = skeleton();
        let opts = CompileOptions::default();
        let (art, _) = compile(&sk, &arch, &opts).expect("compile");
        let mut net =
            build_reference(&sk, &arch, opts.seed, opts.warmup_steps).expect("reference");
        let mut rng = SmallRng::new(input_seed);
        let res = sk.input_resolution;
        let x = Tensor::randn([batch, sk.input_channels, res, res], 1.0, &mut rng);

        // Round-trip through the serialized artifact before executing: the
        // loaded graph must carry the exact same constants and structure.
        let loaded = artifact::from_bytes(&artifact::to_bytes(&art)).expect("round-trip");
        prop_assert_eq!(&art.graph, &loaded.graph);

        let mut outputs: Vec<Vec<u32>> = Vec::new();
        for threads in [1usize, 8] {
            hsconas_par::set_default_threads(threads);
            outputs.push(bits(&net.forward(&x, &arch, false).expect("reference forward")));
            outputs.push(bits(&execute(&art.graph, &x).expect("graph execute")));
            outputs.push(bits(&execute(&loaded.graph, &x).expect("loaded execute")));
        }
        hsconas_par::set_default_threads(0);
        let first = &outputs[0];
        for (i, out) in outputs.iter().enumerate().skip(1) {
            prop_assert_eq!(
                first, out,
                "output {} diverged for genome {} (0/3 = reference/graph at t=1, 3.. at t=8)",
                i, arch
            );
        }
    }
}
